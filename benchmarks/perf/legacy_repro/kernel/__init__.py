"""Simulated Linux-like kernel substrate.

This package replaces the paper's instrumented Linux 4.10 kernel running
inside the Bochs emulator.  It provides:

* lock primitives mirroring the kernel's zoo of synchronization
  mechanisms (:mod:`benchmarks.perf.legacy_repro.kernel.locks`),
* a byte-addressed heap allocator with address reuse
  (:mod:`benchmarks.perf.legacy_repro.kernel.memory`),
* a struct-layout model with union unrolling and embedded locks
  (:mod:`benchmarks.perf.legacy_repro.kernel.structs`),
* execution contexts and a deterministic cooperative scheduler
  (:mod:`benchmarks.perf.legacy_repro.kernel.context`, :mod:`benchmarks.perf.legacy_repro.kernel.sched`),
* the :class:`~benchmarks.perf.legacy_repro.kernel.runtime.KernelRuntime` that ties these
  together and emits the execution trace consumed by the LockDoc
  analysis pipeline, and
* a simulated VFS/JBD2 subsystem (:mod:`benchmarks.perf.legacy_repro.kernel.vfs`).
"""

from benchmarks.perf.legacy_repro.kernel.context import ContextKind, ExecutionContext, reset_context_ids
from benchmarks.perf.legacy_repro.kernel.locks import reset_lock_ids
from benchmarks.perf.legacy_repro.kernel.memory import reset_alloc_ids


def reset_id_counters() -> None:
    """Restart the global context/lock/allocation id counters so a
    fresh simulated-kernel run produces a byte-identical trace for the
    same seed (ids are otherwise process-lifetime monotonic)."""
    reset_context_ids()
    reset_lock_ids()
    reset_alloc_ids()

from benchmarks.perf.legacy_repro.kernel.errors import (
    DeadlockError,
    DoubleFreeError,
    KernelError,
    LockUsageError,
    MemoryError_,
)
from benchmarks.perf.legacy_repro.kernel.locks import Lock, LockClass, LockMode
from benchmarks.perf.legacy_repro.kernel.memory import Allocation, Allocator
from benchmarks.perf.legacy_repro.kernel.runtime import KernelRuntime
from benchmarks.perf.legacy_repro.kernel.sched import Scheduler
from benchmarks.perf.legacy_repro.kernel.structs import Member, MemberKind, StructDef, StructRegistry

__all__ = [
    "Allocation",
    "Allocator",
    "ContextKind",
    "DeadlockError",
    "DoubleFreeError",
    "ExecutionContext",
    "KernelError",
    "KernelRuntime",
    "Lock",
    "LockClass",
    "LockMode",
    "LockUsageError",
    "Member",
    "MemberKind",
    "MemoryError_",
    "Scheduler",
    "StructDef",
    "StructRegistry",
]
