"""Execution contexts of the simulated kernel.

The Linux kernel distinguishes the execution context a control flow runs
in: a *task* (process/kthread), a *bottom half* (softirq), or a
*hardirq* handler.  Which locking primitive is legal depends on the
context (Sec. 2.2 of the paper).  The simulator models contexts
explicitly; every trace event carries the id of the context that caused
it, which the post-processing step uses to maintain per-context
transaction stacks.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class ContextKind(enum.Enum):
    """What kind of control flow a context represents."""

    TASK = "task"
    SOFTIRQ = "softirq"
    HARDIRQ = "hardirq"


_context_ids = itertools.count(1)


def reset_context_ids() -> None:
    """Restart the context-id counter (trace reproducibility helper)."""
    global _context_ids
    _context_ids = itertools.count(1)


@dataclass
class ExecutionContext:
    """A single kernel control flow.

    Attributes:
        kind: task / softirq / hardirq.
        name: human-readable name, e.g. ``"fsstress/3"``.
        ctx_id: unique id; appears in every trace event.
        held: stack of ``(lock, mode)`` pairs in acquisition order.
        call_stack: stack of ``(function, file, line)`` frames.
        irq_disable_depth / bh_disable_depth / preempt_disable_depth:
            nesting counters for the pseudo-lock primitives.
    """

    kind: ContextKind
    name: str
    ctx_id: int = field(default_factory=lambda: next(_context_ids))
    held: List[Tuple[object, object]] = field(default_factory=list)
    call_stack: List[Tuple[str, str, int]] = field(default_factory=list)
    irq_disable_depth: int = 0
    bh_disable_depth: int = 0
    preempt_disable_depth: int = 0
    # Parent context when a hardirq/softirq interrupted another flow.
    interrupted: Optional["ExecutionContext"] = None

    def holds(self, lock: object) -> bool:
        """Return True if this context currently holds *lock* (any mode)."""
        return any(l is lock for l, _ in self.held)

    def held_locks(self) -> List[object]:
        """The locks held by this context, in acquisition order."""
        return [l for l, _ in self.held]

    def push_frame(self, function: str, file: str, line: int) -> None:
        self.call_stack.append((function, file, line))

    def pop_frame(self) -> Tuple[str, str, int]:
        return self.call_stack.pop()

    def stack_snapshot(self) -> Tuple[Tuple[str, str, int], ...]:
        """An immutable copy of the current call stack (outermost first)."""
        return tuple(self.call_stack)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ctx {self.ctx_id} {self.kind.value}:{self.name}>"


def make_task(name: str) -> ExecutionContext:
    """Create a task context."""
    return ExecutionContext(ContextKind.TASK, name)


def make_softirq(name: str, interrupted: Optional[ExecutionContext] = None) -> ExecutionContext:
    """Create a softirq (bottom-half) context."""
    return ExecutionContext(ContextKind.SOFTIRQ, name, interrupted=interrupted)


def make_hardirq(name: str, interrupted: Optional[ExecutionContext] = None) -> ExecutionContext:
    """Create a hardirq (first-level interrupt handler) context."""
    return ExecutionContext(ContextKind.HARDIRQ, name, interrupted=interrupted)
