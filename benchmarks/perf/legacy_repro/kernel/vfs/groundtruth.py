"""Ground-truth locking rules for the 11 observed data types.

This module is the simulated kernel's *actual* locking discipline: the
operation engine synthesizes kernel functions from it, and the
experiments compare LockDoc's mined rules against it.  Three kinds of
knobs calibrate the evaluation shapes of Tab. 4–8:

* ``read``/``write`` rules — which locks legitimate code takes,
* ``read_skip``/``write_skip`` — the injected deviation (bug) rates;
  kept below the 10 % accept-threshold complement so true rules still
  win, with their deviating accesses surfacing as rule violations,
* ``read_weight``/``write_weight`` — runtime exercise rates; a weight
  of 0 means the benchmark never performs that access (e.g. identity
  members are only written during initialization), which is what keeps
  the per-type rule counts (#Rules of Tab. 6) realistic.

Naming of global locks matches the kernel: ``inode_hash_lock``,
``bdev_lock``, ``cdev_lock``, ``sb_lock``, ``rename_lock``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from benchmarks.perf.legacy_repro.db.filters import FilterConfig
from benchmarks.perf.legacy_repro.kernel.vfs.spec import LockTok, MemberSpec, TypeSpec

ES = LockTok.es
VIA = LockTok.via_
GLOBAL = LockTok.global_
RCU = LockTok.rcu

#: Global (static) locks the VFS model uses: name -> lock class.
GLOBAL_LOCKS: Dict[str, str] = {
    "inode_hash_lock": "spinlock_t",
    "inode_lru_lock": "spinlock_t",
    "bdev_lock": "spinlock_t",
    "cdev_lock": "spinlock_t",
    "sb_lock": "spinlock_t",
    "rename_lock": "seqlock_t",
    "dcache_lru_lock": "spinlock_t",
    "bdi_lock": "spinlock_t",
    "pipe_user_lock": "spinlock_t",
}

#: Functions whose dynamic extent is object construction/teardown.
INIT_TEARDOWN_FUNCTIONS = {
    "inode_init_always",
    "alloc_inode",
    "destroy_inode",
    "i_callback",
    "d_alloc",
    "dentry_free",
    "alloc_super",
    "destroy_super",
    "bdev_alloc",
    "bdev_free",
    "alloc_buffer_head",
    "free_buffer_head",
    "cdev_alloc",
    "cdev_default_release",
    "bdi_alloc",
    "bdi_put_final",
    "alloc_pipe_info",
    "free_pipe_info",
    "journal_init_common",
    "jbd2_journal_destroy",
    "jbd2_journal_init_transaction",
    "jbd2_journal_free_transaction",
    "journal_alloc_journal_head",
    "journal_free_journal_head",
}

#: Globally ignored helper functions (atomic ops & friends, Sec. 5.3).
GLOBAL_FUNCTION_BLACKLIST = {
    "atomic_inc",
    "atomic_dec",
    "atomic_read",
    "atomic_set",
    "atomic_add",
    "atomic_sub",
    "atomic_cmpxchg",
    "refcount_inc",
    "refcount_dec_and_test",
}

#: Member black list ((type, member) pairs; Sec. 5.3 item 3).
MEMBER_BLACKLIST = {
    ("inode", "i_data.page_tree"),
    ("super_block", "s_writers"),
    ("block_device", "bd_holder_disks"),
    ("journal_t", "j_wait_transaction_locked"),
    ("journal_t", "j_wait_done_commit"),
    ("journal_t", "j_wait_commit"),
    ("journal_t", "j_wait_updates"),
    ("journal_t", "j_wait_reserved"),
    ("journal_t", "j_history"),
    ("journal_t", "j_history_max"),
    ("journal_t", "j_history_cur"),
    ("journal_t", "j_stats"),
    ("pipe_inode_info", "wait"),
    ("backing_dev_info", "laptop_mode_wb_timer"),
}

#: Inode subclasses whose code is allowed to deviate (others are clean,
#: giving the zero-violation rows of Tab. 7).
DEVIANT_SUBCLASSES = {"ext4", "rootfs", "tmpfs", "sysfs", "devtmpfs", "bdev"}


def _m(
    member: str,
    read: Tuple[LockTok, ...] = (),
    write: Tuple[LockTok, ...] = (),
    group: str = "",
    weight: float = 1.0,
    rw: float = None,  # type: ignore[assignment]  # read_weight override
    ww: float = None,  # type: ignore[assignment]  # write_weight override
    read_skip: float = 0.0,
    write_skip: float = 0.0,
    lockfree_alt: float = 0.0,
) -> MemberSpec:
    return MemberSpec(
        member=member,
        read=read,
        write=write,
        read_skip=read_skip,
        write_skip=write_skip,
        weight=weight,
        read_weight=rw,
        write_weight=ww,
        group=group,
        lockfree_alt=lockfree_alt,
    )


# ----------------------------------------------------------------------
# struct inode
# ----------------------------------------------------------------------


def build_inode_spec() -> TypeSpec:
    """Ground truth for ``struct inode`` (the paper's flagship example).

    Highlights, matching the paper's findings:

    * ``i_state``/``i_bytes`` writes under ``ES(i_lock)`` — fully
      followed (Tab. 5: correct); ``i_state`` *reads* mostly skip the
      lock (Tab. 5: ``s_r = 19.78 %``).
    * ``i_blocks`` writes under ``ES(i_lock)`` with a small deviation
      (Tab. 5: 93.56 %); reads are lock-free (documented rule fails).
    * ``i_size`` is protected by ``i_rwsem`` + the seqcount — *not* by
      ``i_lock`` as the stale documentation claims (Tab. 5: 0 %).
    * ``i_hash`` takes ``inode_hash_lock -> ES(i_lock)``; the
      hand-written ``__remove_inode_hash`` also writes the list
      *neighbours*' ``i_hash`` while holding only the hash lock plus a
      foreign ``i_lock`` (the Sec. 7.4 mystery / Tab. 8 first row).
    * ``i_op``/``i_fop``/... are written under the *parent directory's*
      ``i_rwsem`` — an EO rule (Fig. 8).
    """
    t = [
        # -- owner/mode: the inode's own i_rwsem.
        _m("i_mode", write=(ES("i_rwsem"),), group="owner", weight=3.0),
        _m("i_uid", write=(ES("i_rwsem"),), group="owner", weight=3.0),
        _m("i_gid", write=(ES("i_rwsem"),), group="owner", weight=3.0),
        # i_flags: the confirmed kernel bug — a cmpxchg path updates it
        # without i_rwsem (inode_set_flags, Fig. 3).
        _m("i_flags", write=(ES("i_rwsem"),), group="owner", weight=3.0,
           write_skip=0.05),
        _m("i_opflags", weight=0.5, rw=0, ww=0),
        # -- timestamps: i_rwsem on write, lock-free reads.
        _m("i_atime", write=(ES("i_rwsem"),), group="times", weight=4.0),
        _m("i_mtime", write=(ES("i_rwsem"),), group="times", weight=4.0),
        _m("i_ctime", write=(ES("i_rwsem"),), group="times", weight=4.0),
        _m("i_version", write=(ES("i_rwsem"),), group="times", weight=2.0),
        # -- i_state: i_lock for writes; reads usually skip the lock.
        _m("i_state", read=(ES("i_lock"),), write=(ES("i_lock"),),
           group="state", weight=6.0, lockfree_alt=0.82),
        # -- accounting: i_lock; i_blocks writes deviate a little,
        #    reads are lock-free by design (documented rule says i_lock).
        _m("i_bytes", write=(ES("i_lock"),), group="bytes", weight=4.0),
        _m("i_blocks", write=(ES("i_lock"),), group="bytes",
           weight=4.0, write_skip=0.065),
        _m("i_blkbits", weight=0.5, ww=0),
        # -- i_size: i_rwsem + seqcount write side; seqcount reads.
        _m("i_size", read=(ES("i_size_seqcount", mode="r"),),
           write=(ES("i_rwsem"), ES("i_size_seqcount")),
           group="size", weight=5.0, read_skip=0.35),
        # -- hash chain: global hash lock, then own i_lock (inserts).
        _m("i_hash", read=(GLOBAL("inode_hash_lock"),),
           write=(GLOBAL("inode_hash_lock"), ES("i_lock")),
           group="hash", weight=8.0),
        # -- LRU: two legitimate paths (hand-written), global lru lock.
        _m("i_lru", read=(GLOBAL("inode_lru_lock"),),
           write=(GLOBAL("inode_lru_lock"),), group="lru", weight=0.2),
        # -- writeback lists: the bdi's wb.list_lock (EO rule, Fig. 8).
        _m("dirtied_when", write=(VIA("i_bdi", "wb.list_lock"),),
           group="wb", weight=2.0, rw=0),
        _m("dirtied_time_when", weight=1.0, rw=0, ww=0),
        _m("i_io_list", read=(VIA("i_bdi", "wb.list_lock"),),
           write=(VIA("i_bdi", "wb.list_lock"),), group="wb", weight=2.0),
        _m("i_wb", weight=1.0, rw=0, ww=0),
        _m("i_wb_frn_winner", weight=0.5, rw=0, ww=0),
        _m("i_wb_frn_avg_time", weight=0.5, rw=0, ww=0),
        _m("i_wb_frn_history", weight=0.5, rw=0, ww=0),
        # -- superblock lists.
        _m("i_sb_list", read=(VIA("i_sb", "s_inode_list_lock"),),
           write=(VIA("i_sb", "s_inode_list_lock"),), group="sblist", weight=2.0),
        _m("i_wb_list", read=(VIA("i_sb", "s_inode_wblist_lock"),),
           write=(VIA("i_sb", "s_inode_wblist_lock"),), group="wblist", weight=1.0),
        # -- ops tables: written under the parent dir's i_rwsem (EO).
        _m("i_op", write=(VIA("i_dir", "i_rwsem"),), group="ops", weight=2.0),
        _m("i_fop", write=(VIA("i_dir", "i_rwsem"),), group="ops", weight=2.0),
        _m("i_link", write=(VIA("i_dir", "i_rwsem"),), group="ops", weight=1.0),
        _m("i_acl", weight=1.0, rw=0, ww=0),
        _m("i_default_acl", weight=1.0, rw=0, ww=0),
        _m("i_private", write=(VIA("i_dir", "i_rwsem"),), group="ops", weight=1.0),
        # -- identity, immutable after init: lock-free reads only.
        _m("i_ino", weight=2.0, ww=0),
        _m("i_sb", weight=2.0, ww=0),
        _m("i_mapping", weight=1.0, ww=0),
        _m("i_rdev", weight=0.8, ww=0),
        _m("i_generation", weight=0.8, ww=0),
        _m("i_security", weight=0.8, ww=0),
        _m("i_nlink", write=(ES("i_rwsem"),), group="owner", weight=1.5),
        _m("i_flctx", weight=0.5, ww=0),
        _m("i_dir_seq", weight=0.5, group="misc"),  # lock-free r+w
        _m("i_fsnotify_mask", weight=0.5, ww=0),
        _m("i_fsnotify_marks", weight=0.5, rw=0, ww=0),
        # -- union-unrolled payload pointers: read-only after init here.
        _m("i_pipe", weight=0.7, rw=0, ww=0),
        _m("i_bdev", weight=0.7, rw=0, ww=0),
        _m("i_cdev", weight=0.7, rw=0, ww=0),
        # -- atomics: traced but filtered (Sec. 5.3).
        _m("i_count", group="refs", weight=1.0),
        _m("i_dio_count", weight=0.3),
        _m("i_writecount", weight=0.3),
        _m("i_readcount", weight=0.3),
        # -- i_data (address_space) members.
        _m("i_data.host", weight=1.0, ww=0),
        _m("i_data.page_tree", write=(ES("i_data.tree_lock", flavor="irq"),),
           group="pagecache", weight=2.0),  # blacklisted member
        _m("i_data.nrpages", read=(ES("i_data.tree_lock", flavor="irq"),),
           write=(ES("i_data.tree_lock", flavor="irq"),),
           group="pagecache", weight=2.0),
        _m("i_data.nrexceptional", write=(ES("i_data.tree_lock", flavor="irq"),),
           group="pagecache", weight=1.0, rw=0),
        _m("i_data.writeback_index", write=(VIA("i_sb", "s_umount", mode="r"),),
           group="wbindex", weight=1.0, rw=0),
        _m("i_data.a_ops", weight=1.0, ww=0),
        _m("i_data.flags", weight=0.8, group="misc"),  # lock-free r+w
        _m("i_data.gfp_mask", weight=0.8, group="misc"),  # lock-free r+w
        _m("i_data.private_data", weight=1.0, rw=0, ww=0),
        _m("i_data.private_list", read=(ES("i_data.private_lock"),),
           write=(ES("i_data.private_lock"),), group="private", weight=1.0),
        _m("i_data.assoc_mapping", weight=0.7, rw=0, ww=0),
        _m("i_data.i_mmap", read=(ES("i_data.i_mmap_rwsem", mode="r"),),
           write=(ES("i_data.i_mmap_rwsem"),), group="mmap", weight=1.0),
        _m("i_data.i_mmap_writable", weight=0.5, rw=0, ww=0),
        _m("i_data.wb_err", weight=0.5, group="misc"),  # lock-free r+w
        _m("i_data.nr_thps", weight=0.3, rw=0, ww=0),
        _m("i_data.mmap_base", weight=0.4, rw=0, ww=0),
    ]
    return TypeSpec(
        name="inode",
        members=t,
        ref_types={
            "i_dir": "inode",
            "i_sb": "super_block",
            "i_bdi": "backing_dev_info",
        },
        blacklist=("i_data.page_tree",),
        subclass_profiles=_inode_subclass_profiles(),
    )


def _inode_subclass_profiles() -> Dict[str, Dict[str, float]]:
    """Per-filesystem exercise profiles for inode op groups.

    Realizes the coverage differences of Tab. 6 (ext4 exercises nearly
    everything, debugfs barely anything, proc/sockfs are read-mostly)
    and the per-subclass violation pattern of Tab. 7 via ``_skips``
    (anon_inodefs/debugfs/pipefs/proc/sockfs are deviation-free).
    """
    return {
        "ext4": {"_default": 1.0, "_reads": 1.0, "_writes": 1.0, "_skips": 1.0,
                 "_rate": 1.0},
        "tmpfs": {"_default": 0.85, "wb": 0.4, "wbindex": 0.3,
                  "_reads": 1.0, "_writes": 0.75, "_skips": 0.5, "_rate": 0.9},
        "rootfs": {"_default": 0.85, "pagecache": 0.6,
                   "_reads": 1.0, "_writes": 0.7, "_skips": 1.0, "_rate": 0.9},
        "devtmpfs": {"_default": 0.65, "mmap": 0.0, "private": 0.4,
                     "_reads": 0.9, "_writes": 0.4, "_skips": 0.35, "_rate": 0.55},
        "bdev": {"_default": 0.55, "ops": 0.25, "wb": 0.6,
                 "_reads": 0.7, "_writes": 0.35, "_skips": 0.1, "_rate": 0.3},
        "sysfs": {"_default": 0.55, "pagecache": 0.0, "private": 0.0, "wb": 0.15,
                  "_reads": 0.9, "_writes": 0.2, "_skips": 0.8, "_rate": 0.5},
        "proc": {"_default": 0.5, "pagecache": 0.0, "wb": 0.0, "private": 0.0,
                 "size": 0.35, "_reads": 1.0, "_writes": 0.05, "_skips": 0.0,
                 "_rate": 0.5},
        "pipefs": {"_default": 0.45, "pagecache": 0.0, "wb": 0.0, "ops": 0.0,
                   "private": 0.0, "_reads": 0.9, "_writes": 0.035, "_skips": 0.0,
                   "_rate": 0.4},
        "sockfs": {"_default": 0.3, "pagecache": 0.0, "wb": 0.0, "ops": 0.0,
                   "private": 0.0, "mmap": 0.0,
                   "_reads": 0.6, "_writes": 0.012, "_skips": 0.0, "_rate": 0.15},
        "anon_inodefs": {"_default": 0.18, "pagecache": 0.0, "wb": 0.0, "ops": 0.0,
                         "private": 0.0, "mmap": 0.0,
                         "_reads": 0.4, "_writes": 0.012, "_skips": 0.0,
                         "_rate": 0.055},
        "debugfs": {"_default": 0.0, "state": 1.0,
                    "_reads": 0.0, "_writes": 1.0, "_skips": 0.0, "_rate": 0.012},
    }


# ----------------------------------------------------------------------
# struct dentry
# ----------------------------------------------------------------------


def build_dentry_spec() -> TypeSpec:
    """Ground truth for ``struct dentry``.

    ``d_lock`` protects mutable state; the global ``rename_lock``
    seqlock guards tree-topology changes; LRU members use the global
    ``dcache_lru_lock``.  Many members have both locked and RCU-walk
    lock-free read paths, which makes most documented read rules
    ambivalent (Tab. 4: dentry has the highest ambivalence, 63.64 %).
    ``d_subdirs`` is additionally traversed under the parent inode's
    ``i_rwsem`` plus RCU (Tab. 8's third example).
    """
    t = [
        _m("d_flags", read=(ES("d_lock"),), write=(ES("d_lock"),),
           group="flags", weight=4.0, read_skip=0.55),
        _m("d_hash", read=(RCU(),),
           write=(GLOBAL("rename_lock"), ES("d_lock")),
           group="rehash", weight=2.0),
        _m("d_parent", read=(ES("d_lock"),),
           write=(GLOBAL("rename_lock"), ES("d_lock")),
           group="rehash", weight=2.5, read_skip=0.5),
        _m("d_name", read=(ES("d_lock"),),
           write=(GLOBAL("rename_lock"), ES("d_lock")),
           group="rehash", weight=3.0, read_skip=0.45),
        _m("d_inode", read=(ES("d_lock"),), write=(ES("d_lock"), ES("d_seq")),
           group="inode", weight=4.0, read_skip=0.6),
        _m("d_iname", write=(ES("d_lock"),), group="inode", weight=4.0,
           write_skip=0.08),
        _m("d_count", group="refs", weight=2.0),  # atomic -> filtered
        _m("d_op", weight=1.0, group="misc"),  # lock-free r+w
        _m("d_sb", weight=1.5, group="misc"),  # lock-free r+w
        _m("d_time", write=(ES("d_lock"),), group="flags", weight=3.0,
           write_skip=0.08),
        _m("d_fsdata", read=(ES("d_lock"),), write=(ES("d_lock"),),
           group="flags", weight=2.5, rw=0, write_skip=0.08),
        _m("d_lru", read=(GLOBAL("dcache_lru_lock"),),
           write=(GLOBAL("dcache_lru_lock"), ES("d_lock")),
           group="lru", weight=3.5, write_skip=0.06),
        _m("d_child", read=(VIA("d_parent", "d_lock"),),
           write=(VIA("d_parent", "d_lock"), ES("d_lock")),
           group="tree", weight=3.0),
        _m("d_subdirs", read=(ES("d_lock"),), write=(ES("d_lock"),),
           group="subdirs", weight=8.0, write_skip=0.06),
        _m("d_alias", read=(ES("d_lock"),), write=(ES("d_lock"),),
           group="inode", weight=1.5, lockfree_alt=0.3),
        _m("d_rcu", weight=0.3, group="misc"),  # lock-free r+w
        _m("d_mounted", read=(ES("d_lock"),), write=(ES("d_lock"),),
           group="flags", weight=0.8, read_skip=0.4),
        _m("d_cookie", weight=0.3, group="misc"),  # lock-free r+w
        _m("d_bucket", read=(RCU(),),
           write=(GLOBAL("rename_lock"), ES("d_lock")),
           group="rehash", weight=0.5),
        _m("d_genocide_count", weight=0.4, rw=0, ww=0),
        _m("d_wait", weight=0.3, group="misc"),  # lock-free r+w
    ]
    return TypeSpec(
        name="dentry",
        members=t,
        ref_types={"d_parent": "dentry", "d_inode": "inode", "d_sb": "super_block"},
        blacklist=(),
    )


# ----------------------------------------------------------------------
# struct super_block
# ----------------------------------------------------------------------


def build_super_block_spec() -> TypeSpec:
    """``struct super_block``: ``s_umount`` for mount state, the global
    ``sb_lock`` for the super list, per-list spinlocks for inode lists.
    Almost everything else is set at mount time and only read by the
    benchmark (paper: only 8 write rules, Tab. 6)."""
    t = [
        _m("s_list", read=(GLOBAL("sb_lock"),), write=(GLOBAL("sb_lock"),),
           group="sblist", weight=1.5),
        _m("s_dev", weight=1.0, ww=0),
        _m("s_blocksize", weight=1.5, ww=0),
        _m("s_blocksize_bits", weight=1.0, ww=0),
        _m("s_dirt", read=(ES("s_umount", mode="r"),), write=(ES("s_umount"),),
           group="mount", weight=1.5, write_skip=0.06),
        _m("s_maxbytes", weight=1.0, ww=0),
        _m("s_type", weight=1.0, ww=0),
        _m("s_op", weight=1.5, ww=0),
        _m("dq_op", weight=0.4, ww=0),
        _m("s_qcop", weight=0.4, ww=0),
        _m("s_export_op", weight=0.4, ww=0),
        _m("s_flags", read=(ES("s_umount", mode="r"),), write=(ES("s_umount"),),
           group="mount", weight=2.5, read_skip=0.08),
        _m("s_iflags", read=(ES("s_umount", mode="r"),), group="mount",
           weight=1.0, ww=0),
        _m("s_magic", weight=1.0, ww=0),
        _m("s_root", read=(ES("s_umount", mode="r"),), group="mount",
           weight=1.5, ww=0),
        _m("s_count", read=(GLOBAL("sb_lock"),), write=(GLOBAL("sb_lock"),),
           group="sblist", weight=1.5),
        _m("s_active", group="refs", weight=1.0),  # atomic
        _m("s_security", weight=0.4, rw=0, ww=0),
        _m("s_xattr", weight=0.4, ww=0),
        _m("s_inodes", read=(ES("s_inode_list_lock"),),
           write=(ES("s_inode_list_lock"),), group="inodes", weight=3.0),
        _m("s_inodes_wb", read=(ES("s_inode_wblist_lock"),),
           write=(ES("s_inode_wblist_lock"),), group="wb", weight=1.5,
           write_skip=0.02),
        _m("s_mounts", read=(GLOBAL("sb_lock"),), group="sblist",
           weight=1.0, ww=0),
        _m("s_bdev", weight=1.0, ww=0),
        _m("s_bdi", weight=1.0, ww=0),
        _m("s_mtd", weight=0.2, rw=0, ww=0),
        _m("s_instances", read=(GLOBAL("sb_lock"),), group="sblist",
           weight=0.7, ww=0),
        _m("s_quota_types", weight=0.3, rw=0, ww=0),
        _m("s_dquot", weight=0.3, rw=0, ww=0),
        _m("s_writers", group="mount", weight=0.5),  # blacklisted member
        _m("s_id", weight=1.0, ww=0),
        _m("s_uuid", weight=0.6, ww=0),
        _m("s_fs_info", weight=1.2, ww=0),
        _m("s_max_links", weight=0.5, ww=0),
        _m("s_mode", weight=0.6, ww=0),
        _m("s_time_gran", weight=0.6, ww=0),
        _m("s_subtype", weight=0.3, rw=0, ww=0),
        _m("s_shrink", weight=0.3, rw=0, ww=0),
        _m("s_remove_count", weight=0.4),  # atomic
        _m("s_readonly_remount", read=(ES("s_umount", mode="r"),),
           write=(ES("s_umount"),), group="mount", weight=0.8, write_skip=0.03),
        _m("s_dio_done_wq", weight=0.3, rw=0, ww=0),
        _m("s_pins", weight=0.3, rw=0, ww=0),
        _m("s_user_ns", weight=0.4, ww=0),
        _m("s_inode_lru", read=(GLOBAL("inode_lru_lock"),),
           group="lru", weight=1.2, ww=0),
        _m("s_dentry_lru", read=(GLOBAL("dcache_lru_lock"),),
           group="lru", weight=1.2, ww=0),
        _m("s_mount_opts", weight=0.4, ww=0),
        _m("s_d_op", weight=0.4, ww=0),
        _m("s_cleancache_poolid", weight=0.2, rw=0, ww=0),
        _m("s_stack_depth", weight=0.2, rw=0, ww=0),
        _m("s_fsnotify_mask", weight=0.3, rw=0, ww=0),
        _m("s_fsnotify_marks", weight=0.3, rw=0, ww=0),
        _m("s_time_min", weight=0.3, ww=0),
        _m("s_time_max", weight=0.3, ww=0),
        _m("s_wb_err", weight=0.5, group="misc"),  # lock-free r+w
        _m("s_lsi", weight=0.2, rw=0, ww=0),
        _m("s_sync_count", weight=0.6, group="misc"),  # lock-free r+w
        _m("s_pflags", weight=0.3, rw=0, ww=0),
    ]
    return TypeSpec(
        name="super_block",
        members=t,
        ref_types={},
        blacklist=("s_writers",),
    )


# ----------------------------------------------------------------------
# struct block_device / struct cdev
# ----------------------------------------------------------------------


def build_block_device_spec() -> TypeSpec:
    """``struct block_device``: ``bd_mutex`` for open/close state,
    global ``bdev_lock`` for claiming.  One rare unlocked write of
    ``bd_write_holder`` gives the single violating event of Tab. 7."""
    t = [
        _m("bd_dev", weight=1.0, group="misc"),  # lock-free r+w
        _m("bd_openers", read=(ES("bd_mutex"),), write=(ES("bd_mutex"),),
           group="open", weight=2.5),
        _m("bd_inode", weight=1.0, ww=0),
        _m("bd_super", write=(ES("bd_mutex"),), group="open", weight=0.8, rw=0),
        _m("bd_claiming", read=(GLOBAL("bdev_lock"),),
           write=(GLOBAL("bdev_lock"),), group="claim", weight=1.5),
        _m("bd_holder", read=(GLOBAL("bdev_lock"),),
           write=(GLOBAL("bdev_lock"),), group="claim", weight=1.5),
        _m("bd_holders", group="claim", weight=1.0),  # atomic
        _m("bd_write_holder", write=(GLOBAL("bdev_lock"),), group="claim",
           weight=0.6, rw=0, write_skip=0.008),
        _m("bd_holder_disks", group="claim", weight=0.4),  # blacklisted
        _m("bd_contains", write=(ES("bd_mutex"),), group="open", weight=0.8, rw=0),
        _m("bd_block_size", read=(ES("bd_mutex"),), write=(ES("bd_mutex"),),
           group="open", weight=1.5),
        _m("bd_partno", weight=0.8, group="misc"),  # lock-free r+w
        _m("bd_part", write=(ES("bd_mutex"),), group="open", weight=1.0, rw=0),
        _m("bd_part_count", read=(ES("bd_mutex"),), group="open", weight=1.0,
           ww=0),
        _m("bd_invalidated", weight=1.0, rw=0, ww=0),
        _m("bd_disk", weight=1.0, group="misc"),  # lock-free r+w
        _m("bd_queue", weight=0.8, group="misc"),  # lock-free r+w
        _m("bd_bdi", weight=0.8, group="misc"),  # lock-free r+w
        _m("bd_list", read=(GLOBAL("bdev_lock"),), group="claim",
           weight=1.0, ww=0),
        _m("bd_private", weight=0.5, rw=0, group="misc"),  # lock-free w
        _m("bd_fsfreeze_count", read=(ES("bd_fsfreeze_mutex"),),
           write=(ES("bd_fsfreeze_mutex"),), group="freeze", weight=0.8),
    ]
    return TypeSpec(
        name="block_device",
        members=t,
        ref_types={"bd_bdi": "backing_dev_info"},
        blacklist=("bd_holder_disks",),
    )


def build_cdev_spec() -> TypeSpec:
    """``struct cdev``: list membership and registration count under the
    global cdev_lock; the rest is effectively immutable registration
    data.  Deliberately clean — zero violations in Tab. 7."""
    t = [
        _m("kobj", weight=0.8, rw=0, group="misc"),  # lock-free w
        _m("owner", weight=0.8, rw=0, group="misc"),  # lock-free w
        _m("ops", weight=1.0, group="misc"),  # lock-free r+w
        _m("list", read=(GLOBAL("cdev_lock"),), write=(GLOBAL("cdev_lock"),),
           group="reg", weight=1.5, rw=0),
        _m("dev", weight=1.0, group="misc"),  # lock-free r+w
        _m("count", write=(GLOBAL("cdev_lock"),), group="reg", weight=1.0, rw=0),
    ]
    return TypeSpec(name="cdev", members=t, ref_types={}, blacklist=())


# ----------------------------------------------------------------------
# struct buffer_head
# ----------------------------------------------------------------------


def build_buffer_head_spec() -> TypeSpec:
    """``struct buffer_head``: the violation fountain (Tab. 7).

    The uptodate bit-lock (modelled as ``b_uptodate_lock``) must be
    taken with irqs disabled because IO completion runs in softirq
    context.  Hot paths touch ``b_state``/``b_end_io``/``b_private``
    without it at rates just below the accept threshold, so the true
    rule still wins — and every hot-path access is flagged.
    """
    irq_lock = (ES("b_uptodate_lock", flavor="irq"),)
    t = [
        _m("b_state", read=irq_lock, write=irq_lock, group="state",
           weight=8.0, read_skip=0.045, write_skip=0.04),
        _m("b_this_page", weight=2.0, group="misc"),  # lock-free r+w
        _m("b_page", weight=2.0, rw=0, group="misc"),  # lock-free w
        _m("b_blocknr", weight=2.0, ww=0),
        _m("b_size", weight=2.0, ww=0),
        _m("b_data", weight=2.5, group="misc"),  # lock-free r+w
        _m("b_bdev", weight=1.5, group="misc"),  # lock-free r+w
        _m("b_end_io", read=(), write=irq_lock, group="io", weight=3.0,
           write_skip=0.04),
        _m("b_private", write=irq_lock, group="io", weight=2.0, rw=0,
           write_skip=0.035),
        _m("b_assoc_buffers", read=(VIA("b_assoc_map", "i_data.private_lock"),),
           write=(VIA("b_assoc_map", "i_data.private_lock"),),
           group="assoc", weight=1.0, read_skip=0.04),
        _m("b_assoc_map", write=(VIA("b_assoc_map", "i_data.private_lock"),),
           group="assoc", weight=0.8, rw=0),
        _m("b_count", read=(), write=irq_lock, group="state", weight=4.0,
           write_skip=0.035),
        _m("b_maybe_boundary", weight=0.8, rw=0, ww=0),
    ]
    return TypeSpec(
        name="buffer_head",
        members=t,
        ref_types={"b_assoc_map": "inode"},
        blacklist=(),
    )


# ----------------------------------------------------------------------
# struct backing_dev_info
# ----------------------------------------------------------------------


def build_bdi_spec() -> TypeSpec:
    """``struct backing_dev_info``: ``wb.list_lock`` for writeback
    lists and bandwidth accounting, ``wb.work_lock`` for the work
    queue, global ``bdi_lock`` for the bdi list.  The four bandwidth
    members are occasionally updated racily (Tab. 7: 267 events over
    4 members)."""
    wb_list = (ES("wb.list_lock"),)
    wb_work = (ES("wb.work_lock"),)
    t = [
        _m("bdi_list", read=(GLOBAL("bdi_lock"),), group="reg", weight=1.2,
           ww=0),
        _m("ra_pages", weight=1.5, group="misc"),  # lock-free r+w
        _m("io_pages", weight=1.0, ww=0),
        _m("dev", weight=0.8, ww=0),
        _m("name", weight=0.8, ww=0),
        _m("owner", weight=0.6, rw=0, ww=0),
        _m("min_ratio", weight=0.6, ww=0),
        _m("max_ratio", weight=0.6, ww=0),
        _m("bw_time_stamp", read=wb_list, write=wb_list, group="bw",
           weight=2.0, write_skip=0.05),
        _m("written_stamp", write=wb_list, group="bw", weight=2.0, rw=0,
           write_skip=0.05),
        _m("write_bandwidth", read=wb_list, write=wb_list, group="bw",
           weight=2.0, write_skip=0.06),
        _m("avg_write_bandwidth", write=wb_list, group="bw", weight=2.0, rw=0,
           write_skip=0.04),
        _m("dirty_ratelimit", read=wb_list, write=wb_list, group="bw", weight=1.5),
        _m("balanced_dirty_ratelimit", write=wb_list, group="bw",
           weight=1.5, rw=0),
        _m("completions", weight=1.0, ww=0),
        _m("dirty_exceeded", weight=1.0, ww=0),
        _m("min_prop_frac", weight=0.5, rw=0, ww=0),
        _m("max_prop_frac", weight=0.5, rw=0, ww=0),
        _m("usage_cnt", weight=0.8),  # atomic
        _m("capabilities", weight=0.8, ww=0),
        _m("congested", weight=1.0, group="misc"),  # lock-free r+w
        _m("wb_waitq", weight=0.4, rw=0, ww=0),
        _m("dev_name", weight=0.4, ww=0),
        _m("laptop_mode_wb_timer", weight=0.3),  # blacklisted
        _m("wb.state", read=wb_list, write=wb_list, group="wblists",
           weight=2.0, read_skip=0.04),
        _m("wb.last_old_flush", read=wb_list, write=wb_list, group="wblists",
           weight=1.0),
        _m("wb.b_dirty", read=wb_list, write=wb_list, group="wblists", weight=2.5),
        _m("wb.b_io", read=wb_list, write=wb_list, group="wblists", weight=2.0),
        _m("wb.b_more_io", read=wb_list, write=wb_list, group="wblists", weight=1.5),
        _m("wb.b_dirty_time", read=wb_list, write=wb_list, group="wblists",
           weight=1.0),
        _m("wb.bandwidth", write=wb_list, group="bw", weight=1.0, rw=0),
        _m("wb.avg_write_bandwidth", write=wb_list, group="bw", weight=1.0, rw=0),
        _m("wb.balanced_dirty_ratelimit", write=wb_list, group="bw",
           weight=1.0, rw=0),
        _m("wb.completions", weight=0.8, rw=0, ww=0),
        _m("wb.dirty_exceeded", weight=0.8, rw=0, ww=0),
        _m("wb.start_all_reason", write=wb_work, group="work", weight=1.0, rw=0),
        _m("wb.refcnt", weight=0.6),  # atomic
        _m("wb.work_list", read=wb_work, write=wb_work, group="work", weight=1.5),
        _m("wb.dwork", write=wb_work, group="work", weight=1.0, rw=0),
        _m("wb.last_comp", weight=0.5, group="misc"),  # lock-free r+w
        _m("wb.memcg_css", weight=0.4, rw=0, ww=0),
        _m("wb.blkcg_css", weight=0.4, rw=0, ww=0),
        _m("wb.congested_data", weight=0.4, rw=0, ww=0),
    ]
    return TypeSpec(
        name="backing_dev_info",
        members=t,
        ref_types={},
        blacklist=("laptop_mode_wb_timer",),
    )


# ----------------------------------------------------------------------
# struct pipe_inode_info
# ----------------------------------------------------------------------


def build_pipe_spec() -> TypeSpec:
    """``struct pipe_inode_info``: one big mutex, taken by both ends;
    the poll fast path peeks at counters without it (Tab. 7: 9 events,
    3 members)."""
    mx = (ES("mutex"),)
    t = [
        _m("nrbufs", read=mx, write=mx, group="ring", weight=4.0,
           read_skip=0.002),
        _m("curbuf", read=mx, write=mx, group="ring", weight=4.0),
        _m("buffers", read=mx, group="ring", weight=2.0, ww=0),
        _m("readers", read=mx, write=mx, group="ends", weight=2.0,
           read_skip=0.002),
        _m("writers", read=mx, write=mx, group="ends", weight=2.0,
           read_skip=0.002),
        _m("files", group="ends", weight=1.0),  # atomic
        _m("waiting_writers", read=mx, write=mx, group="ends", weight=1.5),
        _m("r_counter", read=mx, write=mx, group="counters", weight=1.0),
        _m("w_counter", read=mx, write=mx, group="counters", weight=1.0),
        _m("fasync_readers", weight=0.6, ww=0),
        _m("fasync_writers", weight=0.6, ww=0),
        _m("bufs", read=mx, write=mx, group="ring", weight=3.0),
        _m("user", weight=0.6, ww=0),
        _m("tmp_page", write=mx, group="ring", weight=1.0, rw=0),
        _m("wait", weight=0.4, ww=0),  # blacklisted
        _m("max_usage", weight=0.6, ww=0),
    ]
    return TypeSpec(
        name="pipe_inode_info", members=t, ref_types={}, blacklist=("wait",)
    )


# ----------------------------------------------------------------------
# JBD2: journal_t / transaction_t / journal_head
# ----------------------------------------------------------------------


def build_journal_spec() -> TypeSpec:
    """``journal_t``: ``j_state_lock`` (rwlock) guards commit state,
    ``j_list_lock`` the checkpoint lists, two mutexes serialize
    checkpointing and the barrier.  Fast-path reads of sequence
    numbers and a couple of tail updates skip ``j_state_lock``
    (Tab. 7: 3 845 events over 7 members)."""
    state_r = (ES("j_state_lock", mode="r"),)
    state_w = (ES("j_state_lock", mode="w"),)
    jlist = (ES("j_list_lock"),)
    t = [
        _m("j_flags", read=state_r, write=state_w, group="state", weight=4.0,
           read_skip=0.07),
        _m("j_errno", read=state_r, write=state_w, group="state", weight=3.0,
           write_skip=0.06),
        _m("j_sb_buffer", weight=0.8, ww=0),
        _m("j_format_version", weight=0.5, ww=0),
        _m("j_barrier_count", read=state_r, write=state_w, group="state",
           weight=1.0),
        _m("j_running_transaction", read=state_r, write=state_w,
           group="txn", weight=4.0, read_skip=0.05),
        _m("j_committing_transaction", read=state_r, write=state_w,
           group="txn", weight=3.0, read_skip=0.05),
        _m("j_checkpoint_transactions", read=jlist, write=jlist,
           group="checkpoint", weight=2.0),
        _m("j_wait_transaction_locked", weight=0.4),  # blacklisted
        _m("j_wait_done_commit", weight=0.4),  # blacklisted
        _m("j_wait_commit", weight=0.4),  # blacklisted
        _m("j_wait_updates", weight=0.4),  # blacklisted
        _m("j_wait_reserved", weight=0.3),  # blacklisted
        _m("j_head", read=state_r, write=state_w, group="log", weight=2.0),
        _m("j_tail", read=state_r, write=state_w, group="log", weight=2.0,
           write_skip=0.045),
        _m("j_free", read=state_r, write=state_w, group="log", weight=2.0,
           write_skip=0.045),
        _m("j_first", weight=0.6, ww=0),
        _m("j_last", weight=0.6, ww=0),
        _m("j_dev", weight=0.6, ww=0),
        _m("j_blocksize", weight=0.8, ww=0),
        _m("j_blk_offset", weight=0.5, ww=0),
        _m("j_fs_dev", weight=0.5, ww=0),
        _m("j_maxlen", weight=0.6, ww=0),
        _m("j_reserved_credits", weight=0.8),  # atomic
        _m("j_tail_sequence", read=state_r, write=state_w, group="log",
           weight=1.5),
        _m("j_transaction_sequence", read=state_r, write=state_w,
           group="txn", weight=2.0),
        _m("j_commit_sequence", read=state_r, write=state_w, group="seq",
           weight=2.5, read_skip=0.08),
        _m("j_commit_request", read=state_r, write=state_w, group="seq",
           weight=2.5, read_skip=0.08),
        _m("j_uuid", weight=0.4, ww=0),
        _m("j_task", write=state_w, group="state", weight=0.8, rw=0),
        _m("j_max_transaction_buffers", weight=0.6, ww=0),
        _m("j_commit_interval", weight=0.6, ww=0),
        _m("j_commit_timer", write=state_w, group="state", weight=0.8, rw=0),
        _m("j_revoke", read=(ES("j_checkpoint_mutex"),),
           write=(ES("j_checkpoint_mutex"),), group="revoke", weight=1.0),
        _m("j_revoke_table", write=(ES("j_checkpoint_mutex"),),
           group="revoke", weight=0.8, rw=0),
        _m("j_wbuf", read=(ES("j_barrier"),), write=(ES("j_barrier"),),
           group="barrier", weight=1.0),
        _m("j_wbufsize", weight=0.5, rw=0, ww=0),
        _m("j_last_sync_writer", weight=1.0, rw=0, group="misc"),  # lock-free w
        _m("j_average_commit_time", write=state_w, group="seq", weight=1.0,
           rw=0, write_skip=0.05),
        _m("j_min_batch_time", weight=0.4, ww=0),
        _m("j_max_batch_time", weight=0.4, ww=0),
        _m("j_commit_callback", weight=0.4, ww=0),
        _m("j_failed_commit", weight=0.5, rw=0, ww=0),
        _m("j_chksum_driver", weight=0.3, ww=0),
        _m("j_csum_seed", weight=0.3, ww=0),
        _m("j_devname", weight=0.4, ww=0),
        _m("j_superblock", weight=0.5, ww=0),
        _m("j_history", weight=0.3),  # blacklisted
        _m("j_history_max", weight=0.2),  # blacklisted
        _m("j_history_cur", weight=0.2),  # blacklisted
        _m("j_private", weight=0.3, ww=0),
        _m("j_fc_off", read=jlist, write=jlist, group="checkpoint", weight=0.6),
        _m("j_fc_wbuf", write=jlist, group="checkpoint", weight=0.5, rw=0),
        _m("j_fc_wbufsize", weight=0.3, ww=0),
        _m("j_fc_cleanup_callback", weight=0.2, rw=0, ww=0),
        _m("j_fc_replay_callback", weight=0.2, rw=0, ww=0),
        _m("j_stats", weight=0.3),  # blacklisted
        _m("j_overflow_count", weight=0.3),  # atomic
    ]
    return TypeSpec(
        name="journal_t",
        members=t,
        ref_types={},
        blacklist=(
            "j_wait_transaction_locked",
            "j_wait_done_commit",
            "j_wait_commit",
            "j_wait_updates",
            "j_wait_reserved",
            "j_history",
            "j_history_max",
            "j_history_cur",
            "j_stats",
        ),
    )


def build_transaction_spec() -> TypeSpec:
    """``transaction_t``: guarded by the journal's ``j_state_lock`` /
    ``j_list_lock`` (EO rules) and its own ``t_handle_lock``.
    Deliberately clean (zero violations; best-validated struct of
    Tab. 4 at 79.31 % correct)."""
    j_state = (VIA("t_journal", "j_state_lock", mode="w"),)
    j_state_r = (VIA("t_journal", "j_state_lock", mode="r"),)
    j_list = (VIA("t_journal", "j_list_lock"),)
    handle = (ES("t_handle_lock"),)
    t = [
        _m("t_journal", weight=1.0, ww=0),
        _m("t_tid", weight=2.0, ww=0),
        _m("t_state", read=j_state_r, write=j_state, group="state", weight=3.0),
        _m("t_log_start", read=j_state_r, write=j_state, group="state", weight=1.0),
        _m("t_nr_buffers", read=j_list, write=j_list, group="lists", weight=2.0),
        _m("t_reserved_list", write=j_list, group="lists", weight=1.0, rw=0),
        _m("t_buffers", read=j_list, write=j_list, group="lists", weight=2.5),
        _m("t_forget", read=j_list, write=j_list, group="lists", weight=1.5),
        _m("t_checkpoint_list", read=j_list, write=j_list, group="lists",
           weight=1.5),
        _m("t_checkpoint_io_list", write=j_list, group="lists", weight=1.0, rw=0),
        _m("t_shadow_list", read=j_list, write=j_list, group="lists", weight=1.0),
        _m("t_log_list", write=j_list, group="lists", weight=1.0, rw=0),
        _m("t_updates", group="handle", weight=1.5),  # atomic
        _m("t_outstanding_credits", read=handle, write=handle, group="handle",
           weight=2.0),
        _m("t_handle_count", read=handle, write=handle, group="handle", weight=1.5),
        _m("t_expires", read=j_state_r, write=j_state, group="state", weight=1.0,
           read_skip=0.3),
        _m("t_start_time", weight=1.0, ww=0),
        _m("t_start", read=j_state_r, write=j_state, group="state", weight=1.0),
        _m("t_requested", read=j_state_r, write=j_state, group="state", weight=2.5,
           read_skip=0.35),
        _m("t_chp_stats", weight=0.6, rw=0, ww=0),
        _m("t_tnext", read=j_list, write=j_list, group="cplink", weight=0.8),
        _m("t_tprev", read=j_list, write=j_list, group="cplink", weight=0.8),
        _m("t_need_data_flush", read=j_state_r, group="state", weight=2.0, ww=0,
           read_skip=0.3),
        _m("t_synchronous_commit", write=j_state, group="state", weight=0.6,
           rw=0),
        _m("t_gc_count", weight=0.4, group="misc"),  # lock-free r+w
        _m("t_max_wait", weight=0.5, ww=0),
        _m("t_run_state", read=j_state_r, group="state", weight=2.0, ww=0,
           read_skip=0.25),
    ]
    return TypeSpec(
        name="transaction_t",
        members=t,
        ref_types={"t_journal": "journal_t"},
        blacklist=(),
    )


def build_journal_head_spec() -> TypeSpec:
    """``struct journal_head``: ``b_state_lock`` (the jbd bit-lock) for
    per-buffer journalling state, combined with the journal's
    ``j_list_lock`` for list membership.  Clean (zero violations);
    several payload pointers are read lock-free once frozen."""
    bstate = (ES("b_state_lock"),)
    blist = (ES("b_state_lock"), VIA("b_journal", "j_list_lock"))
    t = [
        _m("b_bh", weight=1.5, ww=0),
        _m("b_jcount", read=bstate, write=bstate, group="state", weight=2.0),
        _m("b_jlist", read=blist, write=blist, group="lists", weight=4.0,
           read_skip=0.34),
        _m("b_modified", read=(), write=bstate, group="state", weight=2.0),
        _m("b_frozen_data", read=(), write=bstate, group="data", weight=1.5),
        _m("b_committed_data", read=(), write=bstate, group="data", weight=1.0),
        _m("b_transaction", read=blist, write=blist, group="lists", weight=4.0,
           read_skip=0.32),
        _m("b_next_transaction", read=blist, write=blist, group="lists",
           weight=3.0, read_skip=0.32),
        _m("b_cp_transaction", read=blist, write=blist, group="cp", weight=3.0,
           read_skip=0.32),
        _m("b_tnext", read=blist, write=blist, group="lists", weight=1.0),
        _m("b_tprev", read=blist, write=blist, group="lists", weight=1.0),
        _m("b_cpnext", write=blist, group="cp", weight=0.8, rw=0),
        _m("b_cpprev", write=blist, group="cp", weight=0.8, rw=0),
        _m("b_triggers", read=(), group="data", weight=0.6, ww=0),
        _m("b_frozen_triggers", read=(), group="data", weight=0.5, ww=0),
    ]
    return TypeSpec(
        name="journal_head",
        members=t,
        ref_types={"b_journal": "journal_t"},
        blacklist=(),
    )


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------

_BUILDERS = {
    "backing_dev_info": build_bdi_spec,
    "block_device": build_block_device_spec,
    "buffer_head": build_buffer_head_spec,
    "cdev": build_cdev_spec,
    "dentry": build_dentry_spec,
    "inode": build_inode_spec,
    "journal_head": build_journal_head_spec,
    "journal_t": build_journal_spec,
    "pipe_inode_info": build_pipe_spec,
    "super_block": build_super_block_spec,
    "transaction_t": build_transaction_spec,
}

#: The filesystem subclasses of struct inode observed in Tab. 6.
INODE_SUBCLASSES = (
    "anon_inodefs",
    "bdev",
    "debugfs",
    "devtmpfs",
    "ext4",
    "pipefs",
    "proc",
    "rootfs",
    "sockfs",
    "sysfs",
    "tmpfs",
)


def build_all_specs() -> Dict[str, TypeSpec]:
    """Fresh ground-truth specs for all 11 types."""
    return {name: builder() for name, builder in _BUILDERS.items()}


def build_filter_config() -> FilterConfig:
    """The Sec. 5.3 filter configuration matching the ground truth."""
    return FilterConfig(
        init_teardown_functions=set(INIT_TEARDOWN_FUNCTIONS),
        global_function_blacklist=set(GLOBAL_FUNCTION_BLACKLIST),
        per_type_function_blacklist={},
        member_blacklist=set(MEMBER_BLACKLIST),
    )
