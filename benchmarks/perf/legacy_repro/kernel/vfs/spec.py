"""Ground-truth locking specification model.

The real kernel's locking discipline lives implicitly in its code; the
simulated kernel makes it explicit: a :class:`TypeSpec` per data type
records, for each member, which locks reads and writes take (a list of
:class:`LockTok`), how often the code base *deviates* from that rule
(injected, seeded misbehaviour — the paper's fundamental assumption is
that such deviations are rare), and how strongly the workload exercises
the member.

The spec is consumed twice:

* the operation engine (:mod:`benchmarks.perf.legacy_repro.kernel.vfs.ops`) synthesizes
  kernel functions from it, and
* tests/experiments use :func:`MemberSpec.expected_rule` as the known
  ground truth to validate what LockDoc mines.

Lock tokens
-----------

========  ==============================================================
kind      meaning
========  ==============================================================
``es``    lock embedded in the accessed object (``LockTok.es("i_lock")``)
``via``   lock embedded in the object referenced by ``refs[via]`` of
          the accessed object — an *embedded other* lock from the
          access's perspective
``global``a static lock (``inode_hash_lock``)
``rcu``   an RCU read-side section
========  ==============================================================

``flavor`` selects the acquisition API for spinlocks (``None`` →
``spin_lock``, ``"irq"`` → ``spin_lock_irq``, ``"bh"`` →
``spin_lock_bh``); ``mode`` selects the side of reader/writer locks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from benchmarks.perf.legacy_repro.core.lockrefs import LockRef
from benchmarks.perf.legacy_repro.core.rules import LockingRule

@dataclass(frozen=True)
class LockTok:
    """One lock to take, described declaratively."""

    kind: str  # "es" | "via" | "global" | "rcu"
    name: str = ""  # lock member / global lock name
    via: str = ""  # for kind == "via": member holding the object ref
    mode: str = "w"  # "r" or "w" for reader/writer locks
    flavor: Optional[str] = None  # None | "irq" | "bh" (spinlocks)
    lock_class: str = "spinlock_t"  # class of global locks (creation)

    @classmethod
    def es(cls, name: str, mode: str = "w", flavor: Optional[str] = None) -> "LockTok":
        return cls("es", name=name, mode=mode, flavor=flavor)

    @classmethod
    def via_(
        cls, via: str, name: str, mode: str = "w", flavor: Optional[str] = None
    ) -> "LockTok":
        return cls("via", name=name, via=via, mode=mode, flavor=flavor)

    @classmethod
    def global_(
        cls,
        name: str,
        mode: str = "w",
        flavor: Optional[str] = None,
        lock_class: str = "spinlock_t",
    ) -> "LockTok":
        return cls("global", name=name, mode=mode, flavor=flavor, lock_class=lock_class)

    @classmethod
    def rcu(cls) -> "LockTok":
        return cls("rcu", name="rcu", mode="r")

    def expected_refs(self, owner_types: Dict[str, str]) -> List[LockRef]:
        """The lock references an access under this token observes.

        *owner_types* maps ``via`` member names to the data type of the
        referenced object (needed to name EO refs).  Flavored spinlock
        acquisition additionally holds the synthetic hardirq/softirq
        lock, so those pseudo refs are included (in acquisition order:
        pseudo first, as ``spin_lock_irq`` disables first).
        """
        refs: List[LockRef] = []
        if self.flavor == "irq":
            refs.append(LockRef.global_("hardirq"))
        elif self.flavor == "bh":
            refs.append(LockRef.global_("softirq"))
        if self.kind == "es":
            # owner type of the accessed object itself:
            refs.append(LockRef.es(self.name, owner_types["<self>"], self.mode))
        elif self.kind == "via":
            refs.append(LockRef.eo(self.name, owner_types[self.via], self.mode))
        elif self.kind == "global":
            refs.append(LockRef.global_(self.name, self.mode))
        elif self.kind == "rcu":
            refs.append(LockRef.global_("rcu", "r"))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown token kind {self.kind}")
        return refs


RuleSpec = Tuple[LockTok, ...]


@dataclass
class MemberSpec:
    """Ground truth for one data member.

    Attributes:
        member: the (flattened) member name.
        read / write: the lock tokens legitimate code takes.
        read_skip / write_skip: probability that a synthesized access
            deviates (drops locks) — the injected-bug rate.
        weight: relative exercise frequency in the op engine.
        read_weight / write_weight: per-access-type overrides of
            ``weight``; 0 disables the access type at runtime entirely
            (e.g. identity members only ever written during init).
        group: members sharing a group are accessed together by one
            synthesized kernel function (one transaction).
    """

    member: str
    read: RuleSpec = ()
    write: RuleSpec = ()
    read_skip: float = 0.0
    write_skip: float = 0.0
    weight: float = 1.0
    read_weight: Optional[float] = None
    write_weight: Optional[float] = None
    group: str = ""
    #: probability of a *legitimate* lock-free alternative read path
    #: (an RCU-style fast path) — unlike read_skip this is not a bug,
    #: is never scaled down by a subclass's "_skips", and it only
    #: applies to reads.
    lockfree_alt: float = 0.0

    def weight_for(self, access_type: str) -> float:
        override = self.write_weight if access_type == "w" else self.read_weight
        return self.weight if override is None else override

    def rule_spec(self, access_type: str) -> RuleSpec:
        return self.write if access_type == "w" else self.read

    def expected_rule(
        self, access_type: str, owner_types: Dict[str, str]
    ) -> LockingRule:
        """The ground-truth :class:`LockingRule` for this member."""
        refs: List[LockRef] = []
        for token in self.rule_spec(access_type):
            refs.extend(token.expected_refs(owner_types))
        # A rule never repeats a ref (e.g. two irq-flavored locks both
        # contribute the hardirq pseudo ref once).
        seen = set()
        unique = []
        for ref in refs:
            if ref not in seen:
                seen.add(ref)
                unique.append(ref)
        return LockingRule(tuple(unique))


@dataclass
class TypeSpec:
    """Ground truth for one data type."""

    name: str
    members: List[MemberSpec]
    #: maps ``via`` member names -> referenced data type (EO naming).
    ref_types: Dict[str, str] = field(default_factory=dict)
    #: member names excluded from analysis via the member black list.
    blacklist: Tuple[str, ...] = ()
    #: subclass -> {group: weight} exercise profile (None = no subclassing).
    subclass_profiles: Optional[Dict[str, Dict[str, float]]] = None

    def __post_init__(self) -> None:
        self._by_member = {m.member: m for m in self.members}
        if len(self._by_member) != len(self.members):
            raise ValueError(f"duplicate member spec in {self.name}")

    def member(self, name: str) -> MemberSpec:
        return self._by_member[name]

    def has_member(self, name: str) -> bool:
        return name in self._by_member

    def groups(self) -> Dict[str, List[MemberSpec]]:
        """Members by op group (ungrouped members form singleton groups)."""
        grouped: Dict[str, List[MemberSpec]] = {}
        for spec in self.members:
            key = spec.group or f"_{spec.member}"
            grouped.setdefault(key, []).append(spec)
        return grouped

    def owner_types(self) -> Dict[str, str]:
        """ref_types plus the self-type marker used by expected_refs."""
        mapping = dict(self.ref_types)
        mapping["<self>"] = self.name
        return mapping

    def expected_rule(self, member: str, access_type: str) -> LockingRule:
        return self.member(member).expected_rule(access_type, self.owner_types())
