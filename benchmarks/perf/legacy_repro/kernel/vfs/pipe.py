"""Hand-written pipe kernel functions.

Both pipe ends serialize on the pipe's single mutex; the wakeup
fast path peeks at reader/writer counters without it (the paper's 9
violating events over 3 members, Tab. 7).
"""

from __future__ import annotations

from typing import Generator

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.runtime import KernelRuntime, KObject

FILE = "fs/pipe.c"


def pipe_write(rt: KernelRuntime, ctx: ExecutionContext, pipe: KObject) -> Generator:
    """``pipe_write``: append a buffer to the ring under the mutex."""
    with rt.function(ctx, "pipe_write", FILE, 398):
        yield from rt.mutex_lock(ctx, pipe.lock("mutex"))
        rt.read(ctx, pipe, "readers", line=405)
        rt.read(ctx, pipe, "nrbufs", line=410)
        rt.read(ctx, pipe, "curbuf", line=411)
        rt.read(ctx, pipe, "buffers", line=412)
        rt.write(ctx, pipe, "bufs", line=430)
        rt.write(ctx, pipe, "nrbufs", line=431)
        rt.write(ctx, pipe, "tmp_page", line=432)
        rt.mutex_unlock(ctx, pipe.lock("mutex"))


def pipe_read(rt: KernelRuntime, ctx: ExecutionContext, pipe: KObject) -> Generator:
    """``pipe_read``: consume a buffer from the ring under the mutex."""
    with rt.function(ctx, "pipe_read", FILE, 244):
        yield from rt.mutex_lock(ctx, pipe.lock("mutex"))
        rt.read(ctx, pipe, "nrbufs", line=250)
        rt.read(ctx, pipe, "curbuf", line=251)
        rt.read(ctx, pipe, "bufs", line=252)
        rt.write(ctx, pipe, "curbuf", line=270)
        rt.write(ctx, pipe, "nrbufs", line=271)
        rt.read(ctx, pipe, "writers", line=280)
        rt.read(ctx, pipe, "waiting_writers", line=281)
        rt.write(ctx, pipe, "waiting_writers", line=282)
        rt.mutex_unlock(ctx, pipe.lock("mutex"))


def pipe_poll_fast(rt: KernelRuntime, ctx: ExecutionContext, pipe: KObject) -> Generator:
    """``pipe_poll`` fast path: peeks at the counters with no mutex —
    the deviating accesses of Tab. 7's pipe row."""
    with rt.function(ctx, "pipe_poll", FILE, 560):
        rt.read(ctx, pipe, "nrbufs", line=563)
        rt.read(ctx, pipe, "readers", line=564)
        rt.read(ctx, pipe, "writers", line=565)
        yield


def pipe_release(rt: KernelRuntime, ctx: ExecutionContext, pipe: KObject) -> Generator:
    """``pipe_release``: drop one end under the mutex."""
    with rt.function(ctx, "pipe_release", FILE, 600):
        yield from rt.mutex_lock(ctx, pipe.lock("mutex"))
        rt.read(ctx, pipe, "readers", line=603)
        rt.write(ctx, pipe, "readers", line=604)
        rt.read(ctx, pipe, "writers", line=605)
        rt.write(ctx, pipe, "writers", line=606)
        rt.write(ctx, pipe, "r_counter", line=607)
        rt.write(ctx, pipe, "w_counter", line=608)
        rt.mutex_unlock(ctx, pipe.lock("mutex"))
