"""Hand-written buffer_head kernel functions.

Buffer heads are the paper's violation fountain (Tab. 7: 45 325
violating events over 4 members in 635 contexts).  Completion handlers
run in **softirq context**, so ``b_state`` manipulation must take the
uptodate lock with interrupts disabled — and a large family of hot
paths (``touch_buffer``-style) skips it for speed.

The functions here are used both from task context (via the workloads)
and as the softirq handler the scheduler injects.
"""

from __future__ import annotations

from typing import Generator

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.runtime import KernelRuntime, KObject

FILE = "fs/buffer.c"


def end_buffer_async_write(
    rt: KernelRuntime, ctx: ExecutionContext, bh: KObject
) -> Generator:
    """IO-completion handler (softirq): update buffer state under the
    irq-safe uptodate lock."""
    with rt.function(ctx, "end_buffer_async_write", FILE, 385):
        yield from rt.spin_lock_irq(ctx, bh.lock("b_uptodate_lock"))
        rt.read(ctx, bh, "b_state", line=391)
        rt.write(ctx, bh, "b_state", line=392)
        rt.write(ctx, bh, "b_end_io", line=394)
        rt.write(ctx, bh, "b_count", line=395)
        rt.spin_unlock_irq(ctx, bh.lock("b_uptodate_lock"))


def end_buffer_read_sync(
    rt: KernelRuntime, ctx: ExecutionContext, bh: KObject
) -> Generator:
    """Synchronous-read completion (softirq), also correctly locked."""
    with rt.function(ctx, "end_buffer_read_sync", FILE, 168):
        yield from rt.spin_lock_irq(ctx, bh.lock("b_uptodate_lock"))
        rt.write(ctx, bh, "b_state", line=171)
        rt.write(ctx, bh, "b_private", line=172)
        rt.spin_unlock_irq(ctx, bh.lock("b_uptodate_lock"))


def touch_buffer(
    rt: KernelRuntime, ctx: ExecutionContext, bh: KObject
) -> Generator:
    """Hot-path buffer touch: reads/writes ``b_state`` with **no**
    locks — one of the many deviating paths behind Tab. 7."""
    with rt.function(ctx, "touch_buffer", FILE, 59):
        rt.read(ctx, bh, "b_state", line=61)
        rt.write(ctx, bh, "b_state", line=62)
        yield


def mark_buffer_dirty(
    rt: KernelRuntime, ctx: ExecutionContext, bh: KObject, locked: bool = True
) -> Generator:
    """``mark_buffer_dirty``: sets the dirty bit.  The fast path tests
    the bit first and skips the lock when it races ("locked=False")."""
    if locked:
        with rt.function(ctx, "mark_buffer_dirty", FILE, 1095):
            yield from rt.spin_lock_irq(ctx, bh.lock("b_uptodate_lock"))
            rt.read(ctx, bh, "b_state", line=1101)
            rt.write(ctx, bh, "b_state", line=1102)
            rt.spin_unlock_irq(ctx, bh.lock("b_uptodate_lock"))
    else:
        with rt.function(ctx, "mark_buffer_dirty_fast", FILE, 1110):
            rt.read(ctx, bh, "b_state", line=1112)
            rt.write(ctx, bh, "b_state", line=1113)
            yield


def buffer_associate(
    rt: KernelRuntime, ctx: ExecutionContext, bh: KObject
) -> Generator:
    """``mark_buffer_dirty_inode``: link the buffer onto its inode's
    private list under the address_space's ``private_lock``."""
    inode = bh.refs.get("b_assoc_map")
    if inode is None or not inode.live:
        return
    with rt.function(ctx, "mark_buffer_dirty_inode", FILE, 678):
        yield from rt.spin_lock(ctx, inode.lock("i_data.private_lock"))
        rt.write(ctx, bh, "b_assoc_buffers", line=684)
        rt.write(ctx, bh, "b_assoc_map", line=685)
        rt.read(ctx, inode, "i_data.private_list", line=686)
        rt.write(ctx, inode, "i_data.private_list", line=687)
        rt.spin_unlock(ctx, inode.lock("i_data.private_lock"))
