"""Hand-written dentry kernel functions.

Covers the rename/rehash machinery (global ``rename_lock`` seqlock,
per-dentry ``d_lock``), the RCU-walk fast path that reads fields
without any d_lock (making the documented read rules ambivalent,
Tab. 4), and the ``fs/libfs.c`` directory walk that traverses
``d_subdirs`` under the parent inode's ``i_rwsem`` + RCU instead of
``d_lock`` — Tab. 8's third violation example.
"""

from __future__ import annotations

from typing import Generator, Optional

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.runtime import KernelRuntime, KObject

FILE = "fs/dcache.c"


def d_rehash(rt: KernelRuntime, ctx: ExecutionContext, dentry: KObject) -> Generator:
    """``__d_rehash``: move the dentry between hash chains."""
    with rt.function(ctx, "__d_rehash", FILE, 2380):
        rename_lock = rt.static_lock("rename_lock", "seqlock_t")
        yield from rt.write_seqlock(ctx, rename_lock)
        yield from rt.spin_lock(ctx, dentry.lock("d_lock"))
        rt.write(ctx, dentry, "d_hash", line=2384)
        rt.write(ctx, dentry, "d_bucket", line=2385)
        rt.spin_unlock(ctx, dentry.lock("d_lock"))
        rt.write_sequnlock(ctx, rename_lock)


def d_move(
    rt: KernelRuntime,
    ctx: ExecutionContext,
    dentry: KObject,
    new_parent: Optional[KObject] = None,
) -> Generator:
    """``__d_move``: rename — retarget parent and name under
    ``rename_lock`` + ``d_lock``."""
    with rt.function(ctx, "__d_move", FILE, 2680):
        rename_lock = rt.static_lock("rename_lock", "seqlock_t")
        yield from rt.write_seqlock(ctx, rename_lock)
        yield from rt.spin_lock(ctx, dentry.lock("d_lock"))
        rt.write(ctx, dentry, "d_parent", line=2700)
        rt.write(ctx, dentry, "d_name", line=2701)
        rt.write(ctx, dentry, "d_hash", line=2702)
        if new_parent is not None and new_parent.live:
            dentry.refs["d_parent"] = new_parent
        rt.spin_unlock(ctx, dentry.lock("d_lock"))
        rt.write_sequnlock(ctx, rename_lock)


def dget(rt: KernelRuntime, ctx: ExecutionContext, dentry: KObject) -> Generator:
    """``dget``: take a reference, reading flags under ``d_lock``."""
    with rt.function(ctx, "dget", FILE, 900):
        yield from rt.spin_lock(ctx, dentry.lock("d_lock"))
        rt.read(ctx, dentry, "d_flags", line=903)
        rt.read(ctx, dentry, "d_count", line=904)
        rt.write(ctx, dentry, "d_count", line=905)
        rt.spin_unlock(ctx, dentry.lock("d_lock"))


def rcu_walk_lookup(
    rt: KernelRuntime, ctx: ExecutionContext, dentry: KObject
) -> Generator:
    """RCU-walk path-lookup fast path: reads name/parent/inode fields
    under RCU only — no ``d_lock``.  These reads are legitimate (the
    seqcount protocol validates them), but they halve the support of
    the documented ``d_lock`` read rules."""
    with rt.function(ctx, "__d_lookup_rcu", FILE, 2290):
        rt.rcu_read_lock(ctx)
        rt.read(ctx, dentry, "d_name", line=2300)
        rt.read(ctx, dentry, "d_parent", line=2301)
        rt.read(ctx, dentry, "d_inode", line=2302)
        rt.read(ctx, dentry, "d_flags", line=2303)
        rt.rcu_read_unlock(ctx)
        yield


def simple_dir_walk(
    rt: KernelRuntime,
    ctx: ExecutionContext,
    dir_inode: KObject,
    dentry: KObject,
) -> Generator:
    """``fs/libfs.c:104``-style readdir: iterates the directory's
    children reading ``d_subdirs``/``d_child`` while holding the
    *inode's* ``i_rwsem`` and RCU — not the dentry's ``d_lock``.
    Flagged by the rule-violation finder (Tab. 8, third row)."""
    with rt.function(ctx, "dcache_readdir", "fs/libfs.c", 95):
        yield from rt.down_read(ctx, dir_inode.lock("i_rwsem"))
        rt.rcu_read_lock(ctx)
        rt.read(ctx, dentry, "d_subdirs", line=104)
        rt.read(ctx, dentry, "d_child", line=105)
        rt.rcu_read_unlock(ctx)
        rt.up_read(ctx, dir_inode.lock("i_rwsem"))


def d_lru_scan(
    rt: KernelRuntime, ctx: ExecutionContext, dentry: KObject
) -> Generator:
    """Read-only LRU membership check holding both the global LRU lock
    and ``d_lock`` — the path that keeps the documented full d_lru read
    rule partially supported."""
    with rt.function(ctx, "d_lru_scan", FILE, 1100):
        lru = rt.static_lock("dcache_lru_lock", "spinlock_t")
        yield from rt.spin_lock(ctx, lru)
        yield from rt.spin_lock(ctx, dentry.lock("d_lock"))
        rt.read(ctx, dentry, "d_lru", line=1104)
        rt.spin_unlock(ctx, dentry.lock("d_lock"))
        rt.spin_unlock(ctx, lru)


def d_lru_shrink(
    rt: KernelRuntime, ctx: ExecutionContext, dentry: KObject
) -> Generator:
    """Shrinker: LRU surgery under the global LRU lock + ``d_lock``."""
    with rt.function(ctx, "shrink_dentry_list", FILE, 1120):
        lru = rt.static_lock("dcache_lru_lock", "spinlock_t")
        yield from rt.spin_lock(ctx, lru)
        yield from rt.spin_lock(ctx, dentry.lock("d_lock"))
        rt.read(ctx, dentry, "d_lru", line=1125)
        rt.write(ctx, dentry, "d_lru", line=1126)
        rt.spin_unlock(ctx, dentry.lock("d_lock"))
        rt.spin_unlock(ctx, lru)
