"""Struct layouts of the 11 observed data types (Tab. 6).

Member names follow the real Linux structs; union compounds (e.g. the
``i_pipe``/``i_bdev``/``i_cdev`` union in ``struct inode``) appear
pre-unrolled as separate members, exactly as the paper transforms them
before tracing (Sec. 7.1).  Data-member counts match the paper's #M
column:

=================  ===  ==================================
type               #M   embedded locks
=================  ===  ==================================
backing_dev_info    43  wb.list_lock, wb.work_lock
block_device        21  bd_mutex, bd_fsfreeze_mutex
buffer_head         13  b_uptodate_lock
cdev                 6  (global cdev_lock only)
dentry              21  d_lock, d_seq
inode               65  i_lock, i_rwsem, i_size_seqcount,
                        i_data.tree_lock, i_data.i_mmap_rwsem,
                        i_data.private_lock
journal_head        15  b_state_lock
journal_t           58  j_state_lock, j_list_lock,
                        j_checkpoint_mutex, j_barrier,
                        j_history_lock
pipe_inode_info     16  mutex
super_block         56  s_umount, s_inode_list_lock,
                        s_inode_wblist_lock, s_vfs_rename_mutex
transaction_t       27  t_handle_lock
=================  ===  ==================================
"""

from __future__ import annotations

from typing import Dict, List

from benchmarks.perf.legacy_repro.kernel.structs import Member, StructDef, StructRegistry

S = Member.scalar
A = Member.atomic
L = Member.lock


def _scalars(*names: str) -> List[Member]:
    return [S(name) for name in names]


def build_address_space() -> StructDef:
    """``struct address_space`` — nested into inode as ``i_data``."""
    return StructDef(
        "address_space",
        [
            S("host"),
            S("page_tree"),
            L("tree_lock", "spinlock_t"),
            S("i_mmap"),
            L("i_mmap_rwsem", "rw_semaphore"),
            S("nrpages"),
            S("nrexceptional"),
            S("writeback_index"),
            S("a_ops"),
            S("flags"),
            S("gfp_mask"),
            L("private_lock", "spinlock_t"),
            S("private_data"),
            S("private_list"),
            S("assoc_mapping"),
            S("i_mmap_writable"),
            S("wb_err"),
            S("nr_thps"),
            S("mmap_base"),
        ],
    )


def build_inode() -> StructDef:
    """``struct inode`` — 65 data members, 6 embedded locks."""
    return StructDef(
        "inode",
        [
            S("i_mode"),
            S("i_opflags"),
            S("i_uid"),
            S("i_gid"),
            S("i_flags"),
            S("i_acl"),
            S("i_default_acl"),
            S("i_op"),
            S("i_sb"),
            S("i_mapping"),
            S("i_security"),
            S("i_ino"),
            S("i_nlink"),
            S("i_rdev"),
            S("i_size"),
            S("i_atime"),
            S("i_mtime"),
            S("i_ctime"),
            L("i_lock", "spinlock_t"),
            S("i_bytes"),
            S("i_blkbits"),
            S("i_blocks"),
            L("i_size_seqcount", "seqlock_t"),
            S("i_state"),
            L("i_rwsem", "rw_semaphore"),
            S("dirtied_when"),
            S("dirtied_time_when"),
            S("i_hash"),
            S("i_io_list"),
            S("i_wb"),
            S("i_wb_frn_winner"),
            S("i_wb_frn_avg_time"),
            S("i_wb_frn_history"),
            S("i_lru"),
            S("i_sb_list"),
            S("i_wb_list"),
            S("i_version"),
            A("i_count"),
            A("i_dio_count"),
            A("i_writecount"),
            A("i_readcount"),
            S("i_fop"),
            S("i_flctx"),
            # union { i_pipe; i_bdev; i_cdev; i_link } — unrolled:
            S("i_pipe"),
            S("i_bdev"),
            S("i_cdev"),
            S("i_link"),
            S("i_dir_seq"),
            S("i_generation"),
            S("i_fsnotify_mask"),
            S("i_fsnotify_marks"),
            S("i_private"),
            Member.struct("i_data", build_address_space()),
        ],
    )


def build_dentry() -> StructDef:
    """``struct dentry`` — 21 data members."""
    return StructDef(
        "dentry",
        [
            S("d_flags"),
            L("d_seq", "seqlock_t"),
            S("d_hash"),
            S("d_parent"),
            S("d_name"),
            S("d_inode"),
            S("d_iname"),
            A("d_count"),
            L("d_lock", "spinlock_t"),
            S("d_op"),
            S("d_sb"),
            S("d_time"),
            S("d_fsdata"),
            S("d_lru"),
            S("d_child"),
            S("d_subdirs"),
            S("d_alias"),
            S("d_rcu"),
            S("d_mounted"),
            S("d_cookie"),
            S("d_bucket"),
            S("d_genocide_count"),
            S("d_wait"),
        ],
    )


def build_super_block() -> StructDef:
    """``struct super_block`` — 56 data members."""
    return StructDef(
        "super_block",
        _scalars(
            "s_list",
            "s_dev",
            "s_blocksize",
            "s_blocksize_bits",
            "s_dirt",
            "s_maxbytes",
            "s_type",
            "s_op",
            "dq_op",
            "s_qcop",
            "s_export_op",
            "s_flags",
            "s_iflags",
            "s_magic",
            "s_root",
            "s_count",
        )
        + [A("s_active"), L("s_umount", "rw_semaphore")]
        + _scalars(
            "s_security",
            "s_xattr",
            "s_inodes",
        )
        + [L("s_inode_list_lock", "spinlock_t")]
        + _scalars("s_inodes_wb")
        + [L("s_inode_wblist_lock", "spinlock_t")]
        + _scalars(
            "s_mounts",
            "s_bdev",
            "s_bdi",
            "s_mtd",
            "s_instances",
            "s_quota_types",
            "s_dquot",
            "s_writers",
            "s_id",
            "s_uuid",
            "s_fs_info",
            "s_max_links",
            "s_mode",
            "s_time_gran",
        )
        + [L("s_vfs_rename_mutex", "mutex")]
        + _scalars(
            "s_subtype",
            "s_shrink",
        )
        + [A("s_remove_count")]
        + _scalars(
            "s_readonly_remount",
            "s_dio_done_wq",
            "s_pins",
            "s_user_ns",
            "s_inode_lru",
            "s_dentry_lru",
            "s_mount_opts",
            "s_d_op",
            "s_cleancache_poolid",
            "s_stack_depth",
            "s_fsnotify_mask",
            "s_fsnotify_marks",
            "s_time_min",
            "s_time_max",
            "s_wb_err",
            "s_lsi",
            "s_sync_count",
            "s_pflags",
        ),
    )


def build_block_device() -> StructDef:
    """``struct block_device`` — 21 data members."""
    return StructDef(
        "block_device",
        _scalars("bd_dev", "bd_openers", "bd_inode", "bd_super")
        + [L("bd_mutex", "mutex")]
        + _scalars(
            "bd_claiming",
            "bd_holder",
        )
        + [A("bd_holders")]
        + _scalars(
            "bd_write_holder",
            "bd_holder_disks",
            "bd_contains",
            "bd_block_size",
            "bd_partno",
            "bd_part",
            "bd_part_count",
            "bd_invalidated",
            "bd_disk",
            "bd_queue",
            "bd_bdi",
            "bd_list",
            "bd_private",
        )
        + [L("bd_fsfreeze_mutex", "mutex"), S("bd_fsfreeze_count")],
    )


def build_buffer_head() -> StructDef:
    """``struct buffer_head`` — 13 data members.

    ``b_uptodate_lock`` models the BH bit-spinlock; buffer heads are
    completed from softirq context, so their rules involve the
    synthetic softirq/hardirq locks.
    """
    return StructDef(
        "buffer_head",
        _scalars("b_state", "b_this_page", "b_page", "b_blocknr", "b_size", "b_data")
        + [L("b_uptodate_lock", "spinlock_t")]
        + _scalars(
            "b_bdev",
            "b_end_io",
            "b_private",
            "b_assoc_buffers",
            "b_assoc_map",
            "b_count",
            "b_maybe_boundary",
        ),
    )


def build_cdev() -> StructDef:
    """``struct cdev`` — 6 data members, protected by global cdev_lock."""
    return StructDef(
        "cdev",
        _scalars("kobj", "owner", "ops", "list", "dev", "count"),
    )


def build_bdi_writeback() -> StructDef:
    """``struct bdi_writeback`` — nested into backing_dev_info as ``wb``."""
    return StructDef(
        "bdi_writeback",
        [
            S("state"),
            S("last_old_flush"),
            L("list_lock", "spinlock_t"),
            S("b_dirty"),
            S("b_io"),
            S("b_more_io"),
            S("b_dirty_time"),
            S("bandwidth"),
            S("avg_write_bandwidth"),
            S("balanced_dirty_ratelimit"),
            S("completions"),
            S("dirty_exceeded"),
            S("start_all_reason"),
            A("refcnt"),
            L("work_lock", "spinlock_t"),
            S("work_list"),
            S("dwork"),
            S("last_comp"),
            S("memcg_css"),
            S("blkcg_css"),
            S("congested_data"),
        ],
    )


def build_backing_dev_info() -> StructDef:
    """``struct backing_dev_info`` — 43 data members."""
    return StructDef(
        "backing_dev_info",
        _scalars(
            "bdi_list",
            "ra_pages",
            "io_pages",
            "dev",
            "name",
            "owner",
            "min_ratio",
            "max_ratio",
            "bw_time_stamp",
            "written_stamp",
            "write_bandwidth",
            "avg_write_bandwidth",
            "dirty_ratelimit",
            "balanced_dirty_ratelimit",
            "completions",
            "dirty_exceeded",
            "min_prop_frac",
            "max_prop_frac",
        )
        + [A("usage_cnt")]
        + _scalars(
            "capabilities",
            "congested",
            "wb_waitq",
            "dev_name",
            "laptop_mode_wb_timer",
        )
        + [Member.struct("wb", build_bdi_writeback())],
    )


def build_pipe_inode_info() -> StructDef:
    """``struct pipe_inode_info`` — 16 data members."""
    return StructDef(
        "pipe_inode_info",
        [L("mutex", "mutex")]
        + _scalars(
            "nrbufs",
            "curbuf",
            "buffers",
            "readers",
            "writers",
        )
        + [A("files")]
        + _scalars(
            "waiting_writers",
            "r_counter",
            "w_counter",
            "fasync_readers",
            "fasync_writers",
            "bufs",
            "user",
            "tmp_page",
            "wait",
            "max_usage",
        ),
    )


def build_journal_head() -> StructDef:
    """``struct journal_head`` — 15 data members."""
    return StructDef(
        "journal_head",
        [S("b_bh"), L("b_state_lock", "spinlock_t")]
        + _scalars(
            "b_jcount",
            "b_jlist",
            "b_modified",
            "b_frozen_data",
            "b_committed_data",
            "b_transaction",
            "b_next_transaction",
            "b_cp_transaction",
            "b_tnext",
            "b_tprev",
            "b_cpnext",
            "b_cpprev",
            "b_triggers",
            "b_frozen_triggers",
        ),
    )


def build_journal_t() -> StructDef:
    """``journal_t`` (struct journal_s) — 58 data members."""
    return StructDef(
        "journal_t",
        _scalars("j_flags", "j_errno", "j_sb_buffer", "j_format_version")
        + [L("j_state_lock", "rwlock_t")]
        + _scalars(
            "j_barrier_count",
            "j_running_transaction",
            "j_committing_transaction",
            "j_checkpoint_transactions",
            "j_wait_transaction_locked",
            "j_wait_done_commit",
            "j_wait_commit",
            "j_wait_updates",
            "j_wait_reserved",
        )
        + [L("j_checkpoint_mutex", "mutex"), L("j_barrier", "mutex")]
        + _scalars(
            "j_head",
            "j_tail",
            "j_free",
            "j_first",
            "j_last",
            "j_dev",
            "j_blocksize",
            "j_blk_offset",
            "j_fs_dev",
            "j_maxlen",
        )
        + [A("j_reserved_credits"), L("j_list_lock", "spinlock_t")]
        + _scalars(
            "j_tail_sequence",
            "j_transaction_sequence",
            "j_commit_sequence",
            "j_commit_request",
            "j_uuid",
            "j_task",
            "j_max_transaction_buffers",
            "j_commit_interval",
            "j_commit_timer",
            "j_revoke",
            "j_revoke_table",
            "j_wbuf",
            "j_wbufsize",
            "j_last_sync_writer",
            "j_average_commit_time",
            "j_min_batch_time",
            "j_max_batch_time",
            "j_commit_callback",
            "j_failed_commit",
            "j_chksum_driver",
            "j_csum_seed",
            "j_devname",
            "j_superblock",
        )
        + [L("j_history_lock", "spinlock_t")]
        + _scalars(
            "j_history",
            "j_history_max",
            "j_history_cur",
            "j_private",
            "j_fc_off",
            "j_fc_wbuf",
            "j_fc_wbufsize",
            "j_fc_cleanup_callback",
            "j_fc_replay_callback",
            "j_stats",
        )
        + [A("j_overflow_count")],
    )


def build_transaction_t() -> StructDef:
    """``transaction_t`` (struct transaction_s) — 27 data members."""
    return StructDef(
        "transaction_t",
        _scalars(
            "t_journal",
            "t_tid",
            "t_state",
            "t_log_start",
            "t_nr_buffers",
            "t_reserved_list",
            "t_buffers",
            "t_forget",
            "t_checkpoint_list",
            "t_checkpoint_io_list",
            "t_shadow_list",
            "t_log_list",
        )
        + [L("t_handle_lock", "spinlock_t"), A("t_updates")]
        + _scalars(
            "t_outstanding_credits",
            "t_handle_count",
            "t_expires",
            "t_start_time",
            "t_start",
            "t_requested",
            "t_chp_stats",
            "t_tnext",
            "t_tprev",
            "t_need_data_flush",
            "t_synchronous_commit",
            "t_gc_count",
            "t_max_wait",
            "t_run_state",
        ),
    )


#: Builders for every observed type, keyed by type name.
BUILDERS = {
    "backing_dev_info": build_backing_dev_info,
    "block_device": build_block_device,
    "buffer_head": build_buffer_head,
    "cdev": build_cdev,
    "dentry": build_dentry,
    "inode": build_inode,
    "journal_head": build_journal_head,
    "journal_t": build_journal_t,
    "pipe_inode_info": build_pipe_inode_info,
    "super_block": build_super_block,
    "transaction_t": build_transaction_t,
}

#: Expected data-member counts (#M of Tab. 6) — validated by tests.
EXPECTED_MEMBER_COUNTS: Dict[str, int] = {
    "backing_dev_info": 43,
    "block_device": 21,
    "buffer_head": 13,
    "cdev": 6,
    "dentry": 21,
    "inode": 65,
    "journal_head": 15,
    "journal_t": 58,
    "pipe_inode_info": 16,
    "super_block": 56,
    "transaction_t": 27,
}


def build_struct_registry() -> StructRegistry:
    """Fresh registry with all 11 observed data types."""
    return StructRegistry([builder() for builder in BUILDERS.values()])
