"""Simulated VFS + JBD2 subsystem (the paper's system under test).

Provides the 11 observed data types of Tab. 6 with realistic layouts
(:mod:`benchmarks.perf.legacy_repro.kernel.vfs.layouts`), a ground-truth locking specification
(:mod:`benchmarks.perf.legacy_repro.kernel.vfs.groundtruth`), a spec-driven operation engine
(:mod:`benchmarks.perf.legacy_repro.kernel.vfs.ops`), hand-written kernel functions for the
paper's famous cases (:mod:`benchmarks.perf.legacy_repro.kernel.vfs.inode`,
:mod:`benchmarks.perf.legacy_repro.kernel.vfs.bufferhead`, :mod:`benchmarks.perf.legacy_repro.kernel.vfs.jbd2`,
:mod:`benchmarks.perf.legacy_repro.kernel.vfs.pipe`, :mod:`benchmarks.perf.legacy_repro.kernel.vfs.dentry`), and a
filesystem facade (:mod:`benchmarks.perf.legacy_repro.kernel.vfs.fs`) the workloads drive.
"""

from benchmarks.perf.legacy_repro.kernel.vfs.layouts import build_struct_registry
from benchmarks.perf.legacy_repro.kernel.vfs.spec import LockTok, MemberSpec, TypeSpec

__all__ = ["LockTok", "MemberSpec", "TypeSpec", "build_struct_registry"]
