"""Hand-written JBD2 kernel functions (journal commit machinery).

Models the code paths behind Tab. 4's best-documented structures and
the Tab. 8 example where ``ext4_writepages`` writes
``j_committing_transaction`` while holding only the *read* side of
``j_state_lock`` (plus the inode's ``i_rwsem``) — the derived rule
demands the write side, so every such access is flagged.
"""

from __future__ import annotations

from typing import Generator, Optional

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.runtime import KernelRuntime, KObject

FILE = "fs/jbd2/commit.c"


def jbd2_journal_start(
    rt: KernelRuntime,
    ctx: ExecutionContext,
    journal: KObject,
    txn: KObject,
) -> Generator:
    """``start_this_handle``: join the running transaction."""
    with rt.function(ctx, "start_this_handle", "fs/jbd2/transaction.c", 290):
        yield from rt.read_lock(ctx, journal.lock("j_state_lock"))
        rt.read(ctx, journal, "j_running_transaction", line=300)
        rt.read(ctx, journal, "j_flags", line=301)
        rt.read_unlock(ctx, journal.lock("j_state_lock"))
        yield from rt.spin_lock(ctx, txn.lock("t_handle_lock"))
        rt.read(ctx, txn, "t_outstanding_credits", line=320)
        rt.write(ctx, txn, "t_outstanding_credits", line=321)
        rt.read(ctx, txn, "t_handle_count", line=322)
        rt.write(ctx, txn, "t_handle_count", line=323)
        rt.spin_unlock(ctx, txn.lock("t_handle_lock"))


def jbd2_journal_commit_transaction(
    rt: KernelRuntime,
    ctx: ExecutionContext,
    journal: KObject,
    txn: KObject,
) -> Generator:
    """``jbd2_journal_commit_transaction``: phase 0-2 of a commit.

    State transitions happen under the write side of ``j_state_lock``;
    buffer-list surgery under ``j_list_lock``.
    """
    with rt.function(ctx, "jbd2_journal_commit_transaction", FILE, 380):
        yield from rt.write_lock(ctx, journal.lock("j_state_lock"))
        rt.read(ctx, journal, "j_running_transaction", line=401)
        rt.write(ctx, journal, "j_running_transaction", line=402)
        rt.write(ctx, journal, "j_committing_transaction", line=403)
        rt.read(ctx, journal, "j_commit_sequence", line=404)
        rt.write(ctx, journal, "j_commit_sequence", line=405)
        rt.write(ctx, txn, "t_state", line=410)
        rt.write_unlock(ctx, journal.lock("j_state_lock"))
        rt.read(ctx, txn, "t_tid", line=413)

        yield from rt.spin_lock(ctx, journal.lock("j_list_lock"))
        rt.read(ctx, txn, "t_buffers", line=430)
        rt.write(ctx, txn, "t_buffers", line=431)
        rt.write(ctx, txn, "t_nr_buffers", line=432)
        rt.write(ctx, journal, "j_checkpoint_transactions", line=440)
        rt.spin_unlock(ctx, journal.lock("j_list_lock"))

        yield from rt.write_lock(ctx, journal.lock("j_state_lock"))
        rt.write(ctx, journal, "j_committing_transaction", line=460)
        rt.write(ctx, journal, "j_average_commit_time", line=461)
        rt.write_unlock(ctx, journal.lock("j_state_lock"))


def ext4_writepages_peek(
    rt: KernelRuntime,
    ctx: ExecutionContext,
    inode: KObject,
    journal: KObject,
) -> Generator:
    """``ext4_writepages`` (fs/ext4/inode.c:4685): the Tab. 8 example.

    Holds the inode's ``i_rwsem`` and only the **read** side of
    ``j_state_lock``, yet *writes* ``j_committing_transaction`` — a
    violation of the derived write rule.
    """
    with rt.function(ctx, "ext4_writepages", "fs/ext4/inode.c", 4670):
        yield from rt.down_read(ctx, inode.lock("i_rwsem"))
        yield from rt.read_lock(ctx, journal.lock("j_state_lock"))
        rt.read(ctx, journal, "j_running_transaction", line=4683)
        rt.write(ctx, journal, "j_committing_transaction", line=4685)
        rt.read_unlock(ctx, journal.lock("j_state_lock"))
        rt.up_read(ctx, inode.lock("i_rwsem"))


def jbd2_journal_add_journal_head(
    rt: KernelRuntime,
    ctx: ExecutionContext,
    jh: KObject,
    journal: KObject,
) -> Generator:
    """Attach buffer journalling state: bit-lock then list lock."""
    with rt.function(ctx, "jbd2_journal_add_journal_head", "fs/jbd2/journal.c", 2500):
        yield from rt.spin_lock(ctx, jh.lock("b_state_lock"))
        rt.read(ctx, jh, "b_jcount", line=2510)
        rt.write(ctx, jh, "b_jcount", line=2511)
        yield from rt.spin_lock(ctx, journal.lock("j_list_lock"))
        rt.write(ctx, jh, "b_transaction", line=2520)
        rt.write(ctx, jh, "b_jlist", line=2521)
        rt.spin_unlock(ctx, journal.lock("j_list_lock"))
        rt.spin_unlock(ctx, jh.lock("b_state_lock"))


def jbd2_checkpoint(
    rt: KernelRuntime,
    ctx: ExecutionContext,
    journal: KObject,
    txn: Optional[KObject] = None,
) -> Generator:
    """``jbd2_log_do_checkpoint``: serialize on the checkpoint mutex,
    then prune checkpoint lists under ``j_list_lock``."""
    with rt.function(ctx, "jbd2_log_do_checkpoint", "fs/jbd2/checkpoint.c", 350):
        yield from rt.mutex_lock(ctx, journal.lock("j_checkpoint_mutex"))
        rt.read(ctx, journal, "j_revoke", line=355)
        rt.write(ctx, journal, "j_revoke_table", line=356)
        yield from rt.spin_lock(ctx, journal.lock("j_list_lock"))
        rt.read(ctx, journal, "j_checkpoint_transactions", line=360)
        rt.write(ctx, journal, "j_checkpoint_transactions", line=361)
        if txn is not None and txn.live:
            rt.read(ctx, txn, "t_checkpoint_list", line=365)
            rt.write(ctx, txn, "t_checkpoint_list", line=366)
        rt.spin_unlock(ctx, journal.lock("j_list_lock"))
        rt.mutex_unlock(ctx, journal.lock("j_checkpoint_mutex"))
