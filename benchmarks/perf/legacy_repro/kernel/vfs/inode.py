"""Hand-written inode kernel functions.

These model the concrete code paths the paper discusses:

* :func:`insert_inode_hash` / :func:`remove_inode_hash` — the
  ``i_hash`` mystery (Sec. 7.4): removal writes the hash pointers of
  the list *neighbours* while holding only the global
  ``inode_hash_lock`` and the *removed* inode's ``i_lock`` — so the
  neighbours see ``inode_hash_lock -> EO(i_lock in inode)``,
  contradicting both documentation and the insert path.
* :func:`find_inode` — traverses the hash chain (reads ``i_hash``)
  under the hash lock (its stale documentation says "inode lock held").
* :func:`inode_set_flags` — the confirmed kernel bug (Fig. 3): one
  code path updates ``i_flags`` with a cmpxchg loop instead of taking
  the required lock.
* :func:`inode_lru_add` / :func:`inode_lru_isolate` — two legitimate
  LRU paths, only one of which also holds ``i_lock`` (this is what
  makes the documented ``i_lru`` rule ambivalent at ~50 %, Tab. 5).
* :func:`fsstack_copy_inode_size` — reads ``i_size`` with no locks,
  quoting the paper's "we don't actually know what locking is used at
  the lower level" comment.
* :func:`inode_add_bytes` — the canonical correct ``i_lock`` user.

All functions are generators (kthread bodies).
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.runtime import KernelRuntime, KObject

FILE = "fs/inode.c"


def insert_inode_hash(
    rt: KernelRuntime, ctx: ExecutionContext, inode: KObject
) -> Generator:
    """Add *inode* to the hash chain: hash lock, then own ``i_lock``."""
    with rt.function(ctx, "insert_inode_hash", FILE, 481):
        hash_lock = rt.static_lock("inode_hash_lock", "spinlock_t")
        yield from rt.spin_lock(ctx, hash_lock)
        yield from rt.spin_lock(ctx, inode.lock("i_lock"))
        rt.write(ctx, inode, "i_hash", line=485)
        rt.read(ctx, inode, "i_state", line=486)
        rt.write(ctx, inode, "i_state", line=487)
        rt.spin_unlock(ctx, inode.lock("i_lock"))
        rt.spin_unlock(ctx, hash_lock)


def remove_inode_hash(
    rt: KernelRuntime,
    ctx: ExecutionContext,
    inode: KObject,
    neighbors: Sequence[KObject] = (),
) -> Generator:
    """``__remove_inode_hash``: unlink *inode* from its hash chain.

    The doubly-linked-list unlink writes ``i_hash`` of up to two
    *neighbour* inodes whose ``i_lock`` is **not** held — the numerous
    EO-flavoured writes that let LockDoc conclude ``i_lock`` is not
    needed for this operation (Sec. 7.4, Tab. 8 first row).
    """
    with rt.function(ctx, "__remove_inode_hash", FILE, 500):
        hash_lock = rt.static_lock("inode_hash_lock", "spinlock_t")
        yield from rt.spin_lock(ctx, hash_lock)
        yield from rt.spin_lock(ctx, inode.lock("i_lock"))
        rt.write(ctx, inode, "i_hash", line=506)
        for neighbor in neighbors:
            if neighbor.live and neighbor is not inode:
                rt.write(ctx, neighbor, "i_hash", line=507)
        rt.write(ctx, inode, "i_state", line=509)
        rt.spin_unlock(ctx, inode.lock("i_lock"))
        rt.spin_unlock(ctx, hash_lock)


def find_inode(
    rt: KernelRuntime,
    ctx: ExecutionContext,
    chain: Sequence[KObject],
    with_i_lock: bool = True,
) -> Generator:
    """``find_inode``: walk a hash chain reading ``i_hash`` pointers.

    Called from ``iget5_locked`` with the global ``inode_hash_lock``
    (not the per-inode lock the stale comment asks for); the match's
    ``i_state`` is then checked under its ``i_lock``.
    """
    with rt.function(ctx, "find_inode", FILE, 803):
        hash_lock = rt.static_lock("inode_hash_lock", "spinlock_t")
        yield from rt.spin_lock(ctx, hash_lock)
        match: Optional[KObject] = None
        for inode in chain:
            if not inode.live:
                continue
            rt.read(ctx, inode, "i_hash", line=810)
            match = inode
        if match is not None:
            if with_i_lock:
                yield from rt.spin_lock(ctx, match.lock("i_lock"))
                rt.read(ctx, match, "i_state", line=815)
                rt.spin_unlock(ctx, match.lock("i_lock"))
            else:
                # iget5_locked-style callers peek at i_state with only
                # the hash lock held (the stale documentation says
                # "inode lock held").
                rt.read(ctx, match, "i_state", line=818)
        rt.spin_unlock(ctx, hash_lock)


def inode_set_flags(
    rt: KernelRuntime,
    ctx: ExecutionContext,
    inode: KObject,
    locked: bool = True,
) -> Generator:
    """``inode_set_flags``: atomically set inode flags (Fig. 3).

    With ``locked=False`` this is the code path that "doesn't follow
    this rule today" — a cmpxchg read-modify-write of ``i_flags``
    without holding ``i_rwsem``.  This deviation is the violation a
    kernel developer confirmed as a real bug (Sec. 7.5).
    """
    if locked:
        with rt.function(ctx, "inode_set_flags", FILE, 2134):
            yield from rt.down_write(ctx, inode.lock("i_rwsem"))
            rt.read(ctx, inode, "i_flags", line=2140)
            rt.write(ctx, inode, "i_flags", line=2141)
            rt.up_write(ctx, inode.lock("i_rwsem"))
    else:
        with rt.function(ctx, "inode_set_flags_cmpxchg", FILE, 2150):
            rt.read(ctx, inode, "i_flags", line=2152)
            rt.write(ctx, inode, "i_flags", line=2153)
            yield  # a preemption point; cmpxchg loops are lock-free


def inode_add_bytes(
    rt: KernelRuntime,
    ctx: ExecutionContext,
    inode: KObject,
    nbytes: int = 512,
    locked: bool = True,
) -> Generator:
    """``inode_add_bytes``: the canonical correct ``i_lock`` user.

    With ``locked=False`` this is a lower-level filesystem updating
    ``i_blocks`` without the lock — the deviation behind Tab. 5's
    93.56 % support for the documented ``i_blocks`` write rule.
    """
    if locked:
        with rt.function(ctx, "inode_add_bytes", "fs/stat.c", 718):
            yield from rt.spin_lock(ctx, inode.lock("i_lock"))
            rt.read(ctx, inode, "i_blocks", line=721)
            rt.write(ctx, inode, "i_blocks", line=722)
            rt.read(ctx, inode, "i_bytes", line=723)
            rt.write(ctx, inode, "i_bytes", line=724)
            rt.spin_unlock(ctx, inode.lock("i_lock"))
    else:
        with rt.function(ctx, "fs_apply_blocks", "fs/ext4/balloc.c", 630):
            rt.read(ctx, inode, "i_blocks", line=632)
            rt.write(ctx, inode, "i_blocks", line=633)
            yield


def fsstack_copy_inode_size(
    rt: KernelRuntime, ctx: ExecutionContext, dst: KObject, src: KObject
) -> Generator:
    """``fsstack_copy_inode_size``: "we don't actually know what locking
    is used at the lower level" — reads ``i_size``/``i_blocks`` of the
    source with no locks, writes the destination under its locks."""
    with rt.function(ctx, "fsstack_copy_inode_size", "fs/stack.c", 12):
        rt.read(ctx, src, "i_size", line=17)
        rt.read(ctx, src, "i_blocks", line=18)
        yield from rt.down_write(ctx, dst.lock("i_rwsem"))
        yield from rt.write_seqlock(ctx, dst.lock("i_size_seqcount"))
        rt.write(ctx, dst, "i_size", line=25)
        rt.write_sequnlock(ctx, dst.lock("i_size_seqcount"))
        rt.up_write(ctx, dst.lock("i_rwsem"))


def i_size_write(
    rt: KernelRuntime, ctx: ExecutionContext, inode: KObject
) -> Generator:
    """``i_size_write`` under ``i_rwsem`` + the size seqcount."""
    with rt.function(ctx, "i_size_write", "include/linux/fs.h", 872):
        yield from rt.down_write(ctx, inode.lock("i_rwsem"))
        yield from rt.write_seqlock(ctx, inode.lock("i_size_seqcount"))
        rt.write(ctx, inode, "i_size", line=876)
        rt.write_sequnlock(ctx, inode.lock("i_size_seqcount"))
        rt.up_write(ctx, inode.lock("i_rwsem"))


def i_size_read(
    rt: KernelRuntime, ctx: ExecutionContext, inode: KObject
) -> Generator:
    """``i_size_read``: seqcount read loop."""
    with rt.function(ctx, "i_size_read", "include/linux/fs.h", 855):
        yield from rt.read_seqbegin(ctx, inode.lock("i_size_seqcount"))
        rt.read(ctx, inode, "i_size", line=858)
        rt.read_seqend(ctx, inode.lock("i_size_seqcount"))


def inode_lru_add(
    rt: KernelRuntime, ctx: ExecutionContext, inode: KObject, with_i_lock: bool
) -> Generator:
    """Put *inode* on the LRU.  One caller holds ``i_lock``, the other
    does not — together they make the documented ``ES(i_lock)`` rule
    for ``i_lru`` ambivalent at ~50 % (Tab. 5)."""
    lru_lock = rt.static_lock("inode_lru_lock", "spinlock_t")
    if with_i_lock:
        with rt.function(ctx, "inode_lru_list_add", FILE, 430):
            yield from rt.spin_lock(ctx, inode.lock("i_lock"))
            yield from rt.spin_lock(ctx, lru_lock)
            rt.read(ctx, inode, "i_lru", line=434)
            rt.write(ctx, inode, "i_lru", line=435)
            rt.spin_unlock(ctx, lru_lock)
            rt.spin_unlock(ctx, inode.lock("i_lock"))
    else:
        with rt.function(ctx, "inode_lru_list_add_obj", FILE, 445):
            yield from rt.spin_lock(ctx, lru_lock)
            rt.read(ctx, inode, "i_lru", line=448)
            rt.write(ctx, inode, "i_lru", line=449)
            rt.spin_unlock(ctx, lru_lock)


def inode_lru_check(
    rt: KernelRuntime, ctx: ExecutionContext, inode: KObject, with_i_lock: bool
) -> Generator:
    """Read-only LRU membership check; like the add path, only one of
    two callers holds ``i_lock`` (Tab. 5's ~50 % read support)."""
    lru_lock = rt.static_lock("inode_lru_lock", "spinlock_t")
    if with_i_lock:
        with rt.function(ctx, "inode_lru_contains", FILE, 460):
            yield from rt.spin_lock(ctx, inode.lock("i_lock"))
            yield from rt.spin_lock(ctx, lru_lock)
            rt.read(ctx, inode, "i_lru", line=463)
            rt.spin_unlock(ctx, lru_lock)
            rt.spin_unlock(ctx, inode.lock("i_lock"))
    else:
        with rt.function(ctx, "inode_lru_peek", FILE, 470):
            yield from rt.spin_lock(ctx, lru_lock)
            rt.read(ctx, inode, "i_lru", line=473)
            rt.spin_unlock(ctx, lru_lock)


def inode_lru_isolate(
    rt: KernelRuntime, ctx: ExecutionContext, inode: KObject
) -> Generator:
    """Shrinker path: isolate an inode from the LRU (no ``i_lock``)."""
    lru_lock = rt.static_lock("inode_lru_lock", "spinlock_t")
    with rt.function(ctx, "inode_lru_isolate", FILE, 730):
        yield from rt.spin_lock(ctx, lru_lock)
        rt.read(ctx, inode, "i_lru", line=733)
        rt.write(ctx, inode, "i_lru", line=737)
        rt.spin_unlock(ctx, lru_lock)


def mark_inode_dirty(
    rt: KernelRuntime, ctx: ExecutionContext, inode: KObject
) -> Generator:
    """``__mark_inode_dirty``: flag the inode and queue it on the bdi
    writeback list (``i_state`` under ``i_lock``; list members under
    the bdi's ``wb.list_lock``)."""
    with rt.function(ctx, "__mark_inode_dirty", "fs/fs-writeback.c", 2112):
        yield from rt.spin_lock(ctx, inode.lock("i_lock"))
        rt.read(ctx, inode, "i_state", line=2126)
        rt.write(ctx, inode, "i_state", line=2127)
        rt.spin_unlock(ctx, inode.lock("i_lock"))
        bdi = inode.refs.get("i_bdi")
        if bdi is not None and bdi.live:
            yield from rt.spin_lock(ctx, bdi.lock("wb.list_lock"))
            rt.write(ctx, inode, "dirtied_when", line=2153)
            rt.write(ctx, inode, "i_io_list", line=2154)
            rt.spin_unlock(ctx, bdi.lock("wb.list_lock"))
