"""Exceptions raised by the simulated kernel.

All simulator-level failures derive from :class:`KernelError`, so test
code and workloads can catch the whole family at once.  These exceptions
signal *simulator misuse or simulated crashes*; the analysis pipeline
never raises them.
"""


class KernelError(Exception):
    """Base class for all simulated-kernel failures."""


class LockUsageError(KernelError):
    """A lock primitive was used incorrectly.

    Examples: releasing a lock that is not held, acquiring a
    non-recursive spinlock twice from the same context, or releasing a
    reader-held rwlock in write mode.
    """


class DeadlockError(KernelError):
    """The scheduler detected that every runnable thread is blocked."""


class MemoryError_(KernelError):
    """Base class for allocator failures (the trailing underscore avoids
    shadowing the builtin :class:`MemoryError`)."""


class DoubleFreeError(MemoryError_):
    """An allocation was freed twice."""


class BadAccessError(MemoryError_):
    """A memory access touched an address outside any live allocation
    of an observed data structure."""


class SchedulerError(KernelError):
    """Invalid scheduler usage, e.g. spawning after shutdown."""
