"""Deterministic cooperative scheduler.

The paper traces a kernel running on the single-core Bochs emulator
(Sec. 6).  This scheduler reproduces those concurrency semantics for
the simulated kernel:

* **kthreads** are Python generators; every ``yield`` is a potential
  preemption point (lock acquisitions yield once before acquiring),
* a thread is **non-preemptable while atomic** — holding a spinlock,
  rwlock, seqlock write side, or having irqs/bh/preemption disabled —
  matching a single CPU with ``CONFIG_PREEMPT`` unset,
* blocked threads (waiting on a contended sleeping lock) are
  descheduled until the lock becomes available,
* **interrupt handlers** (hardirq/softirq) are injected between
  preemption points with a seeded probability, run to completion, and
  are gated on the interrupted context's irq/bh-disable state,
* scheduling decisions come from a seeded :class:`random.Random`, so a
  given workload + seed always produces the identical trace.

If every thread is blocked and no wait condition is satisfiable, the
scheduler raises :class:`~benchmarks.perf.legacy_repro.kernel.errors.DeadlockError` — the
simulated analogue of a frozen kernel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from benchmarks.perf.legacy_repro.kernel.context import (
    ContextKind,
    ExecutionContext,
    make_hardirq,
    make_softirq,
    make_task,
)
from benchmarks.perf.legacy_repro.kernel.errors import DeadlockError, KernelError, SchedulerError
from benchmarks.perf.legacy_repro.kernel.locks import LockClass
from benchmarks.perf.legacy_repro.kernel.runtime import KernelRuntime, Wait

KThreadBody = Callable[[ExecutionContext], Generator]
IrqBody = Callable[[ExecutionContext], Generator]

#: Lock classes that make a context atomic (non-preemptable).
_ATOMIC_CLASSES = (
    LockClass.SPINLOCK,
    LockClass.RWLOCK,
    LockClass.SEQLOCK,
    LockClass.SOFTIRQ,
    LockClass.HARDIRQ,
    LockClass.PREEMPT,
)


def _is_atomic(ctx: ExecutionContext) -> bool:
    if ctx.irq_disable_depth or ctx.bh_disable_depth or ctx.preempt_disable_depth:
        return True
    return any(lock.lock_class in _ATOMIC_CLASSES for lock in ctx.held_locks())


@dataclass
class KThread:
    """A schedulable kernel thread."""

    ctx: ExecutionContext
    gen: Generator
    finished: bool = False
    waiting_on: Optional[Wait] = None

    @property
    def blocked(self) -> bool:
        return self.waiting_on is not None

    def runnable(self) -> bool:
        if self.finished:
            return False
        if self.waiting_on is None:
            return True
        return self.waiting_on.ready(self.ctx)


@dataclass
class IrqSource:
    """A registered interrupt source."""

    name: str
    kind: ContextKind
    body: IrqBody
    rate: float  # injection probability per scheduling decision
    fired: int = 0


class Scheduler:
    """Runs kthreads and injects interrupts deterministically."""

    def __init__(self, runtime: KernelRuntime, seed: int = 0, max_burst: int = 6) -> None:
        self.runtime = runtime
        self.rng = random.Random(seed)
        self.max_burst = max_burst
        self.threads: List[KThread] = []
        self.irq_sources: List[IrqSource] = []
        self.steps = 0
        self._running = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def spawn(self, name: str, body: KThreadBody) -> KThread:
        """Create a task kthread; *body(ctx)* must return a generator."""
        ctx = make_task(name)
        thread = KThread(ctx=ctx, gen=body(ctx))
        self.threads.append(thread)
        return thread

    def add_irq_source(
        self,
        name: str,
        body: IrqBody,
        rate: float = 0.01,
        softirq: bool = False,
    ) -> IrqSource:
        """Register an interrupt source fired with probability *rate* at
        each scheduling decision (subject to irq/bh-disable gating)."""
        kind = ContextKind.SOFTIRQ if softirq else ContextKind.HARDIRQ
        source = IrqSource(name, kind, body, rate)
        self.irq_sources.append(source)
        return source

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, max_steps: int = 10_000_000) -> int:
        """Run until all threads finish; returns the number of steps."""
        if self._running:
            raise SchedulerError("scheduler is not reentrant")
        self._running = True
        try:
            current: Optional[KThread] = None
            while True:
                alive = [t for t in self.threads if not t.finished]
                if not alive:
                    break
                if self.steps >= max_steps:
                    raise SchedulerError(f"exceeded {max_steps} scheduler steps")

                if current is None or current.finished or current.blocked:
                    current = self._pick(alive)
                self._maybe_inject_irq(current)
                burst = self.rng.randint(1, self.max_burst)
                for _ in range(burst):
                    if not self._step(current):
                        current = None
                        break
                    # Atomic sections are non-preemptable: extend the burst.
                    while not current.finished and _is_atomic(current.ctx):
                        if not self._step(current):
                            current = None
                            break
                    if current is None:
                        break
                else:
                    # Voluntarily preempt after the burst.
                    current = None
            return self.steps
        finally:
            self._running = False

    def _pick(self, alive: List[KThread]) -> KThread:
        ready = [t for t in alive if t.runnable()]
        if not ready:
            waits = ", ".join(
                f"{t.ctx.name}->{t.waiting_on.lock.name}" for t in alive if t.waiting_on
            )
            raise DeadlockError(f"all threads blocked ({waits})")
        return self.rng.choice(ready)

    def _step(self, thread: KThread) -> bool:
        """Advance *thread* by one yield; False if it finished or blocked."""
        self.steps += 1
        try:
            token = next(thread.gen)
        except StopIteration:
            thread.finished = True
            self._check_clean_exit(thread)
            return False
        if isinstance(token, Wait):
            if _is_atomic(thread.ctx):
                raise KernelError(
                    f"{thread.ctx!r} blocked on {token.lock.name} while atomic"
                )
            thread.waiting_on = token
            return False
        thread.waiting_on = None
        return True

    @staticmethod
    def _check_clean_exit(thread: KThread) -> None:
        if thread.ctx.held:
            held = ", ".join(lock.name for lock in thread.ctx.held_locks())
            raise KernelError(f"{thread.ctx!r} exited holding locks: {held}")

    # ------------------------------------------------------------------
    # Interrupt injection
    # ------------------------------------------------------------------

    def _maybe_inject_irq(self, current: Optional[KThread]) -> None:
        if not self.irq_sources:
            return
        interrupted = current.ctx if current is not None else None
        for source in self.irq_sources:
            if self.rng.random() >= source.rate:
                continue
            if not self._irq_allowed(source, interrupted):
                continue
            self._fire(source, interrupted)

    @staticmethod
    def _irq_allowed(source: IrqSource, interrupted: Optional[ExecutionContext]) -> bool:
        if interrupted is None:
            return True
        if interrupted.irq_disable_depth:
            return False
        if source.kind == ContextKind.SOFTIRQ and interrupted.bh_disable_depth:
            return False
        # A handler interrupting an atomic section could self-deadlock on
        # the very lock the section holds; real kernels prevent this with
        # the _irq/_bh lock variants.  We conservatively do not interrupt
        # atomic sections at all (the section is short anyway).
        return not _is_atomic(interrupted)

    def _fire(self, source: IrqSource, interrupted: Optional[ExecutionContext]) -> None:
        if source.kind == ContextKind.SOFTIRQ:
            ctx = make_softirq(source.name, interrupted)
        else:
            ctx = make_hardirq(source.name, interrupted)
        source.fired += 1
        gen = source.body(ctx)
        for token in gen:
            if isinstance(token, Wait):
                raise KernelError(
                    f"irq handler {source.name} blocked on {token.lock.name}; "
                    "handlers must use trylock/_irq variants"
                )
        if ctx.held:
            held = ", ".join(lock.name for lock in ctx.held_locks())
            raise KernelError(f"irq handler {source.name} leaked locks: {held}")
