"""Struct-layout model.

LockDoc's database knows the *type layout* of each observed data
structure: the byte offset and size of every member (Fig. 6).  The
paper additionally "unrolls" unions — differently named members sharing
an offset get distinct offsets so memory addresses identify members
unambiguously (Sec. 7.1) — and filters members of kind ``atomic_t`` and
the lock variables themselves (Sec. 5.3, item 3).

This module provides a declarative way to define such layouts:

>>> clock = StructDef("clock", [
...     Member.scalar("seconds", 8),
...     Member.scalar("minutes", 8),
...     Member.lock("sec_lock", "spinlock_t"),
... ])
>>> clock.offset_of("minutes")
8
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from benchmarks.perf.legacy_repro.kernel.locks import LockClass

#: Sizes (bytes) of the lock primitives when embedded in a struct.
LOCK_SIZES = {
    LockClass.SPINLOCK: 4,
    LockClass.RWLOCK: 8,
    LockClass.MUTEX: 32,
    LockClass.SEMAPHORE: 24,
    LockClass.RW_SEMAPHORE: 40,
    LockClass.SEQLOCK: 8,
}


class MemberKind(enum.Enum):
    """What kind of member a struct field is."""

    SCALAR = "scalar"  # plain data: int, long, pointer, small array
    ATOMIC = "atomic"  # atomic_t / atomic64_t — filtered by LockDoc
    LOCK = "lock"  # an embedded lock variable — filtered by LockDoc
    STRUCT = "struct"  # a nested (non-union) struct, embedded by value


@dataclass(frozen=True)
class Member:
    """One member of a struct layout.

    ``offset`` is filled in by :class:`StructDef`; user code creates
    members with the factory classmethods and lets the struct assign
    offsets sequentially (after union unrolling there is no sharing).
    """

    name: str
    size: int
    kind: MemberKind
    lock_class: Optional[LockClass] = None
    nested: Optional["StructDef"] = None

    @classmethod
    def scalar(cls, name: str, size: int = 8) -> "Member":
        return cls(name, size, MemberKind.SCALAR)

    @classmethod
    def atomic(cls, name: str, size: int = 4) -> "Member":
        return cls(name, size, MemberKind.ATOMIC)

    @classmethod
    def lock(cls, name: str, lock_class: "LockClass | str") -> "Member":
        if isinstance(lock_class, str):
            lock_class = LockClass(lock_class)
        return cls(name, LOCK_SIZES[lock_class], MemberKind.LOCK, lock_class=lock_class)

    @classmethod
    def struct(cls, name: str, nested: "StructDef") -> "Member":
        return cls(name, nested.size, MemberKind.STRUCT, nested=nested)


@dataclass(frozen=True)
class LaidOutMember:
    """A member with its resolved byte offset inside the outermost struct.

    Nested-struct members are flattened to dotted names
    (``"i_data.a_ops"``), mirroring how the paper reports them (Fig. 8).
    """

    name: str
    offset: int
    size: int
    kind: MemberKind
    lock_class: Optional[LockClass] = None

    @property
    def end(self) -> int:
        return self.offset + self.size


class StructDef:
    """A struct layout: ordered members with assigned offsets.

    Union compounds must be passed pre-unrolled (each alternative as its
    own member) — exactly the transformation the paper applies before
    tracing.  Nested struct members are flattened into dotted leaf
    members for address->member resolution.
    """

    def __init__(self, name: str, members: Sequence[Member]) -> None:
        self.name = name
        self.members: List[Member] = list(members)
        seen: Dict[str, Member] = {}
        for member in self.members:
            if member.name in seen:
                raise ValueError(f"duplicate member {member.name} in {name}")
            seen[member.name] = member
        self._flat: List[LaidOutMember] = []
        self._by_name: Dict[str, LaidOutMember] = {}
        offset = 0
        for member in self.members:
            offset = self._layout(member, member.name, offset)
        self.size = offset

    def _layout(self, member: Member, path: str, offset: int) -> int:
        if member.kind == MemberKind.STRUCT:
            assert member.nested is not None
            for sub in member.nested.members:
                offset = self._layout(sub, f"{path}.{sub.name}", offset)
            return offset
        laid_out = LaidOutMember(path, offset, member.size, member.kind, member.lock_class)
        self._flat.append(laid_out)
        self._by_name[path] = laid_out
        return offset + member.size

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def flat_members(self) -> Tuple[LaidOutMember, ...]:
        """All leaf members (nested structs flattened), in layout order."""
        return tuple(self._flat)

    def member(self, name: str) -> LaidOutMember:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"{self.name} has no member {name!r}") from None

    def has_member(self, name: str) -> bool:
        return name in self._by_name

    def offset_of(self, name: str) -> int:
        return self.member(name).offset

    def member_at(self, offset: int) -> LaidOutMember:
        """Resolve a byte offset to the leaf member covering it."""
        for member in self._flat:
            if member.offset <= offset < member.end:
                return member
        raise KeyError(f"{self.name} has no member at offset {offset}")

    def lock_members(self) -> List[LaidOutMember]:
        return [m for m in self._flat if m.kind == MemberKind.LOCK]

    def data_members(self) -> List[LaidOutMember]:
        """Members LockDoc derives rules for (excludes locks)."""
        return [m for m in self._flat if m.kind != MemberKind.LOCK]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<struct {self.name} size={self.size} members={len(self._flat)}>"


class StructRegistry:
    """Registry of all observed struct layouts, keyed by type name."""

    def __init__(self, structs: Iterable[StructDef] = ()) -> None:
        self._by_name: Dict[str, StructDef] = {}
        for struct in structs:
            self.register(struct)

    def register(self, struct: StructDef) -> StructDef:
        if struct.name in self._by_name:
            raise ValueError(f"struct {struct.name} already registered")
        self._by_name[struct.name] = struct
        return struct

    def get(self, name: str) -> StructDef:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown struct {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def all(self) -> List[StructDef]:
        return [self._by_name[n] for n in self.names()]
