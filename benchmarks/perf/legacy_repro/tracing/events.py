"""Trace event model.

The trace is a flat, time-ordered sequence of events mirroring what the
paper's Fail* experiment logs through the virtual I/O port (Sec. 6):

* ``AllocEvent`` / ``FreeEvent`` — lifetime of observed allocations,
* ``AccessEvent``                — one read or write to a raw address,
* ``LockEvent``                  — one acquire or release operation.

Every event carries a monotonically increasing timestamp ``ts`` and the
id of the execution context that caused it.  Access and lock events
also carry an interned call-stack id plus the immediate source location
(file, line) so the rule-violation finder can point at code (Sec. 5.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class EventKind(enum.Enum):
    """Discriminator for the trace event types."""
    ALLOC = "alloc"
    FREE = "free"
    READ = "read"
    WRITE = "write"
    ACQUIRE = "acquire"
    RELEASE = "release"


@dataclass(frozen=True)
class Event:
    """Common event header."""

    ts: int
    ctx_id: int


@dataclass(frozen=True)
class AllocEvent(Event):
    """Allocation event: a traced object came to life."""
    alloc_id: int
    address: int
    size: int
    data_type: str
    subclass: Optional[str]

    kind = EventKind.ALLOC


@dataclass(frozen=True)
class FreeEvent(Event):
    """Deallocation event: a traced object died."""
    alloc_id: int
    address: int

    kind = EventKind.FREE


@dataclass(frozen=True)
class AccessEvent(Event):
    """A single memory access to a raw byte address.

    The tracer does *not* resolve the address to an allocation or
    member — that is the importer's job, exactly as in the paper where
    the VM logs raw accesses and post-processing maps them to the
    type layout.
    """

    address: int
    size: int
    is_write: bool
    stack_id: int
    file: str
    line: int

    @property
    def kind(self) -> EventKind:
        return EventKind.WRITE if self.is_write else EventKind.READ


@dataclass(frozen=True)
class LockEvent(Event):
    """A lock acquire or release.

    ``mode`` is ``"r"`` for shared, ``"w"`` for exclusive acquisition —
    matching :class:`benchmarks.perf.legacy_repro.kernel.locks.LockMode` values.
    """

    lock_id: int
    lock_class: str
    lock_name: str
    address: Optional[int]
    is_acquire: bool
    mode: str
    stack_id: int
    file: str
    line: int

    @property
    def kind(self) -> EventKind:
        return EventKind.ACQUIRE if self.is_acquire else EventKind.RELEASE
