"""Monitoring/tracing phase (paper phase 1).

Replaces the Fail*/Bochs monitoring environment: the simulated kernel
reports allocations, frees, member accesses and lock operations to a
:class:`~benchmarks.perf.legacy_repro.tracing.tracer.Tracer`, which produces the flat, ordered
event trace consumed by the post-processing importer.
"""

from benchmarks.perf.legacy_repro.tracing.events import (
    AccessEvent,
    AllocEvent,
    Event,
    EventKind,
    FreeEvent,
    LockEvent,
)
from benchmarks.perf.legacy_repro.tracing.tracer import Tracer, TraceStats

__all__ = [
    "AccessEvent",
    "AllocEvent",
    "Event",
    "EventKind",
    "FreeEvent",
    "LockEvent",
    "Tracer",
    "TraceStats",
]
