"""The tracer: records the ordered event stream.

One :class:`Tracer` instance exists per simulated run.  It

* assigns monotonically increasing timestamps,
* interns call stacks (a stack table keyed by id keeps the trace
  compact, like the ``stack_traces`` relation in the paper's database
  schema, Fig. 6), and
* collects summary statistics matching what the paper reports for its
  run (Sec. 7.2: counts of lock operations, memory accesses,
  allocations and deallocations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.locks import Lock, LockMode
from benchmarks.perf.legacy_repro.kernel.memory import Allocation
from benchmarks.perf.legacy_repro.tracing.events import (
    AccessEvent,
    AllocEvent,
    Event,
    FreeEvent,
    LockEvent,
)

StackFrames = Tuple[Tuple[str, str, int], ...]

#: Stack id used when a context has no frames pushed.
EMPTY_STACK_ID = 0


@dataclass
class TraceStats:
    """Trace summary counters (the Sec. 7.2 numbers)."""

    lock_ops: int = 0
    accesses: int = 0
    allocs: int = 0
    frees: int = 0

    @property
    def total_events(self) -> int:
        return self.lock_ops + self.accesses + self.allocs + self.frees


class Tracer:
    """Records trace events in order.

    The tracer is deliberately dumb: it performs no analysis, no
    filtering and no address resolution — those are post-processing
    concerns.  ``enabled`` can be toggled to skip tracing (used to model
    the paper's untraced warm-up phases).
    """

    def __init__(self) -> None:
        self.events: List[Event] = []
        self.stats = TraceStats()
        self.enabled = True
        self._clock = 0
        self._stack_table: Dict[StackFrames, int] = {(): EMPTY_STACK_ID}
        self._stacks_by_id: List[StackFrames] = [()]

    # ------------------------------------------------------------------
    # Clock and stack interning
    # ------------------------------------------------------------------

    def now(self) -> int:
        """Advance and return the trace clock."""
        self._clock += 1
        return self._clock

    @property
    def clock(self) -> int:
        return self._clock

    def intern_stack(self, frames: StackFrames) -> int:
        stack_id = self._stack_table.get(frames)
        if stack_id is None:
            stack_id = len(self._stacks_by_id)
            self._stack_table[frames] = stack_id
            self._stacks_by_id.append(frames)
        return stack_id

    def stack(self, stack_id: int) -> StackFrames:
        """Resolve an interned stack id back to its frames."""
        return self._stacks_by_id[stack_id]

    @property
    def stack_count(self) -> int:
        return len(self._stacks_by_id)

    def _site(self, ctx: ExecutionContext, line: Optional[int]) -> Tuple[int, str, int]:
        """Intern the context's current stack; return (stack_id, file, line)."""
        frames = ctx.stack_snapshot()
        stack_id = self.intern_stack(frames)
        if frames:
            _, file, frame_line = frames[-1]
            return stack_id, file, line if line is not None else frame_line
        return stack_id, "<unknown>", line if line is not None else 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_alloc(self, ctx: ExecutionContext, allocation: Allocation) -> None:
        if not self.enabled:
            return
        self.stats.allocs += 1
        self.events.append(
            AllocEvent(
                ts=self.now(),
                ctx_id=ctx.ctx_id,
                alloc_id=allocation.alloc_id,
                address=allocation.address,
                size=allocation.size,
                data_type=allocation.data_type,
                subclass=allocation.subclass,
            )
        )

    def record_free(self, ctx: ExecutionContext, allocation: Allocation) -> None:
        if not self.enabled:
            return
        self.stats.frees += 1
        self.events.append(
            FreeEvent(
                ts=self.now(),
                ctx_id=ctx.ctx_id,
                alloc_id=allocation.alloc_id,
                address=allocation.address,
            )
        )

    def record_access(
        self,
        ctx: ExecutionContext,
        address: int,
        size: int,
        is_write: bool,
        line: Optional[int] = None,
    ) -> None:
        if not self.enabled:
            return
        stack_id, file, site_line = self._site(ctx, line)
        self.stats.accesses += 1
        self.events.append(
            AccessEvent(
                ts=self.now(),
                ctx_id=ctx.ctx_id,
                address=address,
                size=size,
                is_write=is_write,
                stack_id=stack_id,
                file=file,
                line=site_line,
            )
        )

    def record_lock(
        self,
        ctx: ExecutionContext,
        lock: Lock,
        is_acquire: bool,
        mode: LockMode,
        line: Optional[int] = None,
    ) -> None:
        if not self.enabled:
            return
        stack_id, file, site_line = self._site(ctx, line)
        self.stats.lock_ops += 1
        self.events.append(
            LockEvent(
                ts=self.now(),
                ctx_id=ctx.ctx_id,
                lock_id=lock.lock_id,
                lock_class=lock.lock_class.value,
                lock_name=lock.name,
                address=lock.address,
                is_acquire=is_acquire,
                mode=mode.value,
                stack_id=stack_id,
                file=file,
                line=site_line,
            )
        )
