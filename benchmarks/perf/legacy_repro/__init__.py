"""Frozen pre-rewrite snapshot of the trace-generation path.

This package is a verbatim copy (imports rewritten) of ``repro.kernel``,
``repro.tracing``, and the workload modules as they stood before the
PR-5 hot-loop rewrite.  ``benchmarks.perf.bench_trace`` runs it to
measure the events/s speedup and to prove the optimised tracer's binary
dump is byte-identical to the pre-rewrite one.  Never edit by hand
beyond the mechanical import rewrite and the trimmed database stubs.
"""
