"""Symlink workload: create/delete symbolic links (Sec. 7.1).

Symlink creation writes ``i_link`` under the parent directory's
``i_rwsem`` — the EO-flavoured ops rule of Fig. 8."""

from __future__ import annotations

from typing import Generator, List, Tuple

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.workloads.base import ThreadBody, Workload


class Symlinks(Workload):
    """Symlink workload (see module docstring)."""
    name = "symlinks"

    def __init__(self, world, iterations=40, seed=4, fstypes=("ext4", "rootfs")):
        super().__init__(world, iterations, seed)
        self.fstypes = [f for f in fstypes if f in world.supers]

    def threads(self) -> List[Tuple[str, ThreadBody]]:
        return [(f"{self.name}/0", self._body())]

    def _body(self) -> ThreadBody:
        def run(ctx: ExecutionContext) -> Generator:
            world = self.world
            rt = world.rt
            for _ in range(self.iterations):
                fstype = self.rng.choice(self.fstypes) if self.fstypes else "ext4"
                directory = world.root_inodes[fstype]
                with rt.function(ctx, "vfs_symlink", "fs/namei.c", 4240):
                    yield from rt.down_write(ctx, directory.lock("i_rwsem"))
                    link = world.new_inode(ctx, fstype, directory=directory)
                    rt.write(ctx, link, "i_link", line=4250)
                    rt.write(ctx, link, "i_op", line=4251)
                    rt.up_write(ctx, directory.lock("i_rwsem"))
                if self.rng.random() < 0.6:
                    yield from world.vfs_unlink(ctx, fstype)
                yield

        return run
