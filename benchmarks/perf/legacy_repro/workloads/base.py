"""Workload protocol.

A workload contributes one or more kthread bodies to the scheduler.
Bodies are generator functions taking the thread's execution context;
they drive the :class:`~benchmarks.perf.legacy_repro.kernel.vfs.fs.VfsWorld` through its
kernel entry points.
"""

from __future__ import annotations

import random
from typing import Callable, Generator, List, Tuple

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.vfs.fs import VfsWorld

ThreadBody = Callable[[ExecutionContext], Generator]

#: How strongly the benchmark mix exercises each mounted filesystem;
#: mirrors the paper's coverage skew (ext4-centric benchmarks, barely
#: touched debugfs/sockfs/anon inodes — Tab. 6).
FSTYPE_WEIGHTS = {
    "ext4": 0.30,
    "tmpfs": 0.19,
    "rootfs": 0.19,
    "devtmpfs": 0.08,
    "sysfs": 0.07,
    "proc": 0.06,
    "pipefs": 0.04,
    "bdev": 0.03,
    "sockfs": 0.02,
    "anon_inodefs": 0.013,
    "debugfs": 0.004,
}


class Workload:
    """Base class for workloads."""

    name = "workload"

    def __init__(self, world: VfsWorld, iterations: int = 50, seed: int = 0) -> None:
        self.world = world
        self.iterations = iterations
        self.rng = random.Random(seed)

    def threads(self) -> List[Tuple[str, ThreadBody]]:
        """``(thread_name, body)`` pairs to spawn."""
        raise NotImplementedError

    # Convenience used by subclasses -----------------------------------

    def pick_fstype(self, candidates=None) -> str:
        pool = candidates or list(self.world.supers)
        weights = [FSTYPE_WEIGHTS.get(fstype, 0.02) for fstype in pool]
        return self.rng.choices(pool, weights=weights, k=1)[0]

    def pick_inode(self, fstype: str = ""):
        world = self.world
        if not fstype:
            fstype = self.pick_fstype()
        pool = [i for i in world.inodes.get(fstype, []) if i.live]
        if not pool:
            return None
        return self.rng.choice(pool)
