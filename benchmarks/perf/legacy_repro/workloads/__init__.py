"""Benchmark workloads (the paper's custom mix, Sec. 7.1).

The paper drives the kernel with a subset of the Linux Test Project
plus custom programs: *fs-bench-test2* (create files, change
owner/permission, random access), *fsstress* (random I/O on a
directory tree), *fs_inod* (inode churn), pipe tests, symlink tests
and permission tests.  Each has an analogue here, all driving the
simulated VFS through scheduler kthreads:

* :mod:`benchmarks.perf.legacy_repro.workloads.fsbench`   — fs-bench-test2
* :mod:`benchmarks.perf.legacy_repro.workloads.fsstress`  — fsstress
* :mod:`benchmarks.perf.legacy_repro.workloads.fsinod`    — fs_inod
* :mod:`benchmarks.perf.legacy_repro.workloads.pipes`     — pipe workload
* :mod:`benchmarks.perf.legacy_repro.workloads.symlinks`  — symlink workload
* :mod:`benchmarks.perf.legacy_repro.workloads.perms`     — permission-change workload
* :mod:`benchmarks.perf.legacy_repro.workloads.journal`   — jbd2 journal workload
* :mod:`benchmarks.perf.legacy_repro.workloads.mix`       — the full benchmark mix
* :mod:`benchmarks.perf.legacy_repro.workloads.coverage`  — code-coverage accounting (Tab. 3)
"""

from benchmarks.perf.legacy_repro.workloads.base import Workload
from benchmarks.perf.legacy_repro.workloads.mix import BenchmarkMix, run_benchmark_mix

__all__ = ["BenchmarkMix", "Workload", "run_benchmark_mix"]
