"""fs_inod analogue: rapid inode allocation/deallocation churn
(Sec. 7.1).  The churn also recycles heap addresses, exercising the
importer's lifetime-aware address resolution."""

from __future__ import annotations

from typing import Generator, List, Tuple

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.workloads.base import ThreadBody, Workload


class FsInod(Workload):
    """fs_inod analogue (see module docstring)."""
    name = "fs_inod"

    def __init__(self, world, iterations=60, seed=2, fstypes=("rootfs", "tmpfs")):
        super().__init__(world, iterations, seed)
        self.fstypes = [f for f in fstypes if f in world.supers]

    def threads(self) -> List[Tuple[str, ThreadBody]]:
        return [(f"{self.name}/0", self._body())]

    def _body(self) -> ThreadBody:
        def run(ctx: ExecutionContext) -> Generator:
            world = self.world
            for round_index in range(self.iterations):
                if self.fstypes:
                    weights = [3.0 if f == "rootfs" else 1.0 for f in self.fstypes]
                    fstype = self.rng.choices(self.fstypes, weights=weights, k=1)[0]
                else:
                    fstype = "ext4"
                # Burst-create a handful of inodes ...
                for _ in range(3):
                    yield from world.vfs_create(ctx, fstype)
                # ... touch them briefly ...
                inode = self.pick_inode(fstype)
                if inode is not None:
                    yield from world.vfs_write(ctx, inode)
                # ... and burst-delete.
                for _ in range(3):
                    yield from world.vfs_unlink(ctx, fstype)
                yield

        return run
