"""fsstress analogue: random I/O operations across the whole directory
tree and the supporting data structures (Sec. 7.1)."""

from __future__ import annotations

from typing import Generator, List, Tuple

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.runtime import pinned
from benchmarks.perf.legacy_repro.kernel.vfs import dentry as dops, inode as iops
from benchmarks.perf.legacy_repro.workloads.base import ThreadBody, Workload

#: Types the stress threads poke through the spec-driven op engine.
_ENGINE_TYPES = (
    "inode",
    "dentry",
    "super_block",
    "backing_dev_info",
    "buffer_head",
    "block_device",
    "cdev",
    "pipe_inode_info",
)


class FsStress(Workload):
    """fsstress analogue (see module docstring)."""
    name = "fsstress"

    def __init__(self, world, iterations=80, seed=1, nthreads=3):
        super().__init__(world, iterations, seed)
        self.nthreads = nthreads

    def threads(self) -> List[Tuple[str, ThreadBody]]:
        return [(f"{self.name}/{i}", self._body(i)) for i in range(self.nthreads)]

    def _body(self, index: int) -> ThreadBody:
        def run(ctx: ExecutionContext) -> Generator:
            world = self.world
            rt = world.rt
            for _ in range(self.iterations):
                roll = self.rng.random()
                if roll < 0.42:
                    type_name = self.rng.choice(_ENGINE_TYPES)
                    obj = world.random_object(type_name)
                    if obj is not None:
                        yield from world.exercise(ctx, type_name, obj)
                elif roll < 0.52:
                    fstype = self.pick_fstype(
                        ("ext4", "tmpfs", "rootfs", "devtmpfs", "sysfs")
                    )
                    yield from world.vfs_create(ctx, fstype)
                elif roll < 0.60:
                    yield from world.vfs_rename(ctx)
                elif roll < 0.70:
                    # readdir through the libfs walk (the d_subdirs
                    # violation path) or the locked variant.
                    live = [d for d in world.dentries if d.live]
                    if live:
                        d = self.rng.choice(live)
                        dir_inode = d.refs.get("d_inode")
                        if dir_inode is not None and dir_inode.live:
                            if self.rng.random() < 0.02:
                                with pinned(dir_inode, d):
                                    yield from dops.simple_dir_walk(
                                        rt, ctx, dir_inode, d
                                    )
                            else:
                                yield from world.exercise(ctx, "dentry", d)
                elif roll < 0.80:
                    live = [d for d in world.dentries if d.live]
                    if live:
                        d = self.rng.choice(live)
                        sub = self.rng.random()
                        if sub < 0.40:
                            yield from dops.dget(rt, ctx, d)
                        elif sub < 0.86:
                            yield from dops.rcu_walk_lookup(rt, ctx, d)
                        elif sub < 0.95:
                            yield from dops.d_lru_scan(rt, ctx, d)
                        else:
                            yield from dops.d_lru_shrink(rt, ctx, d)
                elif roll < 0.88:
                    inode = self.pick_inode()
                    if inode is not None:
                        yield from world.vfs_read(ctx, inode)
                else:
                    # hash lookups (find_inode) and LRU churn.
                    fstype = self.pick_fstype()
                    chains = world.hash_chains.get(fstype, [])
                    chain = self.rng.choice(chains) if chains else []
                    if chain:
                        yield from iops.find_inode(
                            rt, ctx, chain[-4:],
                            with_i_lock=self.rng.random() < 0.2,
                        )
                    inode = self.pick_inode()
                    if inode is not None:
                        with pinned(inode):
                            sub = self.rng.random()
                            if sub < 0.45:
                                yield from iops.inode_lru_add(
                                    rt, ctx, inode, with_i_lock=self.rng.random() < 0.5
                                )
                            elif sub < 0.7:
                                yield from iops.inode_lru_check(
                                    rt, ctx, inode, with_i_lock=self.rng.random() < 0.5
                                )
                            else:
                                yield from iops.inode_lru_isolate(rt, ctx, inode)
                yield

        return run
