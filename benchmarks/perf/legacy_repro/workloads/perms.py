"""Permission-change workload: chmod/chown loops (Sec. 7.1).

Owner/mode updates run under the inode's own ``i_rwsem`` (the spec's
"owner" group), timestamps under the "times" group — including the
``inode_set_flags`` paths, one of which is the confirmed kernel bug."""

from __future__ import annotations

from typing import Generator, List, Tuple

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.vfs import inode as iops
from benchmarks.perf.legacy_repro.workloads.base import ThreadBody, Workload


class Perms(Workload):
    """Permission-change workload (see module docstring)."""
    name = "perms"

    def __init__(self, world, iterations=60, seed=5, buggy_flag_rate=0.05):
        super().__init__(world, iterations, seed)
        self.buggy_flag_rate = buggy_flag_rate

    def threads(self) -> List[Tuple[str, ThreadBody]]:
        return [(f"{self.name}/0", self._body())]

    def _body(self) -> ThreadBody:
        def run(ctx: ExecutionContext) -> Generator:
            world = self.world
            rt = world.rt
            fstypes = ("ext4", "tmpfs", "rootfs", "devtmpfs", "sysfs", "bdev")
            for _ in range(self.iterations):
                inode = self.pick_inode(self.rng.choice(fstypes))
                if inode is None:
                    yield from world.vfs_create(ctx, "ext4")
                    continue
                if not inode.live:
                    continue
                inode.pin()
                roll = self.rng.random()
                if roll < 0.45:
                    # chmod/chown: i_rwsem-guarded owner updates.
                    with rt.function(ctx, "chmod_common", "fs/open.c", 550):
                        yield from rt.down_write(ctx, inode.lock("i_rwsem"))
                        rt.read(ctx, inode, "i_mode", line=556)
                        rt.write(ctx, inode, "i_mode", line=557)
                        rt.write(ctx, inode, "i_ctime", line=558)
                        rt.up_write(ctx, inode.lock("i_rwsem"))
                elif roll < 0.75:
                    with rt.function(ctx, "chown_common", "fs/open.c", 600):
                        yield from rt.down_write(ctx, inode.lock("i_rwsem"))
                        rt.write(ctx, inode, "i_uid", line=606)
                        rt.write(ctx, inode, "i_gid", line=607)
                        rt.write(ctx, inode, "i_ctime", line=608)
                        rt.up_write(ctx, inode.lock("i_rwsem"))
                else:
                    # Only the deviant subclasses carry the buggy
                    # cmpxchg path (clean subclasses: Tab. 7 zero rows).
                    from benchmarks.perf.legacy_repro.kernel.vfs.groundtruth import DEVIANT_SUBCLASSES

                    buggy_ok = inode.subclass in DEVIANT_SUBCLASSES
                    locked = (
                        not buggy_ok
                        or self.rng.random() >= self.buggy_flag_rate
                    )
                    yield from iops.inode_set_flags(rt, ctx, inode, locked=locked)
                inode.unpin()
                yield

        return run
