"""JBD2 journal workload: commit/checkpoint machinery plus the
``ext4_writepages`` path of Tab. 8."""

from __future__ import annotations

from typing import Generator, List, Tuple

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.runtime import pinned
from benchmarks.perf.legacy_repro.kernel.vfs import jbd2
from benchmarks.perf.legacy_repro.workloads.base import ThreadBody, Workload


class Journal(Workload):
    """JBD2 journal workload (see module docstring)."""
    name = "jbd2"

    def __init__(self, world, iterations=60, seed=6, peek_rate=0.06):
        super().__init__(world, iterations, seed)
        self.peek_rate = peek_rate

    def threads(self) -> List[Tuple[str, ThreadBody]]:
        return [(f"{self.name}/kjournald", self._body())]

    def _body(self) -> ThreadBody:
        def run(ctx: ExecutionContext) -> Generator:
            world = self.world
            rt = world.rt
            journal = world.journal
            if journal is None:
                return
            for _ in range(self.iterations):
                live_txns = [t for t in world.transactions if t.live]
                if not live_txns:
                    world.new_transaction(ctx)
                    live_txns = [t for t in world.transactions if t.live]
                txn = self.rng.choice(live_txns)
                roll = self.rng.random()
                if roll < 0.26:
                    yield from jbd2.jbd2_journal_commit_transaction(rt, ctx, journal, txn)
                elif roll < 0.40:
                    yield from jbd2.jbd2_journal_start(rt, ctx, journal, txn)
                elif roll < 0.50:
                    yield from jbd2.jbd2_checkpoint(rt, ctx, journal, txn)
                elif roll < 0.50 + self.peek_rate:
                    inode = self.pick_inode("ext4")
                    if inode is not None:
                        with pinned(inode):
                            yield from jbd2.ext4_writepages_peek(rt, ctx, inode, journal)
                else:
                    kinds = ("journal_t", "journal_t", "journal_t",
                             "transaction_t", "transaction_t",
                             "journal_head", "journal_head")
                    obj = world.random_object(self.rng.choice(kinds))
                    if obj is not None:
                        yield from world.exercise(ctx, obj.data_type, obj)
                # keep journal heads flowing: attach to buffer heads.
                if self.rng.random() < 0.25:
                    bh_pool = [b for b in world.buffer_heads if b.live]
                    if bh_pool:
                        bh = self.rng.choice(bh_pool)
                        if len(world.journal_heads) < 24:
                            jh = world.new_journal_head(ctx, bh)
                        else:
                            jh = self.rng.choice(
                                [j for j in world.journal_heads if j.live]
                            )
                        with pinned(jh):
                            yield from jbd2.jbd2_journal_add_journal_head(
                                rt, ctx, jh, journal
                            )
                yield

        return run
