"""fs-bench-test2 analogue: create files, change owner/permission,
and access them randomly (Sec. 7.1)."""

from __future__ import annotations

from typing import Generator, List, Tuple

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.workloads.base import ThreadBody, Workload


class FsBench(Workload):
    """fs-bench-test2 analogue (see module docstring)."""
    name = "fs-bench-test2"

    def __init__(self, world, iterations=50, seed=0, fstypes=("ext4", "tmpfs")):
        super().__init__(world, iterations, seed)
        self.fstypes = [f for f in fstypes if f in world.supers]

    def threads(self) -> List[Tuple[str, ThreadBody]]:
        return [
            (f"{self.name}/{index}", self._body(index))
            for index in range(len(self.fstypes) or 1)
        ]

    def _body(self, index: int) -> ThreadBody:
        fstype = self.fstypes[index % len(self.fstypes)] if self.fstypes else "ext4"

        def run(ctx: ExecutionContext) -> Generator:
            world = self.world
            for _ in range(self.iterations):
                roll = self.rng.random()
                if roll < 0.3:
                    yield from world.vfs_create(ctx, fstype)
                elif roll < 0.45:
                    yield from world.vfs_unlink(ctx, fstype)
                else:
                    inode = self.pick_inode(fstype)
                    if inode is None:
                        yield from world.vfs_create(ctx, fstype)
                        continue
                    if roll < 0.7:
                        yield from world.vfs_write(ctx, inode)
                    elif roll < 0.85:
                        yield from world.vfs_read(ctx, inode)
                    else:
                        # chown/chmod: the spec's "owner" group op.
                        yield from world.exercise(ctx, "inode", inode)
                yield  # voluntary preemption between syscalls

        return run
