"""Synthetic planted-race workload (ground truth for ``repro races``).

A small simulated subsystem exercised by scheduler kthreads, seeded and
deterministic like every other workload, with *known* concurrency
behaviour planted per member of ``struct race_obj``:

=========  =========================================================
member     planted behaviour
=========  =========================================================
counter    **race** — workers write it under ``race_obj.lock``, the
           buggy thread writes it with no lock at all
dirty      **race** — same shape, second target
stat       **ordered violation** — the init phase writes it unlocked
           *before* any worker runs (published via the handoff lock),
           workers then write it under ``race_obj.lock``; breaking the
           derived rule but never actually racing
seq        **benign** — written only by init and one worker, never
           locked, always ordered: the derived rule is "no lock
           needed" and no conflicting pair is unordered
guarded    **clean** — every access locked; must never even become a
           lockset candidate
=========  =========================================================

Ordering of the init phase is deterministic by construction: init runs
*inline* (before the scheduler starts) and then releases the global
``racer_handoff`` spinlock; every worker acquires/releases it first
thing, so the release→acquire edge publishes init's writes no matter
how the scheduler interleaves the workers.

The racy threads take **no** locks (their vector clocks never merge
with anyone), so the planted races are unordered under every possible
schedule, and the good threads outnumber the buggy accesses so rule
derivation still mines ``ES(lock in race_obj)`` (the buggy thread's
lock-free accesses fold into a single pseudo-transaction observation).

Additionally a ``cycler`` thread acquires three global spinlocks in the
rotating orders A→B, B→C, C→A — a planted **3-lock order cycle** that
the pairwise ABBA inversion check cannot see (no pair is ever taken in
both orders) but SCC cycle detection must report.  Its accesses go to a
private ``cycle_obj`` so they perturb neither rule derivation nor the
lockset state machine of ``race_obj``.

``run_racer(racy=False)`` produces the race-free control variant: the
buggy thread takes ``race_obj.lock`` like everyone else and the race
detector must report **zero** races (the planted cycle remains).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Tuple

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.runtime import KernelRuntime
from benchmarks.perf.legacy_repro.kernel.sched import Scheduler
from benchmarks.perf.legacy_repro.kernel.structs import Member, StructDef, StructRegistry

#: Ground truth: the (type_key, member) targets planted as actual races.
PLANTED_RACES: Tuple[Tuple[str, str], ...] = (
    ("race_obj", "counter"),
    ("race_obj", "dirty"),
)

#: Ground truth: the planted lock-order cycle (global spinlock names).
PLANTED_CYCLE: Tuple[str, ...] = ("racer_a", "racer_b", "racer_c")

_FILE = "workloads/racer.c"


def build_racer_registry() -> StructRegistry:
    """Struct layouts of the racer subsystem."""
    return StructRegistry(
        [
            StructDef(
                "race_obj",
                [
                    Member.scalar("counter", 8),
                    Member.scalar("dirty", 8),
                    Member.scalar("stat", 8),
                    Member.scalar("seq", 8),
                    Member.scalar("guarded", 8),
                    Member.lock("lock", "spinlock_t"),
                ],
            ),
            StructDef(
                "cycle_obj",
                [
                    Member.scalar("ab", 8),
                    Member.scalar("bc", 8),
                    Member.scalar("ca", 8),
                ],
            ),
        ]
    )


@dataclass
class RacerResult:
    """Everything one racer run produced."""

    rt: KernelRuntime
    scheduler: Scheduler
    steps: int
    racy: bool

    @property
    def tracer(self):
        return self.rt.tracer

    def to_database(self):
        raise NotImplementedError("frozen benchmark snapshot has no importer")

    def derive(
        self, accept_threshold: float = 0.9, jobs: Optional[int] = None
    ):
        raise NotImplementedError("frozen benchmark snapshot has no derivator")


def run_racer(seed: int = 0, scale: float = 1.0, racy: bool = True) -> RacerResult:
    """Run the planted-race workload; deterministic per (seed, scale, racy)."""
    from benchmarks.perf.legacy_repro.kernel import reset_id_counters

    reset_id_counters()
    rt = KernelRuntime(build_racer_registry())
    iterations = max(10, int(12 * scale))
    cycle_rounds = max(3, int(4 * scale))

    # -- init phase: inline, before any worker exists -------------------
    init_ctx = rt.new_task("racer-init")
    handoff = rt.static_lock("racer_handoff", "spinlock_t")
    with rt.function(init_ctx, "racer_init", _FILE, 10):
        obj = rt.new_object(init_ctx, "race_obj")
        cycle_obj = rt.new_object(init_ctx, "cycle_obj")
        # Deliberately unlocked: nothing else can run yet.  `stat` is
        # later written under the lock by workers (ordered violation);
        # `seq` stays lock-free forever (benign).
        rt.write(init_ctx, obj, "stat", 0, line=14)
        rt.write(init_ctx, obj, "seq", 0, line=15)
        # Publish the init writes: releasing the handoff lock hands the
        # init clock to every worker that acquires it.
        rt.run(rt.spin_lock(init_ctx, handoff, line=18))
        rt.spin_unlock(init_ctx, handoff, line=19)

    # -- scheduled phase ------------------------------------------------
    scheduler = Scheduler(rt, seed=seed + 1)
    for worker in range(3):
        scheduler.spawn(
            f"racer-good/{worker}",
            _good_worker(rt, obj, handoff, iterations, write_seq=worker == 0),
        )
    scheduler.spawn("racer-buggy", _buggy_worker(rt, obj, iterations, racy))
    scheduler.spawn("racer-cycler", _cycler(rt, cycle_obj, cycle_rounds))
    steps = scheduler.run()
    return RacerResult(rt=rt, scheduler=scheduler, steps=steps, racy=racy)


# ----------------------------------------------------------------------
# Thread bodies
# ----------------------------------------------------------------------


def _good_worker(rt: KernelRuntime, obj, handoff, iterations: int, write_seq: bool):
    def body(ctx: ExecutionContext) -> Generator:
        with rt.function(ctx, "racer_worker", _FILE, 30):
            # Synchronize with the init phase (release→acquire edge).
            yield from rt.spin_lock(ctx, handoff, line=32)
            rt.spin_unlock(ctx, handoff, line=33)
            lock = obj.lock("lock")
            for index in range(iterations):
                yield from rt.spin_lock(ctx, lock, line=36)
                value = rt.read(ctx, obj, "counter", line=37)
                rt.write(ctx, obj, "counter", (value or 0) + 1, line=38)
                rt.write(ctx, obj, "dirty", index, line=39)
                rt.write(ctx, obj, "stat", index, line=40)
                rt.write(ctx, obj, "guarded", index, line=41)
                rt.spin_unlock(ctx, lock, line=42)
                if write_seq:
                    # Lock-free but single-writer and ordered after the
                    # init write via the handoff edge: benign.
                    rt.write(ctx, obj, "seq", index, line=46)
                yield

    return body


def _buggy_worker(rt: KernelRuntime, obj, iterations: int, racy: bool):
    def body(ctx: ExecutionContext) -> Generator:
        with rt.function(ctx, "racer_buggy", _FILE, 60):
            lock = obj.lock("lock")
            for index in range(iterations // 2):
                if racy:
                    # The planted bug: no lock, no synchronization at
                    # all — this context's clock never merges.
                    rt.write(ctx, obj, "counter", -1, line=66)
                    rt.write(ctx, obj, "dirty", -index, line=67)
                else:
                    yield from rt.spin_lock(ctx, lock, line=69)
                    rt.write(ctx, obj, "counter", -1, line=70)
                    rt.write(ctx, obj, "dirty", -index, line=71)
                    rt.spin_unlock(ctx, lock, line=72)
                yield

    return body


def _cycler(rt: KernelRuntime, cycle_obj, rounds: int):
    def body(ctx: ExecutionContext) -> Generator:
        with rt.function(ctx, "racer_cycler", _FILE, 80):
            a = rt.static_lock("racer_a", "spinlock_t")
            b = rt.static_lock("racer_b", "spinlock_t")
            c = rt.static_lock("racer_c", "spinlock_t")
            # A→B, B→C, C→A: a 3-cycle with no pairwise inversion.  A
            # single sequential thread cannot deadlock on it, but three
            # threads each running one section could — exactly what
            # cycle detection is for.
            for (first, second, member) in ((a, b, "ab"), (b, c, "bc"), (c, a, "ca")):
                for _ in range(rounds):
                    yield from rt.spin_lock(ctx, first, line=88)
                    yield from rt.spin_lock(ctx, second, line=89)
                    rt.write(ctx, cycle_obj, member, 1, line=90)
                    rt.spin_unlock(ctx, second, line=91)
                    rt.spin_unlock(ctx, first, line=92)
                    yield

    return body
