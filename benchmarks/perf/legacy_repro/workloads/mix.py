"""The full benchmark mix (Sec. 7.1).

Assembles the simulated kernel, the workload threads (fs-bench-test2,
fsstress, fs_inod, pipes, symlinks, perms, jbd2, flusher), and the
injected IO-completion interrupts; runs everything under the
deterministic scheduler; and hands back the recorded trace.

``scale`` multiplies every workload's iteration count, so experiments
can trade runtime for statistical depth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Optional

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.runtime import KernelRuntime
from benchmarks.perf.legacy_repro.kernel.sched import Scheduler
from benchmarks.perf.legacy_repro.kernel.vfs import bufferhead
from benchmarks.perf.legacy_repro.kernel.vfs.fs import VfsWorld
from benchmarks.perf.legacy_repro.kernel.vfs.groundtruth import build_filter_config
from benchmarks.perf.legacy_repro.workloads.base import Workload
from benchmarks.perf.legacy_repro.workloads.bdflush import BdFlush
from benchmarks.perf.legacy_repro.workloads.fsbench import FsBench
from benchmarks.perf.legacy_repro.workloads.fsinod import FsInod
from benchmarks.perf.legacy_repro.workloads.fsstress import FsStress
from benchmarks.perf.legacy_repro.workloads.journal import Journal
from benchmarks.perf.legacy_repro.workloads.perms import Perms
from benchmarks.perf.legacy_repro.workloads.pipes import Pipes
from benchmarks.perf.legacy_repro.workloads.symlinks import Symlinks


@dataclass
class MixResult:
    """Everything a finished benchmark run produced."""

    world: VfsWorld
    scheduler: Scheduler
    steps: int

    @property
    def tracer(self):
        return self.world.rt.tracer

    def to_database(self):
        raise NotImplementedError("frozen benchmark snapshot has no importer")


class BenchmarkMix:
    """Configurable assembly of the paper's benchmark mix."""

    def __init__(
        self,
        seed: int = 0,
        scale: float = 1.0,
        irq_rate: float = 0.05,
        softirq_rate: float = 0.16,
    ) -> None:
        self.seed = seed
        self.scale = scale
        self.irq_rate = irq_rate
        self.softirq_rate = softirq_rate

    def _iterations(self, base: int) -> int:
        return max(1, int(base * self.scale))

    def build_workloads(self, world: VfsWorld) -> List[Workload]:
        seed = self.seed
        return [
            FsBench(world, self._iterations(50), seed + 10),
            FsStress(world, self._iterations(80), seed + 11),
            FsInod(world, self._iterations(60), seed + 12),
            Pipes(world, self._iterations(60), seed + 13),
            Symlinks(world, self._iterations(40), seed + 14),
            Perms(world, self._iterations(60), seed + 15),
            Journal(world, self._iterations(90), seed + 16),
            BdFlush(world, self._iterations(150), seed + 17),
        ]

    def run(self, runtime: Optional[KernelRuntime] = None) -> MixResult:
        if runtime is None:
            from benchmarks.perf.legacy_repro.kernel import reset_id_counters

            reset_id_counters()
        world = VfsWorld(runtime, seed=self.seed)
        world.boot()
        scheduler = Scheduler(world.rt, seed=self.seed + 1)
        for workload in self.build_workloads(world):
            for name, body in workload.threads():
                scheduler.spawn(name, body)
        self._add_irq_sources(world, scheduler)
        # Subclass-only stress: hit every inode subclass at least a bit.
        scheduler.spawn(
            "subclass-sweep",
            _subclass_sweep(world, self._iterations(40), self.seed + 12345),
        )
        steps = scheduler.run()
        return MixResult(world=world, scheduler=scheduler, steps=steps)

    def _add_irq_sources(self, world: VfsWorld, scheduler: Scheduler) -> None:
        rng = random.Random(self.seed + 99)

        def softirq_body(ctx: ExecutionContext) -> Generator:
            live = [b for b in world.buffer_heads if b.live]
            if not live:
                return
            bh = rng.choice(live)
            if rng.random() < 0.96:
                yield from bufferhead.end_buffer_async_write(world.rt, ctx, bh)
            else:
                yield from bufferhead.touch_buffer(world.rt, ctx, bh)

        def hardirq_body(ctx: ExecutionContext) -> Generator:
            live = [b for b in world.buffer_heads if b.live]
            if not live:
                return
            bh = rng.choice(live)
            yield from bufferhead.end_buffer_read_sync(world.rt, ctx, bh)

        scheduler.add_irq_source(
            "blk-softirq", softirq_body, rate=self.softirq_rate, softirq=True
        )
        scheduler.add_irq_source("blk-hardirq", hardirq_body, rate=self.irq_rate)


def _subclass_sweep(world: VfsWorld, iterations: int, seed: int = 12345):
    """A thread that exercises inodes of every mounted subclass, so the
    Tab. 6 per-subclass rows all have observations."""

    def run(ctx: ExecutionContext) -> Generator:
        from benchmarks.perf.legacy_repro.kernel.vfs import inode as iops

        rng = random.Random(seed)
        fstypes = list(world.supers)
        for index in range(iterations):
            fstype = fstypes[index % len(fstypes)]
            pool = [i for i in world.inodes.get(fstype, []) if i.live]
            if index < len(fstypes) and pool:
                # First visit: hash one inode, so even barely-exercised
                # subclasses (debugfs) contribute at least one rule.
                yield from iops.insert_inode_hash(world.rt, ctx, pool[0])
            if len(pool) < 3:
                # boot-style allocation (init-filtered), so the sweep
                # itself never runs creation paths on rare subclasses.
                world.new_inode(ctx, fstype, directory=world.root_inodes[fstype])
                pool = [i for i in world.inodes.get(fstype, []) if i.live]
            for _ in range(6):
                inode = rng.choice(pool)
                yield from world.exercise(ctx, "inode", inode)
            yield

    return run


def run_benchmark_mix(seed: int = 0, scale: float = 1.0) -> MixResult:
    """Convenience one-shot runner used by experiments and examples."""
    return BenchmarkMix(seed=seed, scale=scale).run()
