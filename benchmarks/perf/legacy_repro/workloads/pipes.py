"""Pipe workload: the paper's custom pipe test program (Sec. 7.1)."""

from __future__ import annotations

from typing import Generator, List, Tuple

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.vfs import pipe as pops
from benchmarks.perf.legacy_repro.workloads.base import ThreadBody, Workload


class Pipes(Workload):
    """Pipe workload (see module docstring)."""
    name = "pipes"

    def __init__(self, world, iterations=60, seed=3):
        super().__init__(world, iterations, seed)

    def threads(self) -> List[Tuple[str, ThreadBody]]:
        return [
            (f"{self.name}/writer", self._body(writer=True)),
            (f"{self.name}/reader", self._body(writer=False)),
        ]

    def _ensure_pipe(self, ctx: ExecutionContext):
        world = self.world
        live = [p for p in world.pipes if p.live]
        if not live:
            pipe = world.new_pipe(ctx)
            # pipefs inodes accompany real pipes.
            if "pipefs" in world.supers:
                inode = world.new_inode(ctx, "pipefs")
                inode.refs["i_pipe_obj"] = pipe
            return pipe
        return self.rng.choice(live)

    def _body(self, writer: bool) -> ThreadBody:
        def run(ctx: ExecutionContext) -> Generator:
            world = self.world
            rt = world.rt
            for _ in range(self.iterations):
                pipe = self._ensure_pipe(ctx)
                roll = self.rng.random()
                if roll < 0.004:
                    yield from pops.pipe_poll_fast(rt, ctx, pipe)
                elif roll < 0.10:
                    yield from pops.pipe_release(rt, ctx, pipe)
                elif writer:
                    yield from pops.pipe_write(rt, ctx, pipe)
                else:
                    yield from pops.pipe_read(rt, ctx, pipe)
                if self.rng.random() < 0.15:
                    inode = self.pick_inode("pipefs")
                    if inode is not None:
                        yield from world.exercise(ctx, "inode", inode)
                yield

        return run
