"""Writeback/flusher workload: buffer-head traffic and backing-dev
bandwidth accounting.  Together with the injected IO-completion
softirqs this produces the buffer_head violation fountain of Tab. 7."""

from __future__ import annotations

from typing import Generator, List, Tuple

from benchmarks.perf.legacy_repro.kernel.context import ExecutionContext
from benchmarks.perf.legacy_repro.kernel.runtime import pinned
from benchmarks.perf.legacy_repro.kernel.vfs import bufferhead
from benchmarks.perf.legacy_repro.workloads.base import ThreadBody, Workload


class BdFlush(Workload):
    """Writeback/flusher workload (see module docstring)."""
    name = "flush"

    def __init__(self, world, iterations=80, seed=7, max_buffers=30):
        super().__init__(world, iterations, seed)
        self.max_buffers = max_buffers

    def threads(self) -> List[Tuple[str, ThreadBody]]:
        return [(f"{self.name}/0", self._body())]

    def _body(self) -> ThreadBody:
        def run(ctx: ExecutionContext) -> Generator:
            world = self.world
            rt = world.rt
            for _ in range(self.iterations):
                live = [b for b in world.buffer_heads if b.live]
                if len(live) < self.max_buffers and self.rng.random() < 0.3:
                    inode = self.pick_inode("ext4") or self.pick_inode()
                    if inode is not None:
                        world.new_buffer_head(ctx, inode)
                live = [b for b in world.buffer_heads if b.live]
                if live:
                    bh = self.rng.choice(live)
                    roll = self.rng.random()
                    if roll < 0.48:
                        with pinned(bh):
                            yield from bufferhead.mark_buffer_dirty(
                                rt, ctx, bh, locked=self.rng.random() > 0.07
                            )
                    elif roll < 0.51:
                        with pinned(bh):
                            yield from bufferhead.touch_buffer(rt, ctx, bh)
                    elif roll < 0.70:
                        inode = bh.refs.get("b_assoc_map")
                        if inode is not None and inode.live:
                            with pinned(bh, inode):
                                yield from bufferhead.buffer_associate(rt, ctx, bh)
                    elif roll < 0.8:
                        yield from world.exercise(ctx, "buffer_head", bh)
                    elif roll < 0.85 and len(live) > 4:
                        world.destroy_buffer_head(ctx, bh)
                # bdi bandwidth accounting + occasional sb activity.
                if self.rng.random() < 0.5:
                    bdi = world.random_object("backing_dev_info")
                    if bdi is not None:
                        yield from world.exercise(ctx, "backing_dev_info", bdi)
                if self.rng.random() < 0.25:
                    sb = world.random_object("super_block")
                    if sb is not None:
                        yield from world.exercise(ctx, "super_block", sb)
                yield

        return run
