"""Import-time filters (paper Sec. 5.3).

Three properties of real-world kernels would mislead naive rule
derivation; the importer filters them out:

1. **Init/teardown accesses** — objects under construction or
   destruction are invisible to concurrent control flows and skip
   locking deliberately.  A list of (de)initialization functions is
   maintained; accesses with such a function on their call stack drop.
2. **Out-of-scope members** — a per-type member black list.
3. **Atomic members and lock words** — ``atomic_t`` members, accesses
   performed via ``atomic_read()``-style helpers (a global function
   black list), and the lock member variables themselves.

The paper's configuration has 99 per-type function entries, 58 global
ignored functions and 30 black-listed members; ours is declared by the
VFS model (:mod:`benchmarks.perf.legacy_repro.kernel.vfs.groundtruth`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

#: Filter reason tags stored on AccessRow.filter_reason.
REASON_INIT_TEARDOWN = "init_teardown"
REASON_FUNCTION_BLACKLIST = "function_blacklist"
REASON_MEMBER_BLACKLIST = "member_blacklist"
REASON_ATOMIC_MEMBER = "atomic_member"
REASON_LOCK_MEMBER = "lock_member"
REASON_UNTYPED = "untyped_address"
#: A lock release with no matching acquisition in the same context.
REASON_UNMATCHED_RELEASE = "unmatched_release"
#: Access rows of a transaction closed by a synthesized lock release
#: (the trace ended, or a release event went missing, while the lock
#: was still held) — their lock sequences cannot be trusted.
REASON_SYNTHETIC_TXN = "synthetic_close_txn"
#: Access rows recorded while a stale lock polluted the context's held
#: set (a lost release, detected by re-acquisition or at trace end) —
#: the span between the stale acquire and the detection point carries
#: an unknown release point, so every lock sequence in it is suspect.
REASON_STALE_LOCK = "stale_lock_span"


@dataclass
class FilterConfig:
    """What to filter during import.

    Attributes:
        init_teardown_functions: function names whose dynamic extent is
            object construction/destruction.
        global_function_blacklist: functions whose accesses bypass
            locking by design (``atomic_inc`` etc.).
        per_type_function_blacklist: ``{data_type: {function, ...}}`` —
            functions ignored only for accesses to that type.
        member_blacklist: ``{(data_type, member), ...}``.
        drop_atomic_members: filter accesses landing on ``atomic_t``
            members (paper: yes).
        drop_lock_members: filter accesses landing on lock words.
    """

    init_teardown_functions: Set[str] = field(default_factory=set)
    global_function_blacklist: Set[str] = field(default_factory=set)
    per_type_function_blacklist: Dict[str, Set[str]] = field(default_factory=dict)
    member_blacklist: Set[Tuple[str, str]] = field(default_factory=set)
    drop_atomic_members: bool = True
    drop_lock_members: bool = True

    def blacklisted_members(self, data_type: str) -> Set[str]:
        return {m for (t, m) in self.member_blacklist if t == data_type}

    def reason_for(
        self,
        data_type: str,
        member: str,
        member_kind: str,
        stack_functions: FrozenSet[str],
    ) -> Optional[str]:
        """First matching filter reason, or None if the access is kept."""
        if self.drop_lock_members and member_kind == "lock":
            return REASON_LOCK_MEMBER
        if self.drop_atomic_members and member_kind == "atomic":
            return REASON_ATOMIC_MEMBER
        if (data_type, member) in self.member_blacklist:
            return REASON_MEMBER_BLACKLIST
        if stack_functions & self.init_teardown_functions:
            return REASON_INIT_TEARDOWN
        if stack_functions & self.global_function_blacklist:
            return REASON_FUNCTION_BLACKLIST
        per_type = self.per_type_function_blacklist.get(data_type)
        if per_type and stack_functions & per_type:
            return REASON_FUNCTION_BLACKLIST
        return None


@dataclass
class FilterStats:
    """Counts of filtered accesses per reason (reporting aid)."""

    by_reason: Dict[str, int] = field(default_factory=dict)

    def count(self, reason: str) -> None:
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.by_reason.values())
