"""Frozen leaf module needed by groundtruth (filters only)."""
