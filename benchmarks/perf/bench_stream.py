"""Streamed-analysis benchmark: fused single pass vs the post-mortem trip.

Measures the whole question the streaming engine exists to answer: how
much faster (and smaller) is *fold-while-tracing* than the classic
record → serialize → import → fold → derive pipeline on the same
workload, with correctness pinned on the side.

* **throughput** — end-to-end events/s of ``run_streamed`` + derive vs
  the post-mortem pipeline (workload run, binary dump round-trip,
  import, observation fold, derive); best-of-``--repeat`` wall times,
  each preceded by ``gc.collect()``.  Fails under ``--min-speedup``.
* **memory** — :mod:`tracemalloc` peak of each end-to-end pipeline.
  The streamed pass keeps O(live state) — no event list, no dump
  buffer, no row database — and must stay under ``--max-peak-fraction``
  of the post-mortem peak.
* **equivalence** — the streamed derivation must match the post-mortem
  one row-for-row (the bit-identical contract of
  :mod:`repro.stream.engine`), and two interval-annotated runs must
  render identical window reports (watch determinism).

Results land in ``BENCH_stream.json``::

    PYTHONPATH=src python -m benchmarks.perf.bench_stream \
        --scale 18 --out BENCH_stream.json
"""

from __future__ import annotations

import argparse
import gc
import io
import sys
import time
import tracemalloc
from typing import Callable, Tuple

import repro.kernel  # noqa: F401  (must initialize before repro.tracing)
from repro.atomicio import atomic_write_json

#: Bump on any change to the JSON layout.
SCHEMA = "lockdoc-bench-stream/1"


def _derivation_rows(derivation):
    return [
        (d.type_key, d.member, d.access_type, d.rule.format(),
         d.winner.s_r, d.observation_count)
        for d in derivation.all()
    ]


def _run_postmortem(workload: str, seed: int, scale: float):
    """The classic pipeline, end to end: record, serialize round-trip,
    import, fold, derive.  Returns (events, derivation rows)."""
    from repro.core.derivator import Derivator
    from repro.core.observations import ObservationTable
    from repro.db.importer import Importer
    from repro.tracing.serialize import (
        dumps_events_binary,
        open_binary_stream,
        stacks_of,
    )
    from repro.workloads import registry

    result = registry.resolve(workload)(seed, scale)
    events = len(result.tracer.events)
    dump = dumps_events_binary(result.tracer.events, stacks_of(result.tracer))
    structs, filters = registry.database_inputs(registry.db_recipe(workload))
    stream = open_binary_stream(io.BytesIO(dump))
    db = Importer(structs, filters).run(stream.events, stream.stacks)
    table = ObservationTable.from_database(db)
    derivation = Derivator(0.9).derive(table, jobs=1)
    return events, _derivation_rows(derivation)


def _run_streamed(workload: str, seed: int, scale: float):
    """The fused pass: fold online while the workload runs, derive."""
    from repro.stream import run_streamed

    run = run_streamed(workload, seed, scale)
    derivation = run.derive(0.9, jobs=1)
    return run.engine.total_events, _derivation_rows(derivation)


def _best_of(
    fn: Callable[[], Tuple[int, list]], repeat: int
) -> Tuple[float, int, list]:
    best = float("inf")
    events, rows = 0, []
    for _ in range(max(1, repeat)):
        gc.collect()  # keep deferred garbage out of the timed region
        t0 = time.perf_counter()
        events, rows = fn()
        best = min(best, time.perf_counter() - t0)
    return best, events, rows


def _peak_of(fn: Callable[[], Tuple[int, list]]) -> int:
    gc.collect()
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def bench_throughput(workload: str, seed: int, scale: float, repeat: int) -> dict:
    post_s, events, post_rows = _best_of(
        lambda: _run_postmortem(workload, seed, scale), repeat
    )
    stream_s, stream_events, stream_rows = _best_of(
        lambda: _run_streamed(workload, seed, scale), repeat
    )
    return {
        "events": events,
        "postmortem_s": round(post_s, 4),
        "streamed_s": round(stream_s, 4),
        "postmortem_events_per_s": round(events / post_s, 1),
        "streamed_events_per_s": round(stream_events / stream_s, 1),
        "speedup": round(post_s / stream_s, 2),
        "derivations_equal": (
            stream_events == events and stream_rows == post_rows
        ),
        "rules": len(stream_rows),
    }


def bench_memory(workload: str, seed: int, scale: float) -> dict:
    post_peak = _peak_of(lambda: _run_postmortem(workload, seed, scale))
    stream_peak = _peak_of(lambda: _run_streamed(workload, seed, scale))
    return {
        "postmortem_peak_bytes": post_peak,
        "streamed_peak_bytes": stream_peak,
        "peak_fraction": round(stream_peak / post_peak, 4) if post_peak else None,
    }


def bench_intervals(workload: str, seed: int, scale: float, interval: int) -> dict:
    """Two interval-annotated runs must render identical window reports."""
    from repro.stream import run_streamed

    renders = []
    for _ in range(2):
        run = run_streamed(workload, seed, scale, interval=interval)
        renders.append([r.format() for r in run.engine.interval_reports])
    return {
        "interval": interval,
        "windows": len(renders[0]),
        "deterministic": renders[0] == renders[1],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the streamed analysis path; "
        "write BENCH_stream.json"
    )
    parser.add_argument("--workload", default="mix")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=18.0)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--interval", type=int, default=2000)
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="fail unless streamed/post-mortem end-to-end speedup "
        "reaches this",
    )
    parser.add_argument(
        "--max-peak-fraction", type=float, default=0.50,
        help="fail unless the streamed peak memory stays at or under "
        "this fraction of the post-mortem pipeline's peak",
    )
    parser.add_argument("--out", default="BENCH_stream.json")
    args = parser.parse_args(argv)

    throughput = bench_throughput(
        args.workload, args.seed, args.scale, args.repeat
    )
    print(
        f"throughput: {throughput['events']} events, "
        f"streamed={throughput['streamed_s']:.3f}s "
        f"postmortem={throughput['postmortem_s']:.3f}s "
        f"speedup={throughput['speedup']}x "
        f"equal={throughput['derivations_equal']}"
    )

    memory = bench_memory(args.workload, args.seed, args.scale)
    print(
        f"memory: streamed peak {memory['streamed_peak_bytes'] / 1e6:.1f} MB "
        f"vs postmortem {memory['postmortem_peak_bytes'] / 1e6:.1f} MB "
        f"({memory['peak_fraction']:.0%})"
    )

    intervals = bench_intervals(
        args.workload, args.seed, args.scale, args.interval
    )
    print(
        f"intervals: {intervals['windows']} windows of {intervals['interval']} "
        f"ticks, deterministic={intervals['deterministic']}"
    )

    failures = []
    if not throughput["derivations_equal"]:
        failures.append("streamed derivation diverged from post-mortem")
    if throughput["speedup"] < args.min_speedup:
        failures.append(
            f"streamed speedup {throughput['speedup']}x below the "
            f"{args.min_speedup}x floor"
        )
    if (
        memory["peak_fraction"] is not None
        and memory["peak_fraction"] > args.max_peak_fraction
    ):
        failures.append(
            f"streamed peak is {memory['peak_fraction']:.1%} of post-mortem "
            f"(ceiling {args.max_peak_fraction:.0%})"
        )
    if not intervals["deterministic"]:
        failures.append("interval reports differ between identical runs")

    report = {
        "schema": SCHEMA,
        "workload": args.workload,
        "seed": args.seed,
        "scale": args.scale,
        "repeat": args.repeat,
        "python": sys.version.split()[0],
        "throughput": throughput,
        "memory": memory,
        "intervals": intervals,
        "gates": {
            "min_speedup": args.min_speedup,
            "max_peak_fraction": args.max_peak_fraction,
            "failures": failures,
        },
    }
    atomic_write_json(args.out, report)
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
