"""Derivation-pipeline benchmark: trace -> import -> derive, timed.

Times the full pipeline on the benchmark mix and a standalone fsstress
run, then times the derive step three ways:

* ``baseline``  — the pre-rewrite serial path (re-fold + re-score per
  target, no memo; see :mod:`benchmarks.perf.baseline`),
* ``serial``    — the memoized engine (``Derivator.derive``),
* ``parallel``  — the memoized engine on a process pool (``jobs=N``).

All three must produce *equal* :class:`DerivationResult` payloads —
the harness exits 1 on any divergence, which is what the ``perf-smoke``
CI job asserts.  Results land in ``BENCH_derive.json``::

    PYTHONPATH=src python -m benchmarks.perf.bench_derive \
        --scale 18 --jobs 4 --out BENCH_derive.json

Derive-step timings are best-of-``--repeat`` to damp scheduler noise;
the trace/import phases run once (they dominate wall time and are not
this benchmark's subject).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Tuple

from repro.atomicio import atomic_write_json
from repro.core.derivator import DerivationResult, Derivator
from repro.core.observations import ObservationTable
from repro.db.database import TraceDatabase
from repro.kernel.sched import Scheduler
from repro.kernel.vfs.fs import VfsWorld
from repro.kernel.vfs.groundtruth import build_filter_config
from repro.workloads.fsstress import FsStress
from repro.workloads.mix import BenchmarkMix

from benchmarks.perf.baseline import derive_serial_baseline

#: Bump on any change to the JSON layout.
SCHEMA = "lockdoc-bench-derive/1"


def _run_mix(seed: int, scale: float) -> Tuple[TraceDatabase, int]:
    mix = BenchmarkMix(seed=seed, scale=scale).run()
    return mix.to_database(), len(mix.tracer.events)


def _run_fsstress(seed: int, scale: float) -> Tuple[TraceDatabase, int]:
    """A standalone fsstress run (the mix's heaviest random workload)."""
    from repro.db.importer import import_tracer
    from repro.kernel import reset_id_counters

    reset_id_counters()
    world = VfsWorld(seed=seed)
    world.boot()
    scheduler = Scheduler(world.rt, seed=seed + 1)
    stress = FsStress(world, max(1, int(80 * scale)), seed + 11)
    for name, body in stress.threads():
        scheduler.spawn(name, body)
    scheduler.run()
    tracer = world.rt.tracer
    return import_tracer(tracer, world.rt.structs, build_filter_config()), len(
        tracer.events
    )


WORKLOADS: Dict[str, Callable[[int, float], Tuple[TraceDatabase, int]]] = {
    "mix": _run_mix,
    "fsstress": _run_fsstress,
}


def _best_of(repeat: int, fn: Callable[[], DerivationResult]):
    """(best wall seconds, last result) of *repeat* runs."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_workload(
    name: str, seed: int, scale: float, jobs: int, threshold: float, repeat: int
) -> Tuple[dict, bool]:
    """Benchmark one workload; returns (record, parallel_matches)."""
    t0 = time.perf_counter()
    db, n_events = WORKLOADS[name](seed, scale)
    trace_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    table = ObservationTable.from_database(db)
    import_s = time.perf_counter() - t0

    targets = sum(1 for key in table.keys() if table.sequences(*key))
    derivator = Derivator(threshold)

    baseline_s, baseline = _best_of(
        repeat, lambda: derive_serial_baseline(derivator, table)
    )
    serial_s, serial = _best_of(repeat, lambda: derivator.derive(table))
    parallel_s, parallel = _best_of(
        repeat, lambda: derivator.derive(table, jobs=jobs)
    )

    serial_matches = serial == baseline
    parallel_matches = parallel == serial
    best_engine_s = min(serial_s, parallel_s)
    record = {
        "seed": seed,
        "scale": scale,
        "events": n_events,
        "observations": table.total,
        "targets": targets,
        "trace_s": round(trace_s, 4),
        "import_s": round(import_s, 4),
        "derive_baseline_s": round(baseline_s, 4),
        "derive_serial_s": round(serial_s, 4),
        "derive_parallel_s": round(parallel_s, 4),
        "targets_per_s": round(targets / best_engine_s, 1)
        if best_engine_s
        else None,
        "memo_hit_rate": round(serial.memo_stats.hit_rate, 4),
        "memo_distinct_profiles": serial.memo_stats.misses,
        "speedup_vs_serial": round(baseline_s / best_engine_s, 2)
        if best_engine_s
        else None,
        "speedup_parallel_vs_serial": round(baseline_s / parallel_s, 2)
        if parallel_s
        else None,
        "serial_matches_baseline": serial_matches,
        "parallel_matches_serial": parallel_matches,
    }
    return record, serial_matches and parallel_matches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="time trace -> import -> derive; write BENCH_derive.json"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=18.0)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--threshold", type=float, default=0.9)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--workloads", default="mix,fsstress",
        help="comma-separated subset of: " + ",".join(WORKLOADS),
    )
    parser.add_argument("--out", default="BENCH_derive.json")
    args = parser.parse_args(argv)

    names = [n for n in args.workloads.split(",") if n]
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        print(f"error: unknown workload(s) {unknown}", file=sys.stderr)
        return 2

    report = {
        "schema": SCHEMA,
        "jobs": args.jobs,
        "repeat": args.repeat,
        "python": sys.version.split()[0],
        "workloads": {},
    }
    ok = True
    for name in names:
        record, matches = bench_workload(
            name, args.seed, args.scale, args.jobs, args.threshold, args.repeat
        )
        report["workloads"][name] = record
        ok = ok and matches
        print(
            f"{name}: targets={record['targets']} "
            f"baseline={record['derive_baseline_s']:.3f}s "
            f"serial={record['derive_serial_s']:.3f}s "
            f"parallel(j{args.jobs})={record['derive_parallel_s']:.3f}s "
            f"memo={record['memo_hit_rate']:.0%} "
            f"speedup={record['speedup_vs_serial']}x"
        )

    atomic_write_json(args.out, report)
    print(f"wrote {args.out}")
    if not ok:
        print(
            "error: parallel/memoized derivation diverged from the serial "
            "baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
