"""Fuzzing-campaign benchmark: generations timed, coverage-per-second.

Runs a fixed-seed coverage-guided campaign (``repro.fuzz``) against the
benchmark-mix baseline and reports how fast the corpus buys new
``(struct.member, access, lockset)`` pairs.  Results land in
``BENCH_fuzz.json``::

    PYTHONPATH=src python -m benchmarks.perf.bench_fuzz \
        --generations 3 --population 8 --out BENCH_fuzz.json

Exit status is 1 (and the ``fuzz-smoke`` CI job fails) if the campaign
admits nothing, if per-generation coverage ever decreases, or if the
acceptance-floor growth over the mix baseline is not met.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.atomicio import atomic_write_json

from repro.fuzz.orchestrator import (
    FuzzConfig,
    FuzzOrchestrator,
    baseline_coverage,
    replay_corpus,
)

#: Bump on any change to the JSON layout.
SCHEMA = "lockdoc-bench-fuzz/1"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="run a fixed-seed fuzzing campaign; write BENCH_fuzz.json"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--generations", type=int, default=3)
    parser.add_argument("--population", type=int, default=8)
    parser.add_argument("--baseline-scale", type=float, default=1.0)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument(
        "--min-growth", type=float, default=0.20,
        help="required pair-coverage growth over the mix baseline",
    )
    parser.add_argument("--corpus-out", default=None, metavar="FILE",
                        help="also save the final corpus JSON")
    parser.add_argument("--out", default="BENCH_fuzz.json")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    baseline = baseline_coverage(args.seed, args.baseline_scale)
    baseline_s = time.perf_counter() - t0

    config = FuzzConfig(
        seed=args.seed,
        generations=args.generations,
        population=args.population,
        baseline_scale=args.baseline_scale,
        jobs=args.jobs,
    )
    t0 = time.perf_counter()
    outcome = FuzzOrchestrator(config).run(baseline=baseline)
    campaign_s = time.perf_counter() - t0

    corpus = outcome.corpus
    pair_curve = [r.pair_coverage for r in corpus.records]
    func_curve = [r.function_coverage for r in corpus.records]
    new_pairs = corpus.global_coverage.pair_count - baseline.pair_count
    replay = replay_corpus(corpus)

    report = {
        "schema": SCHEMA,
        "python": sys.version.split()[0],
        "seed": args.seed,
        "generations": args.generations,
        "population": args.population,
        "jobs": args.jobs,
        "corpus_id": corpus.corpus_id,
        "corpus_entries": len(corpus.entries),
        "candidates": sum(r.candidates for r in corpus.records),
        "rejected": corpus.rejected,
        "baseline_pairs": baseline.pair_count,
        "baseline_functions": baseline.function_count,
        "pairs": corpus.global_coverage.pair_count,
        "functions": corpus.global_coverage.function_count,
        "pair_curve": pair_curve,
        "function_curve": func_curve,
        "pair_growth": round(outcome.pair_growth, 4),
        "baseline_s": round(baseline_s, 4),
        "campaign_s": round(campaign_s, 4),
        "generation_wall_s": [round(r.wall_s, 4) for r in corpus.records],
        "new_pairs_per_s": round(new_pairs / campaign_s, 2)
        if campaign_s
        else None,
        "replay_identical": replay.identical,
    }
    atomic_write_json(args.out, report)
    if args.corpus_out:
        corpus.save(args.corpus_out)
        print(f"wrote {args.corpus_out}")

    print(
        f"fuzz: entries={len(corpus.entries)} "
        f"pairs={baseline.pair_count}->{corpus.global_coverage.pair_count} "
        f"(+{outcome.pair_growth:.1%}) "
        f"wall={campaign_s:.2f}s "
        f"new_pairs/s={report['new_pairs_per_s']}"
    )
    print(f"wrote {args.out}")

    errors = []
    if not corpus.entries:
        errors.append("no programs were admitted")
    if pair_curve != sorted(pair_curve) or func_curve != sorted(func_curve):
        errors.append("coverage decreased between generations")
    if outcome.pair_growth < args.min_growth:
        errors.append(
            f"pair growth {outcome.pair_growth:.1%} below the "
            f"{args.min_growth:.0%} floor"
        )
    if not replay.identical:
        errors.append(f"replay diverged on entries {replay.mismatches}")
    for message in errors:
        print(f"error: {message}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
