"""Aggregate every committed ``BENCH_*.json`` into one trajectory table.

Each perf benchmark writes its own gated JSON report at the repo root
(``BENCH_trace.json``, ``BENCH_db.json``, ...).  They accumulate one
per optimisation PR, which makes the *trajectory* — what got faster,
by how much, and whether its correctness gates still hold — hard to
read without opening six files.  This tool renders them as one table::

    PYTHONPATH=src python -m benchmarks.perf.bench_report

One row per report: the benchmark's headline metric(s) and its gate
status.  Missing files are skipped (a fresh checkout may predate some
benchmarks); unreadable ones are reported as such rather than hiding a
regression behind a crash.  Exit status is 1 if any present report
carries failing gates, so CI can chain it after the benchmark jobs.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Callable, Dict, List, Optional

import repro.kernel  # noqa: F401  (must initialize before repro imports)
from repro.core.report import render_table


def _pct(value: Optional[float]) -> str:
    return f"{value:.1%}" if isinstance(value, (int, float)) else "?"


def _x(value: Optional[float]) -> str:
    return f"{value}x" if isinstance(value, (int, float)) else "?"


# Per-report headline extractors: report dict -> one-line summary.
# Every access is defensive (``.get``) — a schema bump in one benchmark
# must not take the whole table down.


def _headline_trace(d: Dict) -> str:
    gen, cache = d.get("generation", {}), d.get("cache", {})
    return (
        f"tracer {_x(gen.get('speedup'))} vs legacy; "
        f"warm derive {_pct(cache.get('warm_fraction'))} of cold"
    )


def _headline_derive(d: Dict) -> str:
    mix = d.get("workloads", {}).get("mix", {})
    return (
        f"memoized derive {_x(mix.get('speedup_vs_serial'))} on mix "
        f"({mix.get('targets', '?')} targets)"
    )


def _headline_static(d: Dict) -> str:
    a = d.get("analysis", {})
    return (
        f"{a.get('functions', '?')} fns checked, precision "
        f"{_pct(a.get('precision'))} recall {_pct(a.get('recall'))}"
    )


def _headline_serve(d: Dict) -> str:
    lat, chaos = d.get("latency", {}), d.get("chaos", {})
    return (
        f"warm request {lat.get('local_warm_s', '?')}s vs cold "
        f"{lat.get('cold_s', '?')}s; chaos survival "
        f"{_pct(chaos.get('survival'))}"
    )


def _headline_db(d: Dict) -> str:
    mem = d.get("memory", {})
    return (
        f"sqlite import peak {_pct(mem.get('peak_ratio'))} of in-memory "
        f"at scale {d.get('big_scale', '?')}"
    )


def _headline_net(d: Dict) -> str:
    return (
        f"mined-rule fidelity {_pct(d.get('fidelity'))} "
        f"({d.get('fidelity_matched', '?')}/{d.get('fidelity_total', '?')}), "
        f"{d.get('violations', '?')} planted violations found"
    )


def _headline_stream(d: Dict) -> str:
    thr, mem = d.get("throughput", {}), d.get("memory", {})
    return (
        f"fused pass {_x(thr.get('speedup'))} vs post-mortem, peak "
        f"{_pct(mem.get('peak_fraction'))} of post-mortem"
    )


_HEADLINES: Dict[str, Callable[[Dict], str]] = {
    "BENCH_trace": _headline_trace,
    "BENCH_derive": _headline_derive,
    "BENCH_static": _headline_static,
    "BENCH_serve": _headline_serve,
    "BENCH_db": _headline_db,
    "BENCH_net": _headline_net,
    "BENCH_stream": _headline_stream,
}


def _gate_status(stem: str, d: Dict) -> str:
    """``pass`` / ``FAIL: ...`` from whatever gate shape the report uses."""
    gates = d.get("gates")
    if isinstance(gates, dict):
        failures = gates.get("failures")
        if isinstance(failures, list):
            return "pass" if not failures else f"FAIL: {failures[0]}"
        # bench_serve-style: a dict of named boolean gates.
        bad = sorted(k for k, v in gates.items() if v is False)
        return "pass" if not bad else f"FAIL: {bad[0]}"
    # Gateless reports carry their correctness bits at the top level.
    if stem == "BENCH_derive":
        ok = all(
            w.get("parallel_matches_serial") and w.get("serial_matches_baseline")
            for w in d.get("workloads", {}).values()
        )
        return "pass" if ok else "FAIL: derivation mismatch"
    if stem == "BENCH_net":
        ok = (
            d.get("backend_parity")
            and d.get("deterministic")
            and not d.get("missing_plants")
        )
        return "pass" if ok else "FAIL: parity/determinism"
    return "(no gates)"


def collect(root: str) -> List[List[str]]:
    """One table row per ``BENCH_*.json`` under *root*."""
    rows: List[List[str]] = []
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        stem = os.path.splitext(os.path.basename(path))[0]
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            rows.append([stem, f"unreadable: {exc}", "FAIL: unreadable"])
            continue
        headline = _HEADLINES.get(stem, lambda d: d.get("schema", "?"))(data)
        rows.append([stem, headline, _gate_status(stem, data)])
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="render all BENCH_*.json reports as one table"
    )
    parser.add_argument(
        "--root", default=".",
        help="directory holding the BENCH_*.json files (repo root)",
    )
    args = parser.parse_args(argv)

    rows = collect(args.root)
    if not rows:
        print(f"no BENCH_*.json reports under {args.root!r}", file=sys.stderr)
        return 1
    print(render_table(
        ["benchmark", "headline", "gates"], rows,
        title=f"performance trajectory ({len(rows)} reports)",
    ))
    return 1 if any(row[2].startswith("FAIL") for row in rows) else 0


if __name__ == "__main__":
    sys.exit(main())
