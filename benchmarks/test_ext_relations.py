"""Extension — object-interrelation analysis (Sec. 8 future work).

Classifies the object relationship behind every mined EO rule:
owner (per-object protector), container (one protector for many
objects — the paper's "lock in the list head" example), or varying
(no stable relation; e.g. foreign-lock neighbour writes).
"""

from benchmarks.conftest import emit
from repro.core.relations import RelationKind, analyze_relations


def test_ext_relations(benchmark, pipeline):
    derivation = pipeline.derive()
    report = benchmark(
        analyze_relations, derivation, pipeline.table, pipeline.db
    )
    emit("Extension — EO-rule object relations", report.render())

    # The ground truth's known relationships classify correctly:
    # one journal protects all journal_head list members (container),
    jh = report.get("journal_head", "b_transaction", "w")
    assert jh is not None and jh.kind == RelationKind.CONTAINER
    # transaction state under the (single) journal's state lock,
    t_state = report.get("transaction_t", "t_state", "w")
    assert t_state is not None and t_state.kind == RelationKind.CONTAINER
    # and stable relations dominate the trace overall.
    stable = len(report.by_kind(RelationKind.OWNER)) + len(
        report.by_kind(RelationKind.CONTAINER)
    )
    assert stable >= len(report.by_kind(RelationKind.VARYING))
    assert report.relations  # EO rules exist to classify
