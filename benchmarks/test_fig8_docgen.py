"""Fig. 8 — generated locking documentation for fs/inode.c."""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.core.docgen import DocOptions, generate_doc
from repro.experiments import fig8


def test_fig8_docgen(benchmark, pipeline):
    result = fig8.run(seed=0, scale=BENCH_SCALE)
    derivation = pipeline.derive()
    benchmark(generate_doc, derivation, "inode:ext4", DocOptions())
    emit("Fig. 8 — generated inode locking documentation", result.render())
    assert result.contains_expected()
    # kernel-comment shape
    assert result.documentation.startswith("/*")
    assert result.documentation.rstrip().endswith("*/")
    # the no-lock paragraph and at least three distinct lock paragraphs
    assert result.documentation.count("protects") >= 3
