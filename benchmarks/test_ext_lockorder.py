"""Extension — lock-order analysis (the lockdep-style companion).

The paper discusses Linux's lockdep (Sec. 3.2) as the in-situ
complement to LockDoc; this extension builds the same acquisition-order
model ex-post from a LockDoc trace.  The simulated kernel's ground
truth is deadlock-free, so the benchmark trace must contain a rich
order graph but no ABBA inversions.
"""

from benchmarks.conftest import emit
from repro.core.lockorder import build_lock_order, format_class


def test_ext_lockorder(benchmark, pipeline):
    report = benchmark(build_lock_order, pipeline.db)
    emit("Extension — lock-order graph", report.render(limit=15))

    assert report.edge_count > 10
    assert report.inversions == []

    # Known orders from the ground truth show up as edges.
    edges = {
        (format_class(before), format_class(after))
        for before, after in report.edges
    }
    assert ("inode_hash_lock", "inode.i_lock") in edges
    assert ("inode.i_rwsem", "inode.i_size_seqcount") in edges
    assert ("journal_head.b_state_lock", "journal_t.j_list_lock") in edges

    # The hand-written LRU paths nest i_lock before the global LRU lock.
    a = ("embedded", "inode", "i_lock")
    lru = ("global", "inode_lru_lock", None)
    assert report.dominant_order(a, lru) == (a, lru)
