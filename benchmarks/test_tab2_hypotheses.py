"""Tab. 2 — hypotheses for writing `minutes` with s_a / s_r.

The headline methodological result: support values match the paper
exactly, LockDoc's selection picks the true rule, the naive strategy
does not.
"""

from benchmarks.conftest import emit
from repro.experiments import tab2


def test_tab2_hypotheses(benchmark):
    result = benchmark(tab2.run)
    emit("Tab. 2 — locking hypotheses for `minutes` writes", result.render())
    got = {
        h.rule.format(): (h.s_a, round(h.s_r * 100, 2)) for h in result.hypotheses
    }
    for rule, s_a, s_r in tab2.PAPER_TAB2:
        assert got[rule] == (s_a, s_r), rule
    assert result.selection.winner.rule.format() == (
        "ES(sec_lock in clock) -> ES(min_lock in clock)"
    )
    # The naive strategy's 100%-support tie (no-lock vs plain sec_lock)
    # breaks towards fewer locks, so it picks the *most* under-specified
    # rule — still wrong, which is the point of Tab. 2.
    assert result.naive.rule.format() == "no lock needed"
    assert result.naive.s_r == 1.0
