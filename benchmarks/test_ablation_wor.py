"""Ablation — write-over-read folding on vs. off.

The WoR heuristic (Tab. 1) exists because a transaction mixing reads
and writes of one member was locked for the (stricter) write; counting
the reads too would credit the write locks to read rules.  Disabling it
must therefore *inflate* read observations under write locks and make
lock-carrying read rules win where "no lock" (or a weaker lock) is the
calibrated truth.
"""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.core.report import render_table


def test_ablation_write_over_read(benchmark, pipeline):
    with_wor = pipeline.table
    without_wor = benchmark(
        ObservationTable.from_database, pipeline.db, True, False
    )

    d_with = Derivator().derive(with_wor)
    d_without = Derivator().derive(without_wor)

    changed = []
    for type_key, member, access in d_with.keys():
        if access != "r":
            continue
        a = d_with.get(type_key, member, access)
        b = d_without.get(type_key, member, access)
        if b is not None and a.rule != b.rule:
            changed.append([f"{type_key}.{member}", a.rule.format(), b.rule.format()])

    emit(
        "Ablation — write-over-read",
        render_table(["member", "with WoR", "without WoR"], changed[:20],
                     title=f"{len(changed)} read rules change without WoR"),
    )

    # Without WoR, read-observation counts can only grow.
    assert without_wor.total >= with_wor.total
    grew = sum(
        1
        for (tk, m, at) in d_with.keys()
        if at == "r"
        and without_wor.observation_count(tk, m, at)
        > with_wor.observation_count(tk, m, at)
    )
    assert grew > 10  # mixed transactions are common
