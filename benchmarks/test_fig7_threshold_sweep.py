"""Fig. 7 — fraction of "no lock" winners vs. the accept threshold."""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.experiments import fig7


def test_fig7_threshold_sweep(benchmark, pipeline):
    result = fig7.run(seed=0, scale=BENCH_SCALE)

    def sweep_once():
        # one full re-derivation at a non-default threshold (uncached)
        from repro.core.derivator import Derivator

        return Derivator(accept_threshold=0.8).derive(pipeline.table)

    benchmark(sweep_once)
    emit("Fig. 7 — 'no lock' winners vs t_ac", result.render())

    # weakly monotonic growth with t_ac for every series
    for (type_key, access), points in result.series.items():
        values = [f for _, f in points if f is not None]
        for earlier, later in zip(values, values[1:]):
            assert later >= earlier - 1e-9, (type_key, access)

    # fractions level off below 100 % for several types
    finals = [
        pts[-1][1] for pts in result.series.values() if pts[-1][1] is not None
    ]
    assert sum(1 for f in finals if f < 1.0) >= 5
