"""Extension — the SQL backend (the paper's MariaDB pipeline).

Exports the Fig. 6 schema to SQLite and runs the paper's
"parametrizable SQL statement" violation query, cross-validating it
against the Python-side rule-violation finder.
"""

from benchmarks.conftest import emit
from repro.core.report import render_table
from repro.core.violations import ViolationFinder
from repro.db.sqlbackend import export_sqlite, find_violations_sql, table_counts


def test_ext_sql_backend(benchmark, pipeline):
    connection = benchmark(export_sqlite, pipeline.db)
    counts = table_counts(connection)
    emit(
        "Extension — SQLite export (Fig. 6 schema)",
        render_table(["table", "rows"], sorted(counts.items())),
    )
    assert counts["accesses"] == len(pipeline.db.accesses)
    assert counts["txns"] == len(pipeline.db.txns)
    assert counts["subclasses"] >= 11

    # Cross-validate the SQL violation query against the Python finder
    # for the buffer_head b_state write rule.
    derivation = pipeline.derive()
    target = derivation.get("buffer_head", "b_state", "w")
    sql_hits = find_violations_sql(
        connection, "buffer_head", "b_state", "w", target.rule.locks
    )
    # The Python finder reports all rows of a violating folded
    # observation — including reads a write-over-read group absorbed
    # (Tab. 1 semantics); the SQL pass counts raw write rows only.  The
    # write rows must agree exactly.
    from repro.core.rules import complies

    violating_obs = [
        obs
        for obs in pipeline.table.get("buffer_head", "b_state", "w")
        if not complies(obs.lockseq, target.rule)
    ]
    python_write_rows = sum(
        1
        for obs in violating_obs
        for access in obs.accesses
        if access.access_type == "w"
    )
    python_all_rows = sum(len(obs.accesses) for obs in violating_obs)
    assert python_write_rows > 0
    assert len(sql_hits) == python_write_rows
    # sanity: the Python finder's event count covers at least those rows
    finder_events = sum(
        v.events
        for v in ViolationFinder(derivation, pipeline.table).find()
        if v.type_key == "buffer_head" and v.member == "b_state"
        and v.access_type == "w"
    )
    assert finder_events == python_all_rows
