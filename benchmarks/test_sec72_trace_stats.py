"""Sec. 7.2 — tracing and post-processing statistics.

Also benchmarks the two heavy pipeline stages themselves: running the
benchmark mix (the paper's 34-minute monitoring phase) and importing
the trace into the database (the paper's 8-minute import).
"""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.db.importer import import_tracer
from repro.experiments import stats
from repro.kernel.vfs.groundtruth import build_filter_config
from repro.workloads.mix import BenchmarkMix


def test_sec72_trace_stats(benchmark, pipeline):
    result = stats.run(seed=0, scale=BENCH_SCALE)
    emit("Sec. 7.2 — trace statistics", result.render())

    benchmark(
        lambda: import_tracer(
            pipeline.mix.tracer, pipeline.mix.world.rt.structs, build_filter_config()
        )
    )

    # proportions that must match the paper's run
    assert result.trace["accesses"] > result.trace["lock_ops"]
    assert result.db["embedded_locks"] > result.db["static_locks"] * 50
    assert result.db["kept_accesses"] < result.db["accesses"]
    assert result.trace["allocs"] >= result.trace["frees"]


def test_monitoring_phase_runtime(benchmark):
    """The monitoring phase itself (small scale, fresh run each round)."""
    benchmark(lambda: BenchmarkMix(seed=1, scale=0.5).run())
