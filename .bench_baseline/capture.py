import hashlib, json, sys, time
sys.path.insert(0, "src")
from repro.kernel import reset_id_counters
from repro.tracing import serialize
from repro.kernel.sched import Scheduler
from repro.kernel.vfs.fs import VfsWorld
from repro.workloads.fsstress import FsStress
from repro.workloads.mix import BenchmarkMix
from repro.workloads.racer import run_racer

def run_fsstress(seed, scale):
    reset_id_counters()
    world = VfsWorld(seed=seed)
    world.boot()
    scheduler = Scheduler(world.rt, seed=seed + 1)
    stress = FsStress(world, max(1, int(80 * scale)), seed + 11)
    for name, body in stress.threads():
        scheduler.spawn(name, body)
    scheduler.run()
    return world.rt.tracer

out = {}
for scale in (4.0, 18.0):
    for name, fn in (
        ("mix", lambda: BenchmarkMix(seed=0, scale=scale).run().tracer),
        ("fsstress", lambda: run_fsstress(0, scale)),
        ("racer", lambda: run_racer(0, scale).tracer),
    ):
        t0 = time.perf_counter()
        tracer = fn()
        dt = time.perf_counter() - t0
        blob = serialize.dumps_binary(tracer)
        key = f"{name}-s{scale:g}"
        with open(f".bench_baseline/{key}.bin", "wb") as fp:
            fp.write(blob)
        out[key] = {
            "sha256": hashlib.sha256(blob).hexdigest(),
            "events": len(tracer.events),
            "gen_s": round(dt, 4),
        }
        print(key, out[key])
with open(".bench_baseline/manifest.json", "w") as fp:
    json.dump(out, fp, indent=2, sort_keys=True)
