"""Worker-process unit tests: outcomes, crash and deadline classification.

Uses the ``health`` operation throughout — the one daemon op that does
not touch the pipeline cache, so these tests stay fast and isolated.
"""

import pytest

from repro.faults.daemon import CHAOS_EXIT, ChaosPlan
from repro.serve.pool import TaskOutcome, run_task_sync, worker_env_note
from repro.serve.protocol import (
    E_BAD_REQUEST,
    E_DEADLINE,
    E_WORKER_CRASH,
)


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    from repro.tracing import serialize
    from repro.workloads.racer import run_racer

    path = tmp_path_factory.mktemp("pool") / "racer.bin"
    with open(path, "wb") as fp:
        serialize.dump_binary(run_racer(seed=0, scale=0.5).tracer, fp)
    return str(path)


def _health_params(trace_file):
    return {"trace": trace_file, "registry": "racer"}


class TestOutcomes:
    def test_ok(self, trace_file):
        outcome = run_task_sync("health", _health_params(trace_file))
        assert outcome.status == "ok"
        assert outcome.result["exit_code"] == 0
        assert "trace health" in outcome.result["text"]

    def test_bad_request_classified(self):
        outcome = run_task_sync("health", {"trace": "/nope/missing.bin"})
        assert outcome.status == "error"
        assert outcome.error_kind == E_BAD_REQUEST

    def test_unknown_op_classified(self):
        outcome = run_task_sync("frobnicate", {})
        assert outcome.status == "error"
        assert outcome.error_kind == E_BAD_REQUEST
        assert "unknown operation" in outcome.error_message


class TestCrash:
    def test_chaos_crash_detected_via_pipe_eof(self, trace_file):
        chaos = ChaosPlan.from_spec("crash:1.0", seed=0)
        outcome = run_task_sync(
            "health", _health_params(trace_file), chaos=chaos
        )
        assert outcome.status == "crash"
        assert outcome.exitcode == CHAOS_EXIT
        kind, message = outcome.as_error()
        assert kind == E_WORKER_CRASH
        assert str(CHAOS_EXIT) in message

    def test_crash_rate_zero_is_a_noop(self, trace_file):
        chaos = ChaosPlan.from_spec("crash:0.0", seed=0)
        outcome = run_task_sync(
            "health", _health_params(trace_file), chaos=chaos
        )
        assert outcome.status == "ok"


class TestDeadline:
    def test_stalled_worker_is_killed_at_deadline(self, trace_file):
        chaos = ChaosPlan.from_spec("stall:30.0", seed=0)
        outcome = run_task_sync(
            "health", _health_params(trace_file), timeout=0.3, chaos=chaos
        )
        assert outcome.status == "deadline"
        assert outcome.elapsed < 5.0  # killed, not waited out
        kind, _ = outcome.as_error()
        assert kind == E_DEADLINE


def test_as_error_passthrough():
    outcome = TaskOutcome(
        status="error", error_kind=E_BAD_REQUEST, error_message="nope"
    )
    assert outcome.as_error() == (E_BAD_REQUEST, "nope")


def test_worker_env_note_is_json_able():
    import json

    json.dumps(worker_env_note())
