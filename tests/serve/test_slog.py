"""Structured-log unit tests: emit, torn-tail tolerance, fail-silence."""

import json

from repro.serve.slog import StructuredLog, read_events


class TestStructuredLog:
    def test_emits_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = StructuredLog(path)
        log.emit("start", workers=4)
        log.emit("request", op="derive")
        log.close()
        events = read_events(path)
        assert [e["event"] for e in events] == ["start", "request"]
        assert events[0]["workers"] == 4
        assert all("ts" in e for e in events)

    def test_none_path_disables_logging(self):
        log = StructuredLog(None)
        log.emit("start")  # must not raise
        log.close()

    def test_unwritable_path_is_fail_silent(self):
        log = StructuredLog("/proc/definitely/not/writable/log.jsonl")
        log.emit("start")  # must not raise
        log.close()

    def test_emit_survives_unserializable_fields(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = StructuredLog(path)
        log.emit("weird", payload=object())  # default=str kicks in
        log.close()
        assert read_events(path)[0]["event"] == "weird"


class TestReadEvents:
    def test_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            json.dumps({"event": "ok"}) + "\n" + '{"event": "torn'
        )
        events = read_events(path)
        assert [e["event"] for e in events] == ["ok"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []

    def test_skips_non_object_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('[1, 2]\n{"event": "real"}\n\n')
        assert [e["event"] for e in read_events(path)] == ["real"]
