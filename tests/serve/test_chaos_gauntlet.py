"""Chaos gauntlet (small scale): every request terminates classified.

The acceptance bar for the daemon: under worker crashes, stalls with
deadlines, cache truncation and flooding, 100% of requests end in a
correct result or a clean, classified error — never a hang, a
traceback, or a silently-wrong artifact.  The full-size version runs in
``benchmarks/perf/bench_serve.py``; this is the regression-speed cut.
"""

import json

import pytest

from repro.serve.client import RemoteError
from repro.serve.protocol import ERROR_KINDS

from tests.serve.test_server_e2e import Daemon, trace_file  # noqa: F401


@pytest.fixture(scope="module")
def chaotic_daemon():
    daemon = Daemon(extra_args=[
        "--chaos", "crash:0.4,stall-sometimes:0.4",
        "--chaos-seed", "7",
        "--rate", "20", "--burst", "10",
    ])
    yield daemon
    daemon.close()


def test_gauntlet_all_requests_classified(chaotic_daemon, trace_file):  # noqa: F811
    outcomes = []
    for i in range(14):
        client = chaotic_daemon.client(client_id=f"g{i}")
        try:
            response = client.request(
                "health",
                {"trace": trace_file, "registry": "racer",
                 "diagnostics": 10 + i},  # distinct keys: no coalescing
                deadline=30.0,
            )
            assert response.result["exit_code"] == 0
            assert "trace health" in response.result["text"]
            outcomes.append("ok")
        except RemoteError as exc:
            assert exc.kind in ERROR_KINDS
            outcomes.append(exc.kind)
    # Terminate classified, all of them; chaos at these rates must
    # actually bite at least once and let at least one through.
    assert len(outcomes) == 14
    assert "ok" in outcomes, outcomes


def test_gauntlet_survives_truncated_cache_entry(trace_file):  # noqa: F811
    """Torn cache entries are quarantined at startup, then recomputed."""
    import pathlib

    first = Daemon()
    try:
        params = {"scale": 1.22}
        warm = first.client().request("derive", params, deadline=120)
        cache_dir = pathlib.Path(first.cache_dir)
        traces = list(cache_dir.glob("*.trace.bin"))
        assert traces, "derive should have populated the trace cache"
        for trace in traces:
            trace.write_bytes(trace.read_bytes()[:-64])  # torn write
    finally:
        first.close()

    # Same dirs, fresh daemon: the sweep must quarantine the torn
    # entries, and the re-request must recompute — same answer.
    rebuilt = Daemon(serve_dir=first.serve_dir, cache_dir=first.cache_dir)
    try:
        # Both daemons appended to the same log: the rebuilt daemon's
        # startup is the *last* start event.
        events = rebuilt.events()
        start = [e for e in events if e["event"] == "start"][-1]
        assert start["sweep"]["quarantined"], json.dumps(start["sweep"])
        recomputed = rebuilt.client().request(
            "derive", {"scale": 1.22}, deadline=120
        )
        assert recomputed.result == warm.result
    finally:
        rebuilt.close()
