"""End-to-end daemon tests over a real unix socket.

Each fixture daemon is a genuine ``lockdoc serve run`` subprocess with
private cache + runtime directories (short paths under /tmp — unix
socket paths are capped at ~108 chars).  The ``health`` op keeps
requests fast; ``derive`` at a tiny scale exercises the cold/warm/
coalesced paths.
"""

import json
import os
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.serve.client import RemoteClient, RemoteError
from repro.serve.protocol import (
    E_BAD_REQUEST,
    E_DEADLINE,
    E_RETRY_AFTER,
    E_WORKER_CRASH,
)
from repro.serve.slog import read_events

_REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


class Daemon:
    """One `lockdoc serve run` subprocess plus its runtime dirs."""

    def __init__(self, extra_args=(), serve_dir=None, cache_dir=None):
        self.serve_dir = serve_dir or tempfile.mkdtemp(prefix="sd", dir="/tmp")
        self.cache_dir = cache_dir or tempfile.mkdtemp(prefix="sc", dir="/tmp")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(_REPO, "src")
        env["LOCKDOC_SERVE_DIR"] = self.serve_dir
        env["LOCKDOC_CACHE_DIR"] = self.cache_dir
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "run",
             "--workers", "2", *extra_args],
            env=env, cwd=_REPO,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        self.socket_path = os.path.join(self.serve_dir, "serve.sock")
        self.log_path = os.path.join(self.serve_dir, "serve.log.jsonl")
        probe = self.client(attempts=1)
        deadline = time.monotonic() + 30.0
        while not probe.ping():
            if self.process.poll() is not None or time.monotonic() > deadline:
                raise RuntimeError(
                    "daemon did not come up: "
                    + self.process.stderr.read().decode(errors="replace")
                )
            time.sleep(0.1)

    def client(self, **kwargs):
        kwargs.setdefault("attempts", 1)
        return RemoteClient(socket_path=self.socket_path, **kwargs)

    def events(self):
        return read_events(self.log_path)

    def close(self):
        if self.process.poll() is None:
            if not self.client().shutdown():
                self.process.terminate()
            try:
                self.process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=5)
        self.process.stdout.close()
        self.process.stderr.close()


@pytest.fixture(scope="module")
def daemon():
    d = Daemon()
    yield d
    d.close()


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    from repro.tracing import serialize
    from repro.workloads.racer import run_racer

    path = tmp_path_factory.mktemp("e2e") / "racer.bin"
    with open(path, "wb") as fp:
        serialize.dump_binary(run_racer(seed=0, scale=0.5).tracer, fp)
    return str(path)


class TestEnvelope:
    def test_ping_and_status(self, daemon):
        client = daemon.client()
        assert client.ping()
        status = client.status()
        assert status["workers"] == 2
        assert "derive" in status["operations"]
        assert status["counters"]["received"] >= 1

    def test_health_request(self, daemon, trace_file):
        response = daemon.client().request(
            "health", {"trace": trace_file, "registry": "racer"}
        )
        assert response.result["exit_code"] == 0
        assert "trace health" in response.result["text"]

    def test_bad_request_classified(self, daemon):
        with pytest.raises(RemoteError) as info:
            daemon.client().request("derive", {"bogus": 1})
        assert info.value.kind == E_BAD_REQUEST
        assert "bogus" in info.value.message

    def test_unknown_op_classified(self, daemon):
        with pytest.raises(RemoteError) as info:
            daemon.client().request("frobnicate", {})
        assert info.value.kind == E_BAD_REQUEST

    def test_deadline_kills_cold_derive(self, daemon):
        with pytest.raises(RemoteError) as info:
            daemon.client().request(
                "derive", {"scale": 1.31}, deadline=0.05
            )
        assert info.value.kind == E_DEADLINE

    def test_cold_warm_and_coalesced_derive(self, daemon):
        client = daemon.client()
        params = {"scale": 1.25}
        results = [None, None]

        def call(i):
            results[i] = client.request("derive", params, deadline=120)

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results[0].result == results[1].result
        coalesced = [r.meta.get("coalesced") for r in results]
        assert sorted(coalesced) == [False, True]
        # Warm repeat: served from the daemon-owned cache, fast.
        t0 = time.monotonic()
        warm = client.request("derive", params, deadline=120)
        assert warm.result == results[0].result
        assert time.monotonic() - t0 < 5.0

    def test_structured_log_accounts_for_requests(self, daemon):
        events = daemon.events()
        kinds = {e["event"] for e in events}
        assert "start" in kinds
        assert "request" in kinds and "reply" in kinds
        replies = [e for e in events if e["event"] == "reply"]
        assert all(r["status"] in ("ok", "error") for r in replies)


class TestBudgetsAndShedding:
    def test_flood_is_shed_with_retry_hint(self, trace_file):
        daemon = Daemon(extra_args=["--rate", "0.5", "--burst", "2"])
        try:
            client = daemon.client(client_id="flooder")
            outcomes = []
            for i in range(8):
                params = {"trace": trace_file, "registry": "racer",
                          "diagnostics": 10 + i}  # distinct: no coalescing
                try:
                    outcomes.append(client.request("health", params).status)
                except RemoteError as exc:
                    outcomes.append(exc.kind)
                    assert exc.retry_after is not None
                    assert exc.retry_after > 0
            assert "ok" in outcomes
            assert E_RETRY_AFTER in outcomes
            # A different client has its own bucket: not locked out.
            other = daemon.client(client_id="other")
            params = {"trace": trace_file, "registry": "racer"}
            assert other.request("health", params).status == "ok"
        finally:
            daemon.close()


class TestCrashRecovery:
    def test_crash_rate_one_exhausts_bounded_retry(self, trace_file):
        daemon = Daemon(extra_args=["--chaos", "crash:1.0"])
        try:
            with pytest.raises(RemoteError) as info:
                daemon.client().request(
                    "health", {"trace": trace_file, "registry": "racer"}
                )
            assert info.value.kind == E_WORKER_CRASH
            events = daemon.events()
            crashes = [e for e in events if e["event"] == "worker_crash"]
            # First attempt crashes (will_retry), bounded re-execution
            # crashes again (gives up) — exactly two, never more.
            assert len(crashes) == 2
            reply = [e for e in events if e["event"] == "reply"][-1]
            assert reply["attempts"] == 2
        finally:
            daemon.close()

    def test_crash_then_retry_succeeds(self, trace_file):
        from repro.faults.daemon import ChaosPlan
        from repro.serve import ops
        from repro.serve.protocol import request_key

        # Deterministic chaos: scan for a seed where this exact request
        # crashes on attempt 0 but survives the bounded re-execution.
        params = {"trace": trace_file, "registry": "racer"}
        key = request_key("health", ops.validate("health", params))
        chaos_seed = next(
            seed for seed in range(1000)
            if ChaosPlan.from_spec("crash:0.6", seed=seed).decisions(key, 0)
            and not ChaosPlan.from_spec("crash:0.6", seed=seed).decisions(key, 1)
        )
        daemon = Daemon(extra_args=[
            "--chaos", "crash:0.6", "--chaos-seed", str(chaos_seed),
        ])
        try:
            response = daemon.client().request("health", params)
            assert response.result["exit_code"] == 0
            assert response.meta["attempts"] == 2
        finally:
            daemon.close()


class TestLifecycle:
    def test_status_and_stop_via_cli(self):
        daemon = Daemon()
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(_REPO, "src")
        env["LOCKDOC_SERVE_DIR"] = daemon.serve_dir
        env["LOCKDOC_CACHE_DIR"] = daemon.cache_dir
        try:
            status = subprocess.run(
                [sys.executable, "-m", "repro.cli", "serve", "status",
                 "--json"],
                env=env, cwd=_REPO, capture_output=True, text=True,
            )
            assert status.returncode == 0
            payload = json.loads(status.stdout)
            assert payload["running"] is True
            stop = subprocess.run(
                [sys.executable, "-m", "repro.cli", "serve", "stop"],
                env=env, cwd=_REPO, capture_output=True, text=True,
            )
            assert stop.returncode == 0
            assert "daemon stopped" in stop.stdout
            daemon.process.wait(timeout=10)
            assert daemon.process.returncode == 0
            # Socket and pidfile are gone: status now reports down.
            after = subprocess.run(
                [sys.executable, "-m", "repro.cli", "serve", "status"],
                env=env, cwd=_REPO, capture_output=True, text=True,
            )
            assert after.returncode == 2
            assert "not running" in after.stdout
        finally:
            daemon.close()

    def test_second_daemon_refuses_live_socket(self):
        daemon = Daemon()
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(_REPO, "src")
        env["LOCKDOC_SERVE_DIR"] = daemon.serve_dir
        env["LOCKDOC_CACHE_DIR"] = daemon.cache_dir
        try:
            second = subprocess.run(
                [sys.executable, "-m", "repro.cli", "serve", "run"],
                env=env, cwd=_REPO, capture_output=True, text=True,
                timeout=30,
            )
            assert second.returncode == 2
            assert "already serving" in second.stderr
        finally:
            daemon.close()
