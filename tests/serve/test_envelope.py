"""Deadline / token-bucket / admission unit tests (injected clocks)."""

import pytest

from repro.serve.envelope import Admission, ClientBudgets, Deadline, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_counts_down(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        assert deadline.remaining() == pytest.approx(10.0)
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(6.0)
        assert not deadline.expired()
        clock.advance(7.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired()

    def test_unbounded(self):
        deadline = Deadline(None, clock=FakeClock())
        assert deadline.remaining() is None
        assert not deadline.expired()


class TestTokenBucket:
    def test_burst_then_deny_with_hint(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_take()[0] for _ in range(3)] == [True] * 3
        granted, retry_after = bucket.try_take()
        assert not granted
        # Empty bucket at 2 tokens/s: next token in 0.5 s.
        assert retry_after == pytest.approx(0.5)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_take(), bucket.try_take()
        assert not bucket.try_take()[0]
        clock.advance(0.5)  # one token accrues
        assert bucket.try_take()[0]
        assert not bucket.try_take()[0]

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        grants = sum(bucket.try_take()[0] for _ in range(5))
        assert grants == 2

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=2.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestClientBudgets:
    def test_clients_are_isolated(self):
        clock = FakeClock()
        budgets = ClientBudgets(rate=1.0, burst=1.0, clock=clock)
        assert budgets.try_take("a")[0]
        assert not budgets.try_take("a")[0]
        assert budgets.try_take("b")[0]  # b has its own bucket

    def test_lru_eviction_bounds_the_table(self):
        clock = FakeClock()
        budgets = ClientBudgets(rate=1.0, burst=1.0, clock=clock)
        for i in range(ClientBudgets.MAX_CLIENTS + 50):
            budgets.try_take(f"client-{i}")
        assert len(budgets._buckets) <= ClientBudgets.MAX_CLIENTS

    def test_eviction_is_least_recently_seen(self):
        clock = FakeClock()
        budgets = ClientBudgets(rate=1.0, burst=5.0, clock=clock)
        for i in range(ClientBudgets.MAX_CLIENTS):
            budgets.try_take(f"client-{i}")
        budgets.try_take("client-0")  # refresh: now most recent
        budgets.try_take("newcomer")  # evicts client-1, not client-0
        assert "client-0" in budgets._buckets
        assert "client-1" not in budgets._buckets


class TestAdmission:
    def test_sheds_beyond_limit(self):
        admission = Admission(limit=2)
        assert admission.try_enter()
        assert admission.try_enter()
        assert not admission.try_enter()
        assert admission.shed == 1
        admission.leave()
        assert admission.try_enter()

    def test_leave_never_goes_negative(self):
        admission = Admission(limit=1)
        admission.leave()
        assert admission.active == 0

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            Admission(limit=0)
