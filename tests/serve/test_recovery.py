"""Startup-sweep unit tests: quarantine torn entries, keep sound ones."""

import json
import pickle

from repro import cache
from repro.serve.recovery import sweep

_MAGIC = b"LDOC1\n"


def _write_entry(directory, key, payload=b"\x00" * 64):
    """One sound cache entry: magic-prefixed trace + matching sidecar."""
    trace = directory / f"{key}.trace.bin"
    trace.write_bytes(_MAGIC + payload)
    meta = directory / f"{key}.meta.json"
    meta.write_text(json.dumps({"bytes": trace.stat().st_size}))
    return trace, meta


class TestSweepSoundEntries:
    def test_clean_cache_untouched(self, tmp_path):
        _write_entry(tmp_path, "aaa")
        artifact = tmp_path / "aaa.r1.table.pkl"
        artifact.write_bytes(pickle.dumps({"x": 1}))
        report = sweep(tmp_path)
        assert report.quarantined == []
        assert report.scanned == 3  # meta + trace + pkl
        assert report.ok == 3
        assert artifact.exists()

    def test_empty_directory(self, tmp_path):
        report = sweep(tmp_path / "missing")
        assert report.scanned == 0


class TestSweepTornEntries:
    def test_truncated_trace_quarantined(self, tmp_path):
        trace, _ = _write_entry(tmp_path, "bbb")
        trace.write_bytes(trace.read_bytes()[:-10])  # torn write
        report = sweep(tmp_path)
        assert [name for name, _ in report.quarantined] == ["bbb.trace.bin"]
        assert "truncated" in report.quarantined[0][1]
        assert not trace.exists()
        quarantined = trace.with_name(trace.name + cache.QUARANTINE_SUFFIX)
        assert quarantined.exists()

    def test_missing_magic_quarantined(self, tmp_path):
        trace = tmp_path / "ccc.trace.bin"
        trace.write_bytes(b"garbage bytes")
        (tmp_path / "ccc.meta.json").write_text(
            json.dumps({"bytes": trace.stat().st_size})
        )
        report = sweep(tmp_path)
        assert ("ccc.trace.bin", "missing binary trace magic") in report.quarantined

    def test_torn_meta_quarantined(self, tmp_path):
        trace, meta = _write_entry(tmp_path, "ddd")
        meta.write_text('{"bytes": 12')  # torn JSON
        report = sweep(tmp_path)
        names = [name for name, _ in report.quarantined]
        # The torn sidecar goes, and the trace it vouched for follows.
        assert "ddd.meta.json" in names
        assert "ddd.trace.bin" in names

    def test_truncated_pickle_quarantined(self, tmp_path):
        artifact = tmp_path / "eee.r1.table.pkl"
        artifact.write_bytes(pickle.dumps({"x": 1})[:-1])  # loses STOP
        report = sweep(tmp_path)
        assert ("eee.r1.table.pkl",
                "missing pickle STOP opcode (truncated)") in report.quarantined

    def test_empty_pickle_quarantined(self, tmp_path):
        (tmp_path / "fff.r1.t.pkl").write_bytes(b"")
        report = sweep(tmp_path)
        assert ("fff.r1.t.pkl", "empty artifact") in report.quarantined

    def test_orphan_tmp_files_deleted(self, tmp_path):
        orphan = tmp_path / "ggg.trace.bin.k3j2.tmp"
        orphan.write_bytes(b"half-written spool")
        report = sweep(tmp_path)
        assert report.tmp_removed == 1
        assert not orphan.exists()


class TestQuarantineIsInvisible:
    def test_quarantined_entries_escape_every_lookup(self, tmp_path):
        trace, _ = _write_entry(tmp_path, "hhh")
        trace.write_bytes(trace.read_bytes()[:-5])
        sweep(tmp_path)
        # The lookup globs the cache uses must not see the renamed file.
        assert list(tmp_path.glob("*.trace.bin")) == []
        assert list(tmp_path.glob("hhh.*")) != []  # still on disk

    def test_report_serializes(self, tmp_path):
        trace, _ = _write_entry(tmp_path, "iii")
        trace.write_bytes(b"junk")
        payload = sweep(tmp_path).to_json_dict()
        assert payload["scanned"] >= 1
        assert isinstance(payload["quarantined"], list)
        json.dumps(payload)  # JSON-able for the structured log
