"""Wire-envelope unit tests: canonical keys, roundtrips, rejection."""

import json

import pytest

from repro.serve.protocol import (
    ERROR_KINDS,
    E_BAD_REQUEST,
    E_RETRY_AFTER,
    E_SHUTTING_DOWN,
    E_WORKER_CRASH,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    Response,
    RETRYABLE_KINDS,
    request_key,
)


class TestRequestKey:
    def test_param_order_is_canonical(self):
        a = request_key("derive", {"seed": 0, "scale": 2.0})
        b = request_key("derive", {"scale": 2.0, "seed": 0})
        assert a == b

    def test_distinct_params_distinct_keys(self):
        assert request_key("derive", {"seed": 0}) != request_key(
            "derive", {"seed": 1}
        )

    def test_op_is_part_of_the_key(self):
        assert request_key("derive", {}) != request_key("check", {})


class TestRequestWire:
    def test_roundtrip(self):
        req = Request(
            op="derive", params={"seed": 3}, request_id="abc",
            client="cli-1", deadline=12.5,
        )
        back = Request.from_wire(req.to_wire())
        assert back == req

    def test_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="unparseable"):
            Request.from_wire(b"not json\n")

    def test_rejects_wrong_version(self):
        line = json.dumps({"v": PROTOCOL_VERSION + 1, "op": "x"}).encode()
        with pytest.raises(ProtocolError, match="version"):
            Request.from_wire(line)

    def test_rejects_missing_op(self):
        line = json.dumps({"v": PROTOCOL_VERSION}).encode()
        with pytest.raises(ProtocolError, match="no op"):
            Request.from_wire(line)

    def test_rejects_non_positive_deadline(self):
        line = json.dumps(
            {"v": PROTOCOL_VERSION, "op": "ping", "deadline": 0}
        ).encode()
        with pytest.raises(ProtocolError, match="positive"):
            Request.from_wire(line)

    def test_rejects_non_object_params(self):
        line = json.dumps(
            {"v": PROTOCOL_VERSION, "op": "ping", "params": [1]}
        ).encode()
        with pytest.raises(ProtocolError, match="params"):
            Request.from_wire(line)


class TestResponseWire:
    def test_ok_roundtrip(self):
        resp = Response.ok("id1", {"text": "t", "exit_code": 0}, coalesced=True)
        back = Response.from_wire(resp.to_wire())
        assert back.status == "ok"
        assert back.result == {"text": "t", "exit_code": 0}
        assert back.meta == {"coalesced": True}

    def test_error_roundtrip(self):
        resp = Response.error("id2", E_RETRY_AFTER, "busy", retry_after=1.5)
        back = Response.from_wire(resp.to_wire())
        assert back.status == "error"
        assert back.error_kind == E_RETRY_AFTER
        assert back.error_message == "busy"
        assert back.retry_after == 1.5

    def test_rejects_unknown_kind(self):
        line = json.dumps({
            "v": PROTOCOL_VERSION, "id": "x", "status": "error",
            "error": {"kind": "NOPE", "message": "?"},
        }).encode()
        with pytest.raises(ProtocolError, match="unknown error kind"):
            Response.from_wire(line)

    def test_rejects_ok_without_result(self):
        line = json.dumps(
            {"v": PROTOCOL_VERSION, "id": "x", "status": "ok"}
        ).encode()
        with pytest.raises(ProtocolError, match="no result"):
            Response.from_wire(line)


class TestClassification:
    def test_retryable_is_subset_of_kinds(self):
        assert RETRYABLE_KINDS <= ERROR_KINDS

    def test_worker_crash_not_client_retryable(self):
        # The server already re-executed the request (bounded); a client
        # retry on top would multiply the damage.
        assert E_WORKER_CRASH not in RETRYABLE_KINDS
        assert E_BAD_REQUEST not in RETRYABLE_KINDS
        assert E_SHUTTING_DOWN in RETRYABLE_KINDS
