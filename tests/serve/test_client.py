"""Client retry-policy unit tests against a scripted fake daemon."""

import random
import socketserver
import tempfile
import threading
from pathlib import Path

import pytest

from repro.serve.client import DaemonUnreachable, RemoteClient, RemoteError
from repro.serve.protocol import (
    E_BAD_REQUEST,
    E_RETRY_AFTER,
    E_WORKER_CRASH,
    Request,
    Response,
)


class FakeDaemon:
    """Answers each connection with the next scripted response."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.requests = []
        self._dir = tempfile.TemporaryDirectory(prefix="fsrv", dir="/tmp")
        self.socket_path = Path(self._dir.name) / "s.sock"
        outer = self

        class Handler(socketserver.BaseRequestHandler):
            def handle(self):
                line = self.request.makefile("rb").readline()
                outer.requests.append(Request.from_wire(line))
                if not outer.responses:
                    return  # close without replying
                response = outer.responses.pop(0)
                if response is not None:
                    self.request.sendall(response.to_wire())

        class Server(socketserver.ThreadingUnixStreamServer):
            daemon_threads = True

        self.server = Server(str(self.socket_path), Handler)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self._dir.cleanup()


@pytest.fixture
def fake(request):
    daemons = []

    def make(responses):
        daemon = FakeDaemon(responses)
        daemons.append(daemon)
        return daemon

    yield make
    for daemon in daemons:
        daemon.close()


def _client(daemon, **kwargs):
    kwargs.setdefault("rng", random.Random(0))
    kwargs.setdefault("sleep", lambda s: None)
    return RemoteClient(socket_path=daemon.socket_path, **kwargs)


def _ok(result=None):
    return Response.ok("x", result if result is not None else {"pong": True})


class TestHappyPath:
    def test_ok_response_returned(self, fake):
        daemon = fake([_ok({"text": "hi", "exit_code": 0})])
        response = _client(daemon).request("derive", {"seed": 1})
        assert response.result["text"] == "hi"
        assert daemon.requests[0].op == "derive"
        assert daemon.requests[0].params == {"seed": 1}

    def test_client_identity_travels(self, fake):
        daemon = fake([_ok()])
        _client(daemon, client_id="me").request("ping")
        assert daemon.requests[0].client == "me"


class TestRetryPolicy:
    def test_retry_after_is_retried_and_hint_honored(self, fake):
        sleeps = []
        daemon = fake([
            Response.error("x", E_RETRY_AFTER, "busy", retry_after=0.7),
            _ok({"done": True}),
        ])
        client = _client(daemon, sleep=sleeps.append)
        response = client.request("ping")
        assert response.result == {"done": True}
        # Backoff never undercuts the server's hint.
        assert len(sleeps) == 1 and sleeps[0] >= 0.7

    def test_bad_request_not_retried(self, fake):
        daemon = fake([
            Response.error("x", E_BAD_REQUEST, "bad scale"),
            _ok(),
        ])
        with pytest.raises(RemoteError) as info:
            _client(daemon).request("derive", {"scale": "x"})
        assert info.value.kind == E_BAD_REQUEST
        assert len(daemon.requests) == 1  # one shot, no retry

    def test_worker_crash_not_retried(self, fake):
        daemon = fake([Response.error("x", E_WORKER_CRASH, "died")])
        with pytest.raises(RemoteError) as info:
            _client(daemon).request("derive")
        assert info.value.kind == E_WORKER_CRASH
        assert len(daemon.requests) == 1

    def test_retryable_exhaustion_raises_last_error(self, fake):
        daemon = fake([
            Response.error("x", E_RETRY_AFTER, "busy", retry_after=0.1)
            for _ in range(3)
        ])
        with pytest.raises(RemoteError) as info:
            _client(daemon, attempts=3).request("ping")
        assert info.value.kind == E_RETRY_AFTER
        assert len(daemon.requests) == 3

    def test_transport_failure_backs_off_then_unreachable(self):
        sleeps = []
        client = RemoteClient(
            socket_path="/tmp/definitely-not-a-daemon.sock",
            attempts=3,
            rng=random.Random(0),
            sleep=sleeps.append,
        )
        with pytest.raises(DaemonUnreachable, match="after 3 attempts"):
            client.request("ping")
        assert len(sleeps) == 2  # no sleep after the final attempt
        assert sleeps[1] > sleeps[0] * 0.5  # exponential-ish growth

    def test_jitter_stays_in_band(self):
        client = RemoteClient(
            socket_path="/tmp/x.sock", base_delay=1.0, max_delay=1.0,
            rng=random.Random(7),
        )
        for attempt in range(20):
            delay = client._backoff(attempt)
            assert 0.5 <= delay < 1.5

    def test_connection_closed_without_reply_is_transport(self, fake):
        daemon = fake([])  # accepts, reads, closes silently
        with pytest.raises(DaemonUnreachable):
            _client(daemon, attempts=2).request("ping")


class TestHelpers:
    def test_ping_true_on_pong(self, fake):
        daemon = fake([_ok({"pong": True})])
        assert _client(daemon).ping()

    def test_ping_false_when_down(self):
        client = RemoteClient(socket_path="/tmp/nope-daemon.sock", attempts=1)
        assert not client.ping()

    def test_shutdown_false_when_down(self):
        client = RemoteClient(
            socket_path="/tmp/nope-daemon.sock", attempts=1,
            sleep=lambda s: None,
        )
        assert not client.shutdown()

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RemoteClient(attempts=0)
