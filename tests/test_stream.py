"""Streamed-vs-post-mortem equivalence and live-monitoring tests.

The fused single-pass engine promises bit-identical derive/races
output on protocol-clean traces (see the equivalence contract in
:mod:`repro.stream.engine`); these tests pin that promise on every
registered subsystem — vfs (``mix``/``racer``), net (``netmix``) and a
fuzz corpus — plus the documented divergence on truncated traces.
"""

import random

import pytest

import repro.kernel  # noqa: F401  (kernel-first import convention)
from repro import cli
from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from repro.serve import ops
from repro.stream import StreamEngine, run_streamed
from repro.stream.runner import run_derive_streamed, run_races_streamed
from repro.tracing.tracer import install_sink_factory
from repro.workloads import registry
from tests.conftest import make_pair_struct

#: Equivalence holds at any scale; a small trace keeps the suite fast.
SCALE = 4.0


@pytest.fixture(scope="module")
def fuzz_workload(tmp_path_factory):
    """A tiny saved fuzz corpus, runnable as ``fuzz:<path>``."""
    from repro.fuzz import Corpus, CoverageMap, execute_program, random_program

    corpus = Corpus(baseline=CoverageMap(), seed=0)
    rng = random.Random(0)
    for generation in range(3):
        program = random_program(rng)
        corpus.admit(
            program, execute_program(program).coverage, generation=generation
        )
    path = tmp_path_factory.mktemp("corpus") / "corpus.json"
    corpus.save(str(path))
    return f"fuzz:{path}"


def _postmortem_table(workload, seed=0, scale=SCALE):
    result = registry.resolve(workload)(seed, scale)
    structs, filters = registry.database_inputs(registry.db_recipe(workload))
    db = import_tracer(result.tracer, structs, filters)
    return ObservationTable.from_database(db)


def _derivation_rows(derivation):
    return [
        (d.type_key, d.member, d.access_type, d.rule.format(),
         d.winner.s_r, d.observation_count)
        for d in derivation.all()
    ]


# ---------------------------------------------------------------------
# Fold / derive equivalence
# ---------------------------------------------------------------------


@pytest.mark.parametrize("workload", ["mix", "netmix"])
def test_stream_fold_matches_postmortem(workload):
    """The online fold produces the same observation table — same
    targets, same lock sequences in the same order, same counts — as
    trace -> import -> ``ObservationTable.from_database``."""
    run = run_streamed(workload, 0, SCALE)
    table = _postmortem_table(workload)
    assert run.engine.table.keys() == table.keys()
    for key in table.keys():
        assert run.engine.table.sequences(*key) == table.sequences(*key)
        assert run.engine.table.observation_count(
            *key
        ) == table.observation_count(*key)


def test_stream_derive_bitidentical(fuzz_workload):
    """`derive --stream` renders byte-identical text to the post-mortem
    op for every subsystem, fuzz corpora included."""
    for workload in ("mix", "racer", "netmix", fuzz_workload):
        raw = {"workload": workload, "seed": 0, "scale": SCALE}
        post = ops.execute("derive", raw)
        streamed = run_derive_streamed(ops.validate("derive", raw))
        assert streamed["text"] == post["text"], workload
        assert streamed["rules"] == post["rules"]
        assert streamed["exit_code"] == 0


def test_stream_races_bitidentical(fuzz_workload):
    """`races --stream`: the incremental lockset + vector-clock state
    classifies candidates exactly as the post-mortem detector."""
    for workload in ("mix", "racer", "netmix", fuzz_workload):
        raw = {
            "workload": workload, "seed": 0, "scale": SCALE, "examples": 2,
        }
        post = ops.execute("races", raw)
        streamed = run_races_streamed(ops.validate("races", raw))
        assert streamed["text"] == post["text"], workload


def test_stream_derive_carries_rules_json():
    raw = {
        "workload": "mix", "seed": 0, "scale": SCALE,
        "want_rules_json": True,
    }
    post = ops.execute("derive", raw)
    streamed = run_derive_streamed(ops.validate("derive", raw))
    assert streamed["rules_json"] == post["rules_json"]


# ---------------------------------------------------------------------
# Truncated traces (the documented divergence boundary)
# ---------------------------------------------------------------------


def _truncated_scenario(structs):
    """A run ending with a lock still held: one clean txn on lock_a,
    one open (never-released) txn on lock_b."""
    rt = KernelRuntime(structs)
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
    rt.write(ctx, obj, "b")
    return rt


def test_truncated_trace_derive_equivalence():
    """On a truncated trace the importer quarantines the synthetic
    txn's accesses retroactively; the engine drops the open txn at
    finalize.  Both exclude the same rows, so *derive* stays
    bit-identical (races legitimately diverge — the streamed lockset
    already saw the open txn's accesses)."""
    structs = StructRegistry([make_pair_struct()])
    engine = StreamEngine(structs)
    previous = install_sink_factory(engine.sink_factory)
    try:
        _truncated_scenario(structs)
    finally:
        install_sink_factory(previous)
    engine.finalize()
    assert engine.synthesized_releases == 1
    assert engine.synthetic_txns == 1
    assert engine.contention_report().synthetic_closes == 1

    rt = _truncated_scenario(structs)
    db = import_tracer(rt.tracer, rt.structs)
    table = ObservationTable.from_database(db)
    assert engine.table.keys() == table.keys()
    for key in table.keys():
        assert engine.table.sequences(*key) == table.sequences(*key)
    streamed = _derivation_rows(Derivator(0.9).derive(engine.table, jobs=1))
    post = _derivation_rows(Derivator(0.9).derive(table, jobs=1))
    assert streamed == post


def test_finalize_is_idempotent():
    structs = StructRegistry([make_pair_struct()])
    engine = StreamEngine(structs)
    previous = install_sink_factory(engine.sink_factory)
    try:
        _truncated_scenario(structs)
    finally:
        install_sink_factory(previous)
    engine.finalize()
    closes = engine.contention_report().synthetic_closes
    engine.finalize()
    assert engine.contention_report().synthetic_closes == closes


# ---------------------------------------------------------------------
# Interval (watch) reports
# ---------------------------------------------------------------------


@pytest.mark.parametrize("workload", ["mix", "netmix"])
def test_interval_reports_account_for_everything(workload):
    """Per-window deltas must sum back to the run's cumulative
    counters, and every window carries the watch fields (acquisitions,
    hold-span histogram deltas, top-K hottest locks)."""
    seen = []
    run = run_streamed(
        workload, 0, SCALE, interval=2000, top=3,
        interval_callback=seen.append,
    )
    reports = run.engine.interval_reports
    assert reports and seen == reports
    assert sum(r.events for r in reports) == run.engine.total_events
    assert sum(r.acquisitions for r in reports) == run.engine.acquisitions
    assert sum(
        r.read_acquisitions for r in reports
    ) == run.engine.read_acquisitions
    assert sum(r.releases for r in reports) == run.engine.releases
    assert any(r.histogram_delta for r in reports)
    busy = [r for r in reports if r.top_locks]
    assert busy
    assert all(len(r.top_locks) <= 3 for r in reports)
    text = busy[0].format()
    assert "acq" in text and "held" in text and "hold spans" in text


def test_interval_reports_deterministic():
    first = run_streamed("mix", 0, SCALE, interval=2000)
    second = run_streamed("mix", 0, SCALE, interval=2000)
    assert [r.format() for r in first.engine.interval_reports] == [
        r.format() for r in second.engine.interval_reports
    ]


def test_interval_windows_tile_the_trace():
    run = run_streamed("mix", 0, SCALE, interval=2000)
    reports = run.engine.interval_reports
    assert reports[0].start_ts == 0
    for before, after in zip(reports, reports[1:]):
        assert after.start_ts == before.end_ts
        assert after.index == before.index + 1


# ---------------------------------------------------------------------
# Ops / backends
# ---------------------------------------------------------------------


def test_stats_backend_parity():
    """`stats --backend sqlite` answers straight from the store's SQL
    schema yet renders byte-identical to the in-memory database."""
    raw = {"workload": "mix", "seed": 0, "scale": SCALE}
    memory = ops.execute("stats", raw)
    sqlite = ops.execute("stats", {**raw, "backend": "sqlite"})
    assert memory["text"] == sqlite["text"]
    assert memory["exit_code"] == sqlite["exit_code"] == 0


# ---------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------


def test_cli_watch_smoke(capsys):
    assert cli.main([
        "watch", "--workload", "netmix", "--scale", "1",
        "--interval", "3000", "--top", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "watched netmix" in out
    assert "interval(s) of 3000 ticks" in out
    assert "lock-usage statistics" in out


def test_cli_derive_stream_matches_postmortem(capsys):
    assert cli.main(["derive", "--scale", "1", "--stream"]) == 0
    streamed = capsys.readouterr().out
    assert cli.main(["derive", "--scale", "1"]) == 0
    post = capsys.readouterr().out
    assert streamed == post


def test_cli_stream_flag_rejections(capsys):
    assert cli.main(["derive", "--stream", "--remote"]) == 2
    assert "--remote" in capsys.readouterr().err
    assert cli.main(["races", "--stream", "--backend", "sqlite"]) == 2
    assert "memory backend" in capsys.readouterr().err
    assert cli.main(["watch", "--interval", "0"]) == 2
    assert "interval" in capsys.readouterr().err


def test_engine_rejects_lockset_queries_without_races():
    run = run_streamed("racer", 0, 1.0)
    with pytest.raises(ValueError):
        run.engine.lockset_result()
