"""Unit tests for the documented-rule model, corpus, and parser."""

import pytest

from repro.core.lockrefs import LockRef, Scope
from repro.core.rules import LockingRule
from repro.doc.corpus import (
    CORPUS_BUILDERS,
    corpus_counts,
    documented_rules,
)
from repro.doc.model import DocumentedRule, expand_rules
from repro.doc.parser import parse_comment_block
from repro.kernel.vfs.groundtruth import build_all_specs
from repro.kernel.vfs.layouts import build_struct_registry


class TestModel:
    def test_invalid_access_rejected(self):
        with pytest.raises(ValueError):
            DocumentedRule("t", "m", "x", LockingRule.no_lock())

    def test_rw_expands_to_two(self):
        rule = DocumentedRule("t", "m", "rw", LockingRule.no_lock())
        assert [a for a, _ in rule.expand()] == ["r", "w"]

    def test_expand_rules_flattens(self):
        rules = [
            DocumentedRule("t", "m", "rw", LockingRule.no_lock()),
            DocumentedRule("t", "n", "r", LockingRule.no_lock()),
        ]
        assert len(expand_rules(rules)) == 3


class TestCorpus:
    def test_total_is_142_rules(self):
        counts = corpus_counts()
        assert sum(counts.values()) == 142  # the paper's total

    def test_per_type_counts_match_tab4(self):
        assert corpus_counts() == {
            "inode": 14,
            "journal_head": 26,
            "transaction_t": 42,
            "journal_t": 38,
            "dentry": 22,
        }

    def test_documented_members_exist_in_layouts(self):
        registry = build_struct_registry()
        for rule in documented_rules():
            struct = registry.get(rule.data_type)
            assert struct.has_member(rule.member), (rule.data_type, rule.member)

    def test_rule_locks_reference_real_locks(self):
        registry = build_struct_registry()
        specs = build_all_specs()
        for documented in documented_rules():
            for ref in documented.rule.locks:
                if ref.scope == Scope.GLOBAL:
                    continue
                owner = registry.get(ref.owner_type)
                lock_names = {m.name for m in owner.lock_members()}
                assert ref.name in lock_names, (documented.format(), ref.format())

    def test_single_type_access(self):
        rules = documented_rules("inode")
        assert all(r.data_type == "inode" for r in rules)
        with pytest.raises(KeyError):
            documented_rules("nope")

    def test_sources_attached(self):
        assert all(r.source for r in documented_rules())


class TestParser:
    def test_fig2_style_block(self):
        block = """
        /*
         * Inode locking rules:
         *
         * inode->i_lock protects:
         *   inode->i_state, inode->i_hash
         * inode_hash_lock protects:
         *   inode->i_hash
         */
        """
        rules = parse_comment_block(block, "inode", source="fs/inode.c:10")
        by_member = {}
        for rule in rules:
            by_member.setdefault(rule.member, []).append(rule)
        assert any(
            r.rule.locks == (LockRef.es("i_lock", "inode"),)
            for r in by_member["i_state"]
        )
        assert any(
            r.rule.locks == (LockRef.global_("inode_hash_lock"),)
            for r in by_member["i_hash"]
        )

    def test_wording_variants(self):
        for verb in ("protects", "guards", "serializes"):
            rules = parse_comment_block(
                f"inode->i_lock {verb}:\n inode->i_state\n", "inode"
            )
            assert rules and rules[0].member == "i_state"

    def test_lock_sequence(self):
        block = "inode_hash_lock -> inode->i_lock protects:\n inode->i_hash\n"
        rules = parse_comment_block(block, "inode")
        assert rules[0].rule.locks == (
            LockRef.global_("inode_hash_lock"),
            LockRef.es("i_lock", "inode"),
        )

    def test_foreign_struct_members_ignored(self):
        block = "inode->i_lock protects:\n dentry->d_inode, inode->i_state\n"
        rules = parse_comment_block(block, "inode")
        assert {r.member for r in rules} == {"i_state"}

    def test_access_is_rw(self):
        rules = parse_comment_block(
            "inode->i_lock protects:\n inode->i_state\n", "inode"
        )
        assert rules[0].access == "rw"


class TestFunctionCommentParser:
    def test_fig3_style_comment(self):
        from repro.doc.parser import parse_function_comment

        block = """
        /*
         * inode_set_flags - atomically set some inode flags
         *
         * Note: the caller should be holding i_mutex, or else be sure
         * that they have exclusive access to the inode structure.
         */
        """
        refs = parse_function_comment(block, "inode")
        assert any(r.name == "i_mutex" for r in refs)

    def test_is_held_wording(self):
        from repro.doc.parser import parse_function_comment

        refs = parse_function_comment(
            "/* should be called with inode->i_lock held */", "inode"
        )
        assert [r.format() for r in refs] == ["ES(i_lock in inode)"]

    def test_grabbed_wording(self):
        from repro.doc.parser import parse_function_comment

        refs = parse_function_comment(
            "/* inode_hash_lock to be grabbed before calling */", "inode"
        )
        assert [r.format() for r in refs] == ["inode_hash_lock"]

    def test_no_lock_mentions(self):
        from repro.doc.parser import parse_function_comment

        assert parse_function_comment("/* frobs the widget */", "inode") == []
