"""Tests for the command-line interface."""

import pytest

from repro import cli


@pytest.fixture(autouse=True)
def small_pipeline(monkeypatch):
    """Point the CLI at a tiny cached pipeline so tests stay fast."""
    from repro.experiments import common

    original = common.get_pipeline

    def tiny(seed=0, scale=None, workload=common.DEFAULT_WORKLOAD):
        return original(seed, 1.0, workload)

    monkeypatch.setattr(common, "get_pipeline", tiny)


def test_derive_prints_rules(capsys):
    assert cli.main(["derive", "--type", "inode:ext4"]) == 0
    out = capsys.readouterr().out
    assert "winning rule" in out
    assert "inode:ext4" in out


def test_check_prints_summary(capsys):
    assert cli.main(["check"]) == 0
    out = capsys.readouterr().out
    assert "transaction_t" in out and "#Ob" in out


def test_docgen_prints_comment_block(capsys):
    assert cli.main(["docgen", "--type", "inode:ext4"]) == 0
    out = capsys.readouterr().out
    assert out.strip().startswith("/*")


def test_violations_summary(capsys):
    assert cli.main(["violations", "--examples", "2"]) == 0
    out = capsys.readouterr().out
    assert "events" in out


def test_stats(capsys):
    assert cli.main(["stats"]) == 0
    assert "lock_ops" in capsys.readouterr().out


def test_trace_text_and_binary(tmp_path, capsys):
    text_path = tmp_path / "trace.txt"
    assert cli.main(["trace", str(text_path)]) == 0
    assert text_path.read_text().startswith("# lockdoc-trace")
    bin_path = tmp_path / "trace.bin"
    assert cli.main(["trace", str(bin_path)]) == 0
    assert bin_path.read_bytes().startswith(b"LDOC1")


def test_experiment_tab2(capsys):
    assert cli.main(["experiment", "tab2"]) == 0
    assert "sec_lock" in capsys.readouterr().out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        cli.main(["experiment", "nope"])


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        cli.main([])


def test_lockorder_command(capsys):
    assert cli.main(["lockorder"]) == 0
    out = capsys.readouterr().out
    assert "lock-order graph" in out
    assert "no multi-lock order cycles observed" in out


def test_lockorder_racer_workload(capsys):
    assert cli.main(["lockorder", "--workload", "racer", "--scale", "1"]) == 0
    out = capsys.readouterr().out
    assert "cycle[3]" in out
    assert "racer_a" in out


def test_races_racer_workload(capsys):
    assert cli.main(["races", "--workload", "racer", "--scale", "1"]) == 0
    out = capsys.readouterr().out
    assert "rule-confirmed race" in out
    assert "race_obj.counter" in out
    assert "unordered pair" in out


def test_races_racer_safe_workload(capsys):
    assert cli.main(["races", "--workload", "racer-safe", "--scale", "1"]) == 0
    out = capsys.readouterr().out
    assert "no unordered conflicting accesses found" in out
    assert "rule-confirmed race" not in out


def test_races_mix_workload(capsys):
    assert cli.main(["races", "--workload", "mix"]) == 0
    assert "race detection:" in capsys.readouterr().out


def test_docpatch_command(capsys):
    assert cli.main(["docpatch", "--type", "inode"]) == 0
    assert "documentation patch" in capsys.readouterr().out


def test_sql_command(tmp_path, capsys):
    out = tmp_path / "db.sqlite"
    assert cli.main(["sql", str(out)]) == 0
    assert out.exists()
    assert "accesses" in capsys.readouterr().out


def test_analyze_round_trip(tmp_path, capsys):
    trace_path = tmp_path / "run.bin"
    assert cli.main(["trace", str(trace_path)]) == 0
    capsys.readouterr()
    assert cli.main(["analyze", str(trace_path), "--type", "inode:ext4"]) == 0
    out = capsys.readouterr().out
    assert "inode:ext4" in out and "winning rule" in out


def test_derive_json_export(tmp_path, capsys):
    out = tmp_path / "rules.json"
    assert cli.main(["derive", "--json", str(out)]) == 0
    from repro.core.rulesio import rules_from_json

    rules = rules_from_json(out.read_text())
    assert any(r.type_key == "inode:ext4" for r in rules)


def test_health_command(tmp_path, capsys):
    trace = tmp_path / "run.bin"
    assert cli.main(["trace", str(trace)]) == 0
    capsys.readouterr()
    assert cli.main(["health", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "trace health" in out
    assert "salvage ratio" in out


def test_corrupt_then_health_round_trip(tmp_path, capsys):
    trace = tmp_path / "run.txt"
    bad = tmp_path / "bad.txt"
    assert cli.main(["trace", str(trace)]) == 0
    capsys.readouterr()
    argv = ["corrupt", str(trace), str(bad), "--ops", "mangle:0.05", "--seed", "1"]
    assert cli.main(argv) == 0
    out = capsys.readouterr().out
    assert "applied" in out and bad.exists()
    assert bad.read_text() != trace.read_text()
    assert cli.main(["health", str(bad), "--budget", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "parse diagnostics" in out


def test_health_reports_budget_breach_with_exit_one(tmp_path, capsys):
    trace = tmp_path / "run.txt"
    bad = tmp_path / "bad.txt"
    assert cli.main(["trace", str(trace)]) == 0
    assert cli.main(["corrupt", str(trace), str(bad), "--ops", "mangle:0.9"]) == 0
    capsys.readouterr()
    assert cli.main(["health", str(bad), "--budget", "0.25"]) == 1
    assert "EXCEEDED" in capsys.readouterr().out


def test_corrupt_rejects_unknown_operator(tmp_path, capsys):
    trace = tmp_path / "run.txt"
    assert cli.main(["trace", str(trace)]) == 0
    capsys.readouterr()
    out = tmp_path / "bad.txt"
    assert cli.main(["corrupt", str(trace), str(out), "--ops", "nope:1"]) == 2
    assert capsys.readouterr().err.startswith("error:")


@pytest.mark.parametrize("suffix", [".txt", ".bin"])
def test_file_commands_reject_missing_input(tmp_path, capsys, suffix):
    missing = str(tmp_path / f"nope{suffix}")
    out = str(tmp_path / f"out{suffix}")
    for argv in (
        ["analyze", missing],
        ["health", missing],
        ["corrupt", missing, out],
        ["staticcheck", "report", "--rules", missing],
    ):
        assert cli.main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1


@pytest.mark.parametrize("suffix", [".txt", ".bin"])
def test_file_commands_reject_empty_input(tmp_path, capsys, suffix):
    empty = tmp_path / f"empty{suffix}"
    empty.write_bytes(b"")
    out = str(tmp_path / f"out{suffix}")
    for argv in (
        ["analyze", str(empty)],
        ["health", str(empty)],
        ["corrupt", str(empty), out],
        ["staticcheck", "report", "--rules", str(empty)],
    ):
        assert cli.main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1


def test_staticcheck_run(tmp_path, capsys):
    import json

    out = tmp_path / "static.json"
    argv = ["staticcheck", "run", "--findings", "3", "--json", str(out)]
    assert cli.main(argv) == 0
    stdout = capsys.readouterr().out
    assert "Static outliers" in stdout
    assert "precision 1.00 recall 1.00" in stdout
    payload = json.loads(out.read_text())
    assert payload["score"]["fp"] == 0 and payload["score"]["fn"] == 0
    assert payload["planted"]


def test_staticcheck_report_with_rules_file(tmp_path, capsys):
    rules = tmp_path / "rules.json"
    assert cli.main(["derive", "--json", str(rules)]) == 0
    capsys.readouterr()
    assert cli.main(["staticcheck", "report", "--rules", str(rules)]) == 0
    out = capsys.readouterr().out
    assert "Fusion report" in out
    assert "static-only" in out
    assert "Rule agreement" in out


def test_staticcheck_report_rejects_malformed_rules(tmp_path, capsys):
    bad = tmp_path / "rules.json"
    bad.write_text("{\"format\": 99}")
    assert cli.main(["staticcheck", "report", "--rules", str(bad)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert len(err.strip().splitlines()) == 1


def test_contention_command(capsys):
    assert cli.main(["contention", "--limit", "5"]) == 0
    assert "lock-usage statistics" in capsys.readouterr().out


def test_relations_command(capsys):
    assert cli.main(["relations"]) == 0
    assert "EO-rule object relations" in capsys.readouterr().out


class TestRemoteFlag:
    """`--remote` behavior without a live daemon."""

    def test_remote_falls_back_locally_when_daemon_down(
        self, tmp_path, monkeypatch, capsys
    ):
        # Point the client at a socket nobody serves: the command must
        # print a one-line degraded notice and produce the *same*
        # stdout as the local path.
        monkeypatch.setenv("LOCKDOC_SERVE_DIR", str(tmp_path / "nosrv"))
        assert cli.main(["check", "--remote"]) == 0
        remote = capsys.readouterr()
        assert remote.err.startswith("degraded: ")
        assert "computing locally" in remote.err
        assert cli.main(["check"]) == 0
        local = capsys.readouterr()
        assert remote.out == local.out
        assert local.err == ""

    def test_remote_rejects_no_cache(self, capsys):
        assert cli.main(["derive", "--remote", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "--no-cache" in err

    def test_serve_status_reports_down(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("LOCKDOC_SERVE_DIR", str(tmp_path / "nosrv"))
        assert cli.main(["serve", "status"]) == 2
        assert "not running" in capsys.readouterr().out

    def test_serve_stop_when_down_is_an_error(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("LOCKDOC_SERVE_DIR", str(tmp_path / "nosrv"))
        assert cli.main(["serve", "stop", "--timeout", "0.2"]) == 2
        assert "error:" in capsys.readouterr().err
