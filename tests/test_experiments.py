"""Integration tests: every paper table/figure reproduces its shape.

These assertions encode the "who wins, by roughly what factor, where
the crossovers fall" criteria from DESIGN.md §5; exact-count checks are
used only where the reproduction is calibrated to be exact (Tab. 1,
Tab. 2, corpus sizes).
"""

import pytest

from repro.experiments import (
    fig1,
    fig7,
    fig8,
    stats,
    tab1,
    tab2,
    tab3,
    tab4,
    tab5,
    tab6,
    tab7,
    tab8,
)
from tests.conftest import TEST_SCALE


def run(module):
    return module.run(seed=0, scale=TEST_SCALE)


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1.run(stride=4)

    def test_growth_ratios(self, result):
        assert abs(result.growth("mutex") - 1.81) < 0.15
        assert abs(result.growth("spinlock") - 1.45) < 0.12
        assert abs(result.growth("loc") - 1.73) < 0.10

    def test_spinlock_dip_at_the_end(self, result):
        assert result.peak_version("spinlock") != result.series[-1]["version"]

    def test_rcu_monotonic_trend(self, result):
        values = [row["rcu"] for row in result.series]
        assert values[-1] > values[0]


class TestTab1:
    def test_exact_match(self):
        result = tab1.run()
        assert result.matrix == tab1.PAPER_TAB1


class TestTab2:
    @pytest.fixture(scope="class")
    def result(self):
        return tab2.run()

    def test_exact_support_values(self, result):
        got = {
            h.rule.format(): (h.s_a, round(h.s_r * 100, 2))
            for h in result.hypotheses
        }
        for rule, s_a, s_r in tab2.PAPER_TAB2:
            assert got[rule] == (s_a, s_r), rule

    def test_lockdoc_beats_naive(self, result):
        assert result.selection.winner.rule.format() == (
            "ES(sec_lock in clock) -> ES(min_lock in clock)"
        )
        assert result.naive.rule.format() != result.selection.winner.rule.format()


class TestTab3:
    @pytest.fixture(scope="class")
    def result(self):
        return run(tab3)

    def test_partial_coverage_band(self, result):
        for row in result.rows:
            assert 0.15 < row.line_coverage < 0.70, row.format()
            assert 0.15 < row.function_coverage < 0.70, row.format()

    def test_jbd2_best_covered(self, result):
        by_dir = {r.directory: r for r in result.rows}
        assert by_dir["fs/jbd2"].line_coverage > by_dir["fs"].line_coverage


class TestTab4:
    @pytest.fixture(scope="class")
    def result(self):
        return run(tab4)

    def test_corpus_structure_matches_paper(self, result):
        for data_type, (r, _, _, _, _, _) in tab4.PAPER_TAB4.items():
            assert result.summary_for(data_type).rules == r

    def test_inode_statuses_exact(self, result):
        s = result.summary_for("inode")
        assert (s.unobserved, s.correct, s.ambivalent, s.incorrect) == (3, 2, 5, 4)

    def test_transaction_t_best_documented(self, result):
        fractions = {
            s.data_type: s.correct / s.observed for s in result.summaries
        }
        assert fractions["transaction_t"] == max(fractions.values())
        assert fractions["inode"] == min(fractions.values())

    def test_dentry_most_ambivalent(self, result):
        fractions = {
            s.data_type: s.ambivalent / s.observed for s in result.summaries
        }
        assert fractions["dentry"] == max(fractions.values())

    def test_only_about_half_consistently_followed(self, result):
        assert 0.35 < result.overall_correct_fraction() < 0.75


class TestTab5:
    @pytest.fixture(scope="class")
    def result(self):
        return run(tab5)

    @pytest.mark.parametrize("member,access", sorted(tab5.PAPER_TAB5))
    def test_verdicts_match_paper(self, result, member, access):
        assert result.verdict(member, access) == tab5.PAPER_TAB5[(member, access)]

    def test_i_state_reads_mostly_unlocked(self, result):
        for r in result.results:
            if r.documented.member == "i_state" and r.access_type == "r":
                assert r.s_r < 0.5  # paper: 19.78%


class TestTab6:
    @pytest.fixture(scope="class")
    def result(self):
        return run(tab6)

    def test_static_columns_exact(self, result):
        for type_key, (members, blacklisted, *_rest) in tab6.PAPER_TAB6.items():
            row = result.row(type_key)
            assert row.members == members, type_key
            assert abs(row.blacklisted - blacklisted) <= 1, type_key

    def test_reads_more_lockfree_than_writes(self, result):
        read_fraction = sum(r.no_lock_r for r in result.rows) / max(
            1, sum(r.rules_r for r in result.rows)
        )
        write_fraction = sum(r.no_lock_w for r in result.rows) / max(
            1, sum(r.rules_w for r in result.rows)
        )
        assert read_fraction > write_fraction * 1.5

    def test_ext4_best_covered_subclass(self, result):
        ext4 = result.row("inode:ext4")
        for type_key in tab6.PAPER_TAB6:
            if type_key.startswith("inode:") and type_key != "inode:ext4":
                other = result.row(type_key)
                assert ext4.rules_r + ext4.rules_w >= other.rules_r + other.rules_w - 8

    def test_debugfs_barely_covered(self, result):
        row = result.row("inode:debugfs")
        assert row.rules_r + row.rules_w <= 4  # paper: 0 + 1

    def test_rule_counts_within_band(self, result):
        """Every cell within a factor band of the paper's value."""
        for type_key, (_, _, pr, pw, _, _) in tab6.PAPER_TAB6.items():
            row = result.row(type_key)
            for mine, paper in ((row.rules_r, pr), (row.rules_w, pw)):
                assert mine <= max(2 * paper + 4, paper + 12), (type_key, mine, paper)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run(seed=0, scale=TEST_SCALE)

    def test_fraction_weakly_monotonic(self, result):
        for (tk, at), points in result.series.items():
            values = [f for _, f in points if f is not None]
            for earlier, later in zip(values, values[1:]):
                assert later >= earlier - 1e-9, (tk, at)

    def test_not_all_types_reach_100(self, result):
        finals = [
            points[-1][1]
            for points in result.series.values()
            if points[-1][1] is not None
        ]
        assert any(f < 1.0 for f in finals)

    def test_higher_threshold_never_removes_no_lock(self, result):
        # at t_ac = 1.0 every fully-supported lock rule survives;
        # journal_head writes stay fully locked (paper: #Nl w = 0).
        assert result.fractions("journal_head", "w")[-1] == 0.0


class TestTab7:
    @pytest.fixture(scope="class")
    def result(self):
        return run(tab7)

    def test_buffer_head_dominates(self, result):
        buffer_head = result.events_for("buffer_head")
        assert buffer_head > 0
        others = [
            s.events for s in result.summaries if s.type_key != "buffer_head"
        ]
        assert buffer_head >= max(others)

    @pytest.mark.parametrize("type_key", sorted(tab7.PAPER_ZERO_TYPES))
    def test_clean_types_have_zero_violations(self, result, type_key):
        assert result.events_for(type_key) == 0, type_key

    def test_nonzero_types_report_violations(self, result):
        for type_key in ("buffer_head", "journal_t", "inode:rootfs", "inode:tmpfs"):
            assert result.events_for(type_key) > 0, type_key

    def test_violation_share_of_accesses_small(self, result):
        # paper: 52k violating events of 13.9M accesses (~0.4%)
        from repro.experiments.common import get_pipeline

        kept = get_pipeline(0, TEST_SCALE).db.stats()["kept_accesses"]
        assert result.total_events / kept < 0.05


class TestTab8:
    def test_all_three_examples_reproduce(self):
        result = run(tab8)
        assert result.found_all(), result.render()

    def test_example_shapes(self):
        result = run(tab8)
        i_hash, jbd2_row, d_subdirs = result.examples
        held = [r.format() for r in i_hash.held]
        assert "inode_hash_lock" in held and "EO(i_lock in inode)" in held
        assert jbd2_row.sample.line == 4685
        assert d_subdirs.sample.file == "fs/libfs.c"


class TestFig8:
    def test_generated_doc_structure(self):
        result = run(fig8)
        assert result.contains_expected(), result.render()
        assert result.documentation.startswith("/*")


class TestStats:
    def test_proportions(self):
        result = run(stats)
        assert result.trace["accesses"] > result.trace["lock_ops"]
        assert result.db["embedded_locks"] > result.db["static_locks"] * 50
        assert result.trace["allocs"] >= result.trace["frees"]
        assert result.db["kept_accesses"] < result.db["accesses"]
