"""Tests for the synthetic kernel-source corpus and scanner (Fig. 1)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.kernelsrc.generator import generate_subsystem_tree, generate_tree
from repro.kernelsrc.model import (
    KERNEL_VERSIONS,
    KernelVersion,
    SourceFunction,
    expected_metrics,
    scaled_metrics,
)
from repro.kernelsrc.scanner import LockUsage, _strip_comments, scan_source, scan_tree


def test_release_axis():
    assert KERNEL_VERSIONS[0].name == "v3.0"
    assert KERNEL_VERSIONS[-1].name == "v4.18"
    assert KernelVersion(3, 19).ordinal == 19
    assert KernelVersion(4, 0).ordinal == 20
    ordinals = [v.ordinal for v in KERNEL_VERSIONS]
    assert ordinals == sorted(ordinals)


def test_anchor_growth_ratios():
    first = expected_metrics(KERNEL_VERSIONS[0])
    last = expected_metrics(KERNEL_VERSIONS[-1])
    assert 1.70 < last["loc"] / first["loc"] < 1.80  # paper: +73%
    assert 1.75 < last["mutex"] / first["mutex"] < 1.90  # paper: +81%
    assert 1.38 < last["spinlock"] / first["spinlock"] < 1.52  # paper: +45%


def test_spinlock_peaks_before_418():
    values = [(v, expected_metrics(v)["spinlock"]) for v in KERNEL_VERSIONS]
    peak_version = max(values, key=lambda item: item[1])[0]
    assert peak_version.ordinal < KERNEL_VERSIONS[-1].ordinal


def test_generator_deterministic():
    v = KernelVersion(4, 10)
    assert generate_tree(v) == generate_tree(v)


def test_generated_tree_hits_scaled_targets():
    v = KernelVersion(3, 0)
    usage = scan_tree(generate_tree(v))
    targets = scaled_metrics(v)
    assert usage.spinlock == targets["spinlock"]
    assert usage.mutex == targets["mutex"]
    assert usage.rcu == targets["rcu"]
    assert abs(usage.loc - targets["loc"]) / targets["loc"] < 0.02


def test_scanner_matches_idioms():
    usage = LockUsage()
    scan_source(
        "\n".join(
            [
                "spin_lock_init(&a);",
                "DEFINE_SPINLOCK(b);",
                "mutex_init(&c);",
                "DEFINE_MUTEX(d);",
                "rcu_read_lock();",
                "call_rcu(&e, e_free);",
                "int unrelated;",
            ]
        ),
        usage,
    )
    assert usage.spinlock == 2
    assert usage.mutex == 2
    assert usage.rcu == 2
    assert usage.loc == 7


def test_scanner_skips_comment_lines():
    usage = LockUsage()
    scan_source("/* spin_lock_init(&a); */\n// mutex_init(&b);\n * DEFINE_MUTEX(c);", usage)
    assert usage.spinlock == 0 and usage.mutex == 0
    assert usage.loc == 3  # comments still count as lines


def test_scanner_tracks_block_comments_across_lines():
    usage = LockUsage()
    scan_source(
        "\n".join(
            [
                "/*",
                " * spin_lock_init(&a);",
                "mutex_init(&b);",  # no leading *, still inside the block
                " */",
                "spin_lock_init(&real);",
            ]
        ),
        usage,
    )
    assert usage.spinlock == 1
    assert usage.mutex == 0
    assert usage.loc == 5


def test_scanner_counts_code_sharing_a_line_with_comments():
    usage = LockUsage()
    scan_source(
        "\n".join(
            [
                "spin_lock_init(&a); /* why */",
                "/* note */ mutex_init(&b); // trailing",
                "int x; /* block opens here",
                "rcu_read_lock();",  # commented out
                "*/ rcu_read_lock();",  # block closes, real call
            ]
        ),
        usage,
    )
    assert usage.spinlock == 1
    assert usage.mutex == 1
    assert usage.rcu == 1
    assert usage.loc == 5


def test_scanner_ignores_idioms_commented_out_inline():
    usage = LockUsage()
    scan_source("int y; /* mutex_init(&b); */ spin_lock_init(&a);", usage)
    assert usage.mutex == 0
    assert usage.spinlock == 1


def test_tree_paths_cover_subsystems():
    tree = generate_tree(KernelVersion(4, 0))
    directories = {path.rsplit("/", 1)[0] for path in tree}
    assert "fs" in directories
    assert any(d.startswith("drivers") for d in directories)


def test_comment_openers_inside_strings_are_literal():
    # Regression: a "/*" inside a string literal used to open a block
    # comment and swallow every following line of the file.
    usage = LockUsage()
    scan_source(
        "\n".join(
            [
                'const char *s = "/* not a comment";',
                "spin_lock_init(&a);",
                'pr_info("see https://example.org//x"); mutex_init(&b);',
                "rcu_read_lock();",
            ]
        ),
        usage,
    )
    assert usage.spinlock == 1
    assert usage.mutex == 1
    assert usage.rcu == 1


def test_strip_comments_handles_literals_and_escapes():
    code, in_block = _strip_comments('s = "/*"; spin_lock_init(&a);', False)
    assert not in_block and "spin_lock_init" in code
    code, in_block = _strip_comments(r'p = "\"/*"; mutex_init(&b);', False)
    assert not in_block and "mutex_init" in code
    code, in_block = _strip_comments("char c = '\"'; rcu_read_lock();", False)
    assert not in_block and "rcu_read_lock" in code
    # real comments still work after a literal
    code, in_block = _strip_comments('x = "*/"; /* tail', False)
    assert in_block and '"*/"' in code
    # unterminated literal runs to end of line without crashing
    code, in_block = _strip_comments('broken = "no close', False)
    assert not in_block and code == 'broken = "no close'


def test_generate_tree_deterministic_across_processes():
    # Byte-identical output under different hash seeds: nothing in the
    # generator (or the metric wobble) may depend on PYTHONHASHSEED.
    src = str(Path(__file__).resolve().parents[1] / "src")
    script = (
        "import hashlib, json;"
        "from repro.kernelsrc.generator import generate_tree;"
        "from repro.kernelsrc.model import KernelVersion;"
        "tree = generate_tree(KernelVersion(4, 10));"
        "blob = json.dumps(sorted(tree.items()));"
        "print(hashlib.sha256(blob.encode()).hexdigest())"
    )
    digests = set()
    for hash_seed in ("1", "2"):
        env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, check=True,
        )
        digests.add(proc.stdout.strip())
    assert len(digests) == 1


def test_subsystem_corpus_does_not_move_fig1_counts():
    # The call-graph corpus is a separate tree: generating it must not
    # perturb the Fig. 1 counts of the release corpus.
    version = KernelVersion(3, 0)
    before = scan_tree(generate_tree(version)).as_dict()
    from repro.staticcheck.plan import build_corpus_plan

    plan = build_corpus_plan()
    subsystem = generate_subsystem_tree(plan.functions)
    assert subsystem
    assert not set(subsystem) & set(generate_tree(version))
    after = scan_tree(generate_tree(version)).as_dict()
    assert before == after
    targets = scaled_metrics(version)
    assert after["spinlock"] == targets["spinlock"]
    assert after["mutex"] == targets["mutex"]
    assert after["rcu"] == targets["rcu"]


def test_subsystem_tree_is_deterministic_and_renders_decls():
    from repro.staticcheck.plan import build_corpus_plan

    first = generate_subsystem_tree(build_corpus_plan().functions)
    second = generate_subsystem_tree(build_corpus_plan().functions)
    assert first == second
    content = first["fs/vfs_inode_paths.c"]
    assert content.startswith("// SPDX-License-Identifier: GPL-2.0")
    # forward declarations precede every definition
    assert content.index("static void inode_set_i_flags_raw(struct inode *inode);") < (
        content.index("static void inode_set_i_flags_raw(struct inode *inode)\n")
    )


def test_render_function_paramless():
    from repro.kernelsrc.generator import render_function

    text = render_function(
        SourceFunction(name="noop", file="fs/x.c", body=("return;",))
    )
    assert "static void noop(void)" in text
