"""Tests for the synthetic kernel-source corpus and scanner (Fig. 1)."""

import pytest

from repro.kernelsrc.generator import generate_tree
from repro.kernelsrc.model import (
    KERNEL_VERSIONS,
    KernelVersion,
    expected_metrics,
    scaled_metrics,
)
from repro.kernelsrc.scanner import LockUsage, scan_source, scan_tree


def test_release_axis():
    assert KERNEL_VERSIONS[0].name == "v3.0"
    assert KERNEL_VERSIONS[-1].name == "v4.18"
    assert KernelVersion(3, 19).ordinal == 19
    assert KernelVersion(4, 0).ordinal == 20
    ordinals = [v.ordinal for v in KERNEL_VERSIONS]
    assert ordinals == sorted(ordinals)


def test_anchor_growth_ratios():
    first = expected_metrics(KERNEL_VERSIONS[0])
    last = expected_metrics(KERNEL_VERSIONS[-1])
    assert 1.70 < last["loc"] / first["loc"] < 1.80  # paper: +73%
    assert 1.75 < last["mutex"] / first["mutex"] < 1.90  # paper: +81%
    assert 1.38 < last["spinlock"] / first["spinlock"] < 1.52  # paper: +45%


def test_spinlock_peaks_before_418():
    values = [(v, expected_metrics(v)["spinlock"]) for v in KERNEL_VERSIONS]
    peak_version = max(values, key=lambda item: item[1])[0]
    assert peak_version.ordinal < KERNEL_VERSIONS[-1].ordinal


def test_generator_deterministic():
    v = KernelVersion(4, 10)
    assert generate_tree(v) == generate_tree(v)


def test_generated_tree_hits_scaled_targets():
    v = KernelVersion(3, 0)
    usage = scan_tree(generate_tree(v))
    targets = scaled_metrics(v)
    assert usage.spinlock == targets["spinlock"]
    assert usage.mutex == targets["mutex"]
    assert usage.rcu == targets["rcu"]
    assert abs(usage.loc - targets["loc"]) / targets["loc"] < 0.02


def test_scanner_matches_idioms():
    usage = LockUsage()
    scan_source(
        "\n".join(
            [
                "spin_lock_init(&a);",
                "DEFINE_SPINLOCK(b);",
                "mutex_init(&c);",
                "DEFINE_MUTEX(d);",
                "rcu_read_lock();",
                "call_rcu(&e, e_free);",
                "int unrelated;",
            ]
        ),
        usage,
    )
    assert usage.spinlock == 2
    assert usage.mutex == 2
    assert usage.rcu == 2
    assert usage.loc == 7


def test_scanner_skips_comment_lines():
    usage = LockUsage()
    scan_source("/* spin_lock_init(&a); */\n// mutex_init(&b);\n * DEFINE_MUTEX(c);", usage)
    assert usage.spinlock == 0 and usage.mutex == 0
    assert usage.loc == 3  # comments still count as lines


def test_scanner_tracks_block_comments_across_lines():
    usage = LockUsage()
    scan_source(
        "\n".join(
            [
                "/*",
                " * spin_lock_init(&a);",
                "mutex_init(&b);",  # no leading *, still inside the block
                " */",
                "spin_lock_init(&real);",
            ]
        ),
        usage,
    )
    assert usage.spinlock == 1
    assert usage.mutex == 0
    assert usage.loc == 5


def test_scanner_counts_code_sharing_a_line_with_comments():
    usage = LockUsage()
    scan_source(
        "\n".join(
            [
                "spin_lock_init(&a); /* why */",
                "/* note */ mutex_init(&b); // trailing",
                "int x; /* block opens here",
                "rcu_read_lock();",  # commented out
                "*/ rcu_read_lock();",  # block closes, real call
            ]
        ),
        usage,
    )
    assert usage.spinlock == 1
    assert usage.mutex == 1
    assert usage.rcu == 1
    assert usage.loc == 5


def test_scanner_ignores_idioms_commented_out_inline():
    usage = LockUsage()
    scan_source("int y; /* mutex_init(&b); */ spin_lock_init(&a);", usage)
    assert usage.mutex == 0
    assert usage.spinlock == 1


def test_tree_paths_cover_subsystems():
    tree = generate_tree(KernelVersion(4, 0))
    directories = {path.rsplit("/", 1)[0] for path in tree}
    assert "fs" in directories
    assert any(d.startswith("drivers") for d in directories)
