"""Round-trip tests for trace serialization (text and binary)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracing import serialize
from repro.tracing.events import AccessEvent, AllocEvent, FreeEvent, LockEvent
from repro.tracing.tracer import Tracer


def build_sample_tracer():
    from repro.kernel.context import make_task
    from repro.kernel.locks import Lock, LockClass, LockMode
    from repro.kernel.memory import Allocator

    tracer = Tracer()
    ctx = make_task("t")
    ctx.push_frame("outer", "a.c", 5)
    allocator = Allocator()
    allocation = allocator.alloc(64, "inode", subclass="ext4")
    tracer.record_alloc(ctx, allocation)
    lock = Lock(LockClass.SPINLOCK, "i_lock", address=allocation.address + 16)
    tracer.record_lock(ctx, lock, True, LockMode.EXCLUSIVE)
    tracer.record_access(ctx, allocation.address, 8, is_write=True)
    tracer.record_access(ctx, allocation.address + 8, 8, is_write=False)
    tracer.record_lock(ctx, lock, False, LockMode.EXCLUSIVE)
    pseudo = Lock(LockClass.RCU, "rcu", is_static=True)  # address None
    tracer.record_lock(ctx, pseudo, True, LockMode.SHARED)
    tracer.record_free(ctx, allocation)
    return tracer


@pytest.mark.parametrize("fmt", ["text", "binary"])
def test_round_trip(fmt):
    tracer = build_sample_tracer()
    if fmt == "text":
        blob = serialize.dumps_text(tracer)
        events, stacks = serialize.loads_text(blob)
    else:
        blob = serialize.dumps_binary(tracer)
        events, stacks = serialize.loads_binary(blob)
    assert events == tracer.events
    assert stacks == [tracer.stack(i) for i in range(tracer.stack_count)]


def test_text_bad_magic():
    with pytest.raises(serialize.TraceFormatError):
        serialize.loads_text("garbage\n")


def test_binary_bad_magic():
    with pytest.raises(serialize.TraceFormatError):
        serialize.loads_binary(b"NOPE!!")


def test_empty_tracer_round_trips():
    tracer = Tracer()
    events, stacks = serialize.loads_text(serialize.dumps_text(tracer))
    assert events == [] and stacks == [()]
    events, stacks = serialize.loads_binary(serialize.dumps_binary(tracer))
    assert events == [] and stacks == [()]


_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_./"),
    min_size=1,
    max_size=12,
)


@st.composite
def _event(draw):
    kind = draw(st.integers(0, 3))
    ts = draw(st.integers(1, 2**40))
    ctx = draw(st.integers(1, 1000))
    if kind == 0:
        return AllocEvent(
            ts=ts, ctx_id=ctx, alloc_id=draw(st.integers(1, 10**6)),
            address=draw(st.integers(0, 2**60)), size=draw(st.integers(1, 4096)),
            data_type=draw(_names), subclass=draw(st.none() | _names),
        )
    if kind == 1:
        return FreeEvent(
            ts=ts, ctx_id=ctx, alloc_id=draw(st.integers(1, 10**6)),
            address=draw(st.integers(0, 2**60)),
        )
    if kind == 2:
        return AccessEvent(
            ts=ts, ctx_id=ctx, address=draw(st.integers(0, 2**60)),
            size=draw(st.integers(1, 64)), is_write=draw(st.booleans()),
            stack_id=draw(st.integers(0, 100)), file=draw(_names),
            line=draw(st.integers(0, 10**6)),
        )
    return LockEvent(
        ts=ts, ctx_id=ctx, lock_id=draw(st.integers(1, 10**6)),
        lock_class=draw(st.sampled_from(["spinlock_t", "mutex", "rcu"])),
        lock_name=draw(_names),
        address=draw(st.none() | st.integers(0, 2**60)),
        is_acquire=draw(st.booleans()),
        mode=draw(st.sampled_from(["r", "w"])),
        stack_id=draw(st.integers(0, 100)), file=draw(_names),
        line=draw(st.integers(0, 10**6)),
    )


@settings(max_examples=50, deadline=None)
@given(st.lists(_event(), max_size=30))
def test_property_both_formats_round_trip(events):
    tracer = Tracer()
    tracer.events = events
    decoded_text, _ = serialize.loads_text(serialize.dumps_text(tracer))
    decoded_bin, _ = serialize.loads_binary(serialize.dumps_binary(tracer))
    assert decoded_text == events
    assert decoded_bin == events
