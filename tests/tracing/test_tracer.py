"""Unit tests for the tracer."""

from repro.kernel.context import make_task
from repro.kernel.locks import Lock, LockClass, LockMode
from repro.kernel.memory import Allocator
from repro.tracing.events import AccessEvent, AllocEvent, LockEvent
from repro.tracing.tracer import EMPTY_STACK_ID, Tracer


def test_clock_monotonic():
    tracer = Tracer()
    stamps = [tracer.now() for _ in range(10)]
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == 10


def test_record_alloc_free():
    tracer = Tracer()
    ctx = make_task("t")
    allocator = Allocator()
    allocation = allocator.alloc(32, "inode", subclass="ext4")
    tracer.record_alloc(ctx, allocation)
    tracer.record_free(ctx, allocation)
    assert tracer.stats.allocs == 1
    assert tracer.stats.frees == 1
    event = tracer.events[0]
    assert isinstance(event, AllocEvent)
    assert event.subclass == "ext4"


def test_record_access_without_frames():
    tracer = Tracer()
    ctx = make_task("t")
    tracer.record_access(ctx, 0x1000, 8, is_write=True)
    event = tracer.events[0]
    assert isinstance(event, AccessEvent)
    assert event.stack_id == EMPTY_STACK_ID
    assert event.file == "<unknown>"


def test_record_access_with_frames():
    tracer = Tracer()
    ctx = make_task("t")
    ctx.push_frame("vfs_write", "fs/read_write.c", 540)
    ctx.push_frame("i_size_write", "include/linux/fs.h", 872)
    tracer.record_access(ctx, 0x1000, 8, is_write=False, line=876)
    event = tracer.events[0]
    assert event.file == "include/linux/fs.h"
    assert event.line == 876
    assert tracer.stack(event.stack_id)[0][0] == "vfs_write"


def test_stack_interning_dedups():
    tracer = Tracer()
    a = tracer.intern_stack((("f", "x.c", 1),))
    b = tracer.intern_stack((("f", "x.c", 1),))
    c = tracer.intern_stack((("g", "x.c", 2),))
    assert a == b != c
    assert tracer.stack_count == 3  # includes the empty stack


def test_record_lock_modes():
    tracer = Tracer()
    ctx = make_task("t")
    lock = Lock(LockClass.RWLOCK, "rw", address=0x2000)
    tracer.record_lock(ctx, lock, True, LockMode.SHARED)
    tracer.record_lock(ctx, lock, False, LockMode.SHARED)
    acquire, release = tracer.events
    assert isinstance(acquire, LockEvent) and acquire.mode == "r"
    assert acquire.is_acquire and not release.is_acquire


def test_disabled_tracer_records_nothing():
    tracer = Tracer()
    tracer.enabled = False
    ctx = make_task("t")
    tracer.record_access(ctx, 0x1000, 8, is_write=True)
    assert tracer.events == []
    assert tracer.stats.total_events == 0


def test_stats_total():
    tracer = Tracer()
    ctx = make_task("t")
    allocator = Allocator()
    allocation = allocator.alloc(16, "t")
    tracer.record_alloc(ctx, allocation)
    tracer.record_access(ctx, allocation.address, 8, is_write=True)
    lock = Lock(LockClass.SPINLOCK, "l")
    tracer.record_lock(ctx, lock, True, LockMode.EXCLUSIVE)
    assert tracer.stats.total_events == 3
