"""Lock-step serialization equivalence over every registered workload.

For each registry built-in at small scale, the binary round-trip, the
text round-trip, and the original in-memory trace must agree event for
event and stack for stack — the property the trace cache (which serves
binary dumps in place of live runs) leans on.
"""

from __future__ import annotations

import pytest

from repro.tracing.serialize import (
    dumps_binary,
    dumps_text,
    loads_binary,
    loads_text,
    stacks_of,
)
from repro.workloads import registry


@pytest.mark.parametrize("workload", sorted(registry.available()))
def test_binary_and_text_roundtrips_match_the_live_trace(workload):
    result = registry.run(workload, seed=0, scale=1.0)
    tracer = result.tracer
    events, stacks = tracer.events, stacks_of(tracer)

    bin_events, bin_stacks = loads_binary(dumps_binary(tracer))
    text_events, text_stacks = loads_text(dumps_text(tracer))

    assert bin_events == events
    assert bin_stacks == stacks
    assert text_events == events
    assert text_stacks == stacks
    # Transitivity spelled out: both decoded forms agree with each other.
    assert bin_events == text_events
    assert bin_stacks == text_stacks
