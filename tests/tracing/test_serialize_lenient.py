"""The lenient/strict ingestion contract (property-style).

For *any* corruption of a well-formed trace:

* the lenient loaders never raise — they return a
  :class:`~repro.tracing.serialize.LoadReport` with diagnostics,
* the strict loaders raise :class:`TraceFormatError` and nothing else —
  never a bare ``KeyError``/``struct.error``/``IndexError`` — and the
  message carries the position (line number / byte offset).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import ALL_OPERATOR_SPECS, COMPOSED_SPEC, FaultPlan
from repro.tracing import serialize
from tests.tracing.test_serialize import build_sample_tracer

_TRACER = build_sample_tracer()
_TEXT = serialize.dumps_text(_TRACER)
_DATA = serialize.dumps_binary(_TRACER)
_EVENTS = list(_TRACER.events)


def _assert_strict_contract_text(text: str) -> None:
    """Strict mode either parses or raises exactly TraceFormatError."""
    try:
        serialize.loads_text(text)
    except serialize.TraceFormatError as exc:
        assert str(exc).startswith("line ")


def _assert_strict_contract_binary(data: bytes) -> None:
    try:
        serialize.loads_binary(data)
    except serialize.TraceFormatError as exc:
        assert str(exc).startswith("offset 0x")


class TestArbitraryTruncation:
    @given(cut=st.integers(min_value=0, max_value=len(_TEXT)))
    @settings(max_examples=80, deadline=None)
    def test_text_cut_anywhere(self, cut):
        mutated = _TEXT[:cut]
        report = serialize.loads_text_lenient(mutated)
        assert len(report.events) <= len(_EVENTS)
        _assert_strict_contract_text(mutated)

    @given(cut=st.integers(min_value=0, max_value=len(_DATA)))
    @settings(max_examples=80, deadline=None)
    def test_binary_cut_anywhere(self, cut):
        mutated = _DATA[:cut]
        report = serialize.loads_binary_lenient(mutated)
        # Salvage is always a clean prefix of the original stream.
        assert report.events == _EVENTS[: len(report.events)]
        _assert_strict_contract_binary(mutated)


class TestArbitraryMutation:
    @given(
        pos=st.integers(min_value=0, max_value=len(_DATA) - 1),
        bit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=80, deadline=None)
    def test_binary_single_bit_flip(self, pos, bit):
        mutated = bytearray(_DATA)
        mutated[pos] ^= 1 << bit
        mutated = bytes(mutated)
        serialize.loads_binary_lenient(mutated)  # must not raise
        _assert_strict_contract_binary(mutated)

    @given(
        lineno=st.integers(min_value=0, max_value=_TEXT.count("\n") - 1),
        junk=st.text(
            alphabet=st.characters(blacklist_characters="\n"), max_size=30
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_text_line_replacement(self, lineno, junk):
        lines = _TEXT.split("\n")
        lines[lineno] = junk
        mutated = "\n".join(lines)
        serialize.loads_text_lenient(mutated)  # must not raise
        _assert_strict_contract_text(mutated)


@pytest.mark.parametrize("spec", ALL_OPERATOR_SPECS + (COMPOSED_SPEC,))
@pytest.mark.parametrize("seed", (0, 1, 2))
class TestEveryFaultOperator:
    def test_text(self, spec, seed):
        mutated = FaultPlan.from_spec(spec, seed=seed).corrupt_text(_TEXT)
        report = serialize.loads_text_lenient(mutated)
        for diagnostic in report.diagnostics:
            assert diagnostic.location.startswith("line ")
            assert diagnostic.reason
        _assert_strict_contract_text(mutated)

    def test_binary(self, spec, seed):
        mutated = FaultPlan.from_spec(spec, seed=seed).corrupt_binary(_DATA)
        report = serialize.loads_binary_lenient(mutated)
        for diagnostic in report.diagnostics:
            assert diagnostic.location.startswith("offset 0x")
        _assert_strict_contract_binary(mutated)


class TestPositionContext:
    def test_text_error_names_line_and_record(self):
        lines = _TEXT.split("\n")
        victim = next(
            i for i, line in enumerate(lines) if line.startswith(("A\t", "R\t", "W\t"))
        )
        lines[victim] = "A\tnot-a-number"
        with pytest.raises(serialize.TraceFormatError) as err:
            serialize.loads_text("\n".join(lines))
        assert f"line {victim + 1}:" in str(err.value)
        assert "not-a-number" in str(err.value)

    def test_binary_error_names_offset(self):
        with pytest.raises(serialize.TraceFormatError) as err:
            serialize.loads_binary(_DATA[:-3])
        assert "offset 0x" in str(err.value)

    def test_lenient_diagnostic_costs_one_line_only(self):
        lines = _TEXT.split("\n")
        victim = next(
            i for i, line in enumerate(lines) if line.startswith(("R\t", "W\t"))
        )
        lines[victim] = "W\tgarbage"
        report = serialize.loads_text_lenient("\n".join(lines))
        assert len(report.events) == len(_EVENTS) - 1
        assert len(report.diagnostics) == 1
        assert report.diagnostics[0].location == f"line {victim + 1}"
        assert report.diagnostics[0].record == "W\tgarbage"


class TestDegenerateInputs:
    def test_empty_text_file(self):
        report = serialize.loads_text_lenient("")
        assert report.events == []
        assert report.diagnostics[0].reason == "empty trace file"
        with pytest.raises(serialize.TraceFormatError, match="empty trace file"):
            serialize.loads_text("")

    def test_empty_binary_file(self):
        report = serialize.loads_binary_lenient(b"")
        assert report.events == []
        assert report.diagnostics[0].reason == "empty trace file"
        with pytest.raises(serialize.TraceFormatError, match="empty trace file"):
            serialize.loads_binary(b"")

    def test_wrong_magic(self):
        with pytest.raises(serialize.TraceFormatError, match="bad magic"):
            serialize.loads_text("#!/bin/sh\n")
        with pytest.raises(serialize.TraceFormatError, match="bad magic"):
            serialize.loads_binary(b"GIF89a....")

    def test_load_path_sniffs_format(self, tmp_path):
        text_path = tmp_path / "t.txt"
        text_path.write_text(_TEXT)
        bin_path = tmp_path / "t.bin"
        bin_path.write_bytes(_DATA)
        assert serialize.load_path(str(text_path)).events == _EVENTS
        assert serialize.load_path(str(bin_path)).events == _EVENTS

    def test_load_path_lenient_on_damage(self, tmp_path):
        path = tmp_path / "torn.bin"
        path.write_bytes(_DATA[:-5])
        report = serialize.load_path(str(path), lenient=True)
        assert report.events == _EVENTS[: len(report.events)]
        assert report.malformed_count == 1
        with pytest.raises(serialize.TraceFormatError):
            serialize.load_path(str(path))
