"""Integration tests for the VFS world and its kernel entry points."""

import pytest

from repro.core.lockrefs import LockRef
from repro.core.observations import ObservationTable
from repro.db.importer import import_tracer
from repro.kernel.sched import Scheduler
from repro.kernel.vfs.fs import VfsWorld
from repro.kernel.vfs.groundtruth import build_filter_config


@pytest.fixture
def world():
    w = VfsWorld(seed=42)
    w.boot(["ext4", "tmpfs"])
    return w


def run_threads(world, *bodies):
    scheduler = Scheduler(world.rt, seed=1)
    for index, body in enumerate(bodies):
        scheduler.spawn(f"t{index}", body)
    scheduler.run()


def import_world(world):
    db = import_tracer(world.rt.tracer, world.rt.structs, build_filter_config())
    return db, ObservationTable.from_database(db)


class TestBoot:
    def test_superblocks_and_roots(self, world):
        assert set(world.supers) == {"ext4", "tmpfs"}
        assert world.root_inodes["ext4"].subclass == "ext4"
        assert world.journal is not None  # ext4 brings the journal
        assert world.transactions

    def test_boot_inode_pool(self, world):
        assert len(world.inodes["ext4"]) >= 5

    def test_object_graph_wiring(self, world):
        inode = world.inodes["ext4"][0]
        assert inode.refs["i_sb"] is world.supers["ext4"]
        assert inode.refs["i_bdi"] is world.bdis["ext4"]


class TestVfsCreate:
    def test_creates_inode_and_dentry(self, world):
        before = len(world.inodes["ext4"])

        def body(ctx):
            yield from world.vfs_create(ctx, "ext4")

        run_threads(world, body)
        assert len(world.inodes["ext4"]) == before + 1

    def test_ops_written_under_parent_rwsem(self, world):
        def body(ctx):
            yield from world.vfs_create(ctx, "ext4")

        run_threads(world, body)
        _, table = import_world(world)
        seqs = dict(table.sequences("inode:ext4", "i_op", "w"))
        assert (LockRef.eo("i_rwsem", "inode"),) in seqs

    def test_insert_hash_locks(self, world):
        def body(ctx):
            yield from world.vfs_create(ctx, "ext4")

        run_threads(world, body)
        _, table = import_world(world)
        seqs = dict(table.sequences("inode:ext4", "i_hash", "w"))
        assert (
            LockRef.global_("inode_hash_lock"),
            LockRef.es("i_lock", "inode"),
        ) in seqs


class TestVfsUnlink:
    def test_unlink_destroys_an_inode(self, world):
        def creator(ctx):
            for _ in range(4):
                yield from world.vfs_create(ctx, "ext4")

        run_threads(world, creator)
        count = len([i for i in world.inodes["ext4"] if i.live])

        def unlinker(ctx):
            yield from world.vfs_unlink(ctx, "ext4")

        run_threads(world, unlinker)
        assert len([i for i in world.inodes["ext4"] if i.live]) == count - 1

    def test_pinned_inode_not_destroyed(self, world):
        def creator(ctx):
            for _ in range(4):
                yield from world.vfs_create(ctx, "ext4")

        run_threads(world, creator)
        victims = [i for i in world.inodes["ext4"] if i.live]
        for victim in victims:
            victim.pin()
        try:
            def unlinker(ctx):
                yield from world.vfs_unlink(ctx, "ext4")

            run_threads(world, unlinker)
            assert all(i.live for i in victims)
        finally:
            for victim in victims:
                victim.unpin()


class TestVfsReadWrite:
    def test_write_uses_size_protocol(self, world):
        inode = world.inodes["ext4"][0]

        def body(ctx):
            for _ in range(3):
                yield from world.vfs_write(ctx, inode)

        run_threads(world, body)
        _, table = import_world(world)
        seqs = dict(table.sequences("inode:ext4", "i_size", "w"))
        expected = (
            LockRef.es("i_rwsem", "inode"),
            LockRef.es("i_size_seqcount", "inode"),
        )
        assert expected in seqs

    def test_read_uses_seqcount(self, world):
        inode = world.inodes["ext4"][0]

        def body(ctx):
            yield from world.vfs_read(ctx, inode)

        run_threads(world, body)
        _, table = import_world(world)
        seqs = dict(table.sequences("inode:ext4", "i_size", "r"))
        assert (LockRef.es("i_size_seqcount", "inode", "r"),) in seqs


class TestConcurrency:
    def test_parallel_creates_do_not_corrupt(self, world):
        def creator(ctx):
            for _ in range(6):
                yield from world.vfs_create(ctx, "ext4")
                yield

        run_threads(world, creator, creator, creator)
        live = [i for i in world.inodes["ext4"] if i.live]
        assert len(live) >= 18

    def test_init_accesses_filtered(self, world):
        def creator(ctx):
            yield from world.vfs_create(ctx, "tmpfs")

        run_threads(world, creator)
        db, _ = import_world(world)
        init_filtered = db.filtered_counts().get("init_teardown", 0)
        assert init_filtered > 0


class TestExercise:
    def test_profile_blocks_disabled_subclass(self):
        w = VfsWorld(seed=3)
        w.boot(["debugfs"])
        inode = w.inodes["debugfs"][0]

        def body(ctx):
            for _ in range(50):
                yield from w.exercise(ctx, "inode", inode)

        run_threads(w, body)
        db, table = import_world(w)
        # near-zero exercise rate: almost no kept accesses
        kept = [a for a in db.kept_accesses() if a.type_key == "inode:debugfs"]
        assert len(kept) < 25
