"""Unit tests for the spec-driven operation engine."""

import random

import pytest

from repro.core.observations import ObservationTable
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.vfs.groundtruth import build_all_specs
from repro.kernel.vfs.layouts import build_struct_registry
from repro.kernel.vfs.ops import OpEngine
from repro.kernel.vfs.spec import LockTok, MemberSpec, TypeSpec
from repro.kernel.structs import Member, StructDef, StructRegistry


def tiny_world():
    struct = StructDef(
        "thing",
        [
            Member.scalar("x", 8),
            Member.scalar("y", 8),
            Member.scalar("z", 8),
            Member.lock("lk", "spinlock_t"),
        ],
    )
    spec = TypeSpec(
        "thing",
        [
            MemberSpec("x", read=(LockTok.es("lk"),), write=(LockTok.es("lk"),),
                       group="g"),
            MemberSpec("y", write=(LockTok.es("lk"),), group="g",
                       write_skip=0.5),
            MemberSpec("z"),
        ],
    )
    rt = KernelRuntime(StructRegistry([struct]))
    engine = OpEngine(rt, {"thing": spec}, random.Random(0), combo_rate=0.0)
    return rt, engine


def test_synthesis_buckets_by_rule_and_skip():
    rt, engine = tiny_world()
    ops = engine.ops_by_type["thing"]
    write_g = [op for op in ops if op.group == "g" and op.access_type == "w"]
    # x (skip 0) and y (skip 0.5) must not share an op.
    assert len(write_g) == 2
    assert {op.skip for op in write_g} == {0.0, 0.5}


def test_run_op_accesses_members_under_rule():
    rt, engine = tiny_world()
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "thing")
    op = next(
        op for op in engine.ops_by_type["thing"]
        if op.access_type == "w" and op.skip == 0.0 and op.group == "g"
    )
    rt.run(engine.run_op(ctx, obj, op))
    db = import_tracer(rt.tracer, rt.structs)
    table = ObservationTable.from_database(db)
    seqs = table.sequences("thing", "x", "w")
    assert [r.format() for r in seqs[0][0]] == ["ES(lk in thing)"]


def test_deviant_twin_drops_single_lock():
    rt, engine = tiny_world()
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "thing")
    op = next(
        op for op in engine.ops_by_type["thing"]
        if op.access_type == "w" and op.skip == 0.5
    )
    for _ in range(40):
        rt.run(engine.run_op(ctx, obj, op))
    assert engine.deviated > 0
    db = import_tracer(rt.tracer, rt.structs)
    table = ObservationTable.from_database(db)
    seqs = dict(table.sequences("thing", "y", "w"))
    assert () in seqs  # deviant lock-free writes present
    assert any(seq for seq in seqs if seq)  # clean writes present too


def test_skip_scale_zero_silences_deviations():
    rt, engine = tiny_world()
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "thing")
    op = next(
        op for op in engine.ops_by_type["thing"]
        if op.access_type == "w" and op.skip == 0.5
    )
    for _ in range(40):
        rt.run(engine.run_op(ctx, obj, op, skip_scale=0.0))
    assert engine.deviated == 0


def test_zero_weight_members_get_no_ops():
    struct = StructDef("s", [Member.scalar("a", 8)])
    spec = TypeSpec("s", [MemberSpec("a", weight=1.0, read_weight=0.0,
                                     write_weight=0.0)])
    rt = KernelRuntime(StructRegistry([struct]))
    engine = OpEngine(rt, {"s": spec}, random.Random(0))
    assert engine.ops_by_type["s"] == []


def test_profile_rate_gating_in_pick():
    rt, engine = tiny_world()
    profile = {"_default": 0.0, "g": 1.0, "_reads": 0.0, "_writes": 1.0}
    for _ in range(20):
        op = engine.pick_op("thing", profile)
        assert op is not None
        assert op.group == "g" and op.access_type == "w"


def test_pick_with_all_zero_profile():
    rt, engine = tiny_world()
    assert engine.pick_op("thing", {"_default": 0.0}) is None


def test_full_specs_synthesize_for_all_types():
    rt = KernelRuntime(build_struct_registry())
    engine = OpEngine(rt, build_all_specs(), random.Random(0))
    assert set(engine.ops_by_type) == set(build_all_specs())
    for ops in engine.ops_by_type.values():
        assert ops  # every type has at least one op


def test_via_op_bails_without_reference():
    registry = build_struct_registry()
    rt = KernelRuntime(registry)
    specs = build_all_specs()
    engine = OpEngine(rt, specs, random.Random(0), combo_rate=0.0)
    ctx = rt.new_task("t")
    inode = rt.new_object(ctx, "inode", subclass="ext4")  # no refs wired
    op = next(
        op for op in engine.ops_by_type["inode"]
        if any(t.kind == "via" for t in op.tokens)
    )
    before = len(rt.tracer.events)
    rt.run(engine.run_op(ctx, inode, op))
    after = len(rt.tracer.events)
    assert before == after  # bailed out, no accesses recorded


def test_lockfree_alt_path():
    struct = StructDef("s", [Member.scalar("a", 8), Member.lock("lk", "spinlock_t")])
    spec = TypeSpec("s", [MemberSpec("a", read=(LockTok.es("lk"),),
                                     lockfree_alt=0.5)])
    rt = KernelRuntime(StructRegistry([struct]))
    engine = OpEngine(rt, {"s": spec}, random.Random(3), combo_rate=0.0)
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "s")
    op = next(op for op in engine.ops_by_type["s"] if op.access_type == "r")
    assert op.lockfree_alt == 0.5
    for _ in range(40):
        rt.run(engine.run_op(ctx, obj, op))
    db = import_tracer(rt.tracer, rt.structs)
    table = ObservationTable.from_database(db)
    seqs = dict(table.sequences("s", "a", "r"))
    assert () in seqs and len(seqs) == 2
    assert engine.deviated == 0  # alt path is not a deviation
