"""Tests for the hand-written kernel functions (the paper's famous
code paths): each must produce exactly the lock observations the
evaluation section builds on."""

import pytest

from repro.core.lockrefs import LockRef
from repro.core.observations import ObservationTable
from repro.db.importer import import_tracer
from repro.kernel.vfs import bufferhead, dentry as dops, inode as iops, jbd2, pipe as pops
from repro.kernel.vfs.fs import VfsWorld
from repro.kernel.vfs.groundtruth import build_filter_config


@pytest.fixture
def world():
    w = VfsWorld(seed=7)
    w.boot(["ext4"])
    return w


def table_of(world):
    db = import_tracer(world.rt.tracer, world.rt.structs, build_filter_config())
    return ObservationTable.from_database(db)


def seqs_fmt(table, type_key, member, access):
    return {
        tuple(r.format() for r in seq): count
        for seq, count in table.sequences(type_key, member, access)
    }


class TestInodeHash:
    def test_remove_writes_neighbors_with_foreign_lock(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        inode = world.inodes["ext4"][0]
        neighbor = world.inodes["ext4"][1]
        rt.run(iops.remove_inode_hash(rt, ctx, inode, [neighbor]))
        table = table_of(world)
        seqs = seqs_fmt(table, "inode:ext4", "i_hash", "w")
        assert ("inode_hash_lock", "ES(i_lock in inode)") in seqs  # self
        assert ("inode_hash_lock", "EO(i_lock in inode)") in seqs  # neighbor

    def test_find_inode_reads_under_hash_lock(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        rt.run(iops.find_inode(rt, ctx, world.inodes["ext4"][:3], with_i_lock=False))
        table = table_of(world)
        seqs = seqs_fmt(table, "inode:ext4", "i_hash", "r")
        assert ("inode_hash_lock",) in seqs


class TestInodeFlags:
    def test_locked_path(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        inode = world.inodes["ext4"][0]
        rt.run(iops.inode_set_flags(rt, ctx, inode, locked=True))
        table = table_of(world)
        seqs = seqs_fmt(table, "inode:ext4", "i_flags", "w")
        assert ("ES(i_rwsem in inode)",) in seqs

    def test_cmpxchg_path_is_lockless(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        inode = world.inodes["ext4"][0]
        rt.run(iops.inode_set_flags(rt, ctx, inode, locked=False))
        table = table_of(world)
        assert () in dict(table.sequences("inode:ext4", "i_flags", "w"))


class TestInodeLru:
    def test_two_legitimate_paths(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        inode = world.inodes["ext4"][0]
        rt.run(iops.inode_lru_add(rt, ctx, inode, with_i_lock=True))
        rt.run(iops.inode_lru_add(rt, ctx, inode, with_i_lock=False))
        table = table_of(world)
        seqs = seqs_fmt(table, "inode:ext4", "i_lru", "w")
        assert ("ES(i_lock in inode)", "inode_lru_lock") in seqs
        assert ("inode_lru_lock",) in seqs


class TestISize:
    def test_write_protocol(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        inode = world.inodes["ext4"][0]
        rt.run(iops.i_size_write(rt, ctx, inode))
        table = table_of(world)
        seqs = seqs_fmt(table, "inode:ext4", "i_size", "w")
        assert ("ES(i_rwsem in inode)", "ES(i_size_seqcount in inode)") in seqs

    def test_fsstack_copy_reads_lockless(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        src, dst = world.inodes["ext4"][:2]
        rt.run(iops.fsstack_copy_inode_size(rt, ctx, dst, src))
        table = table_of(world)
        assert () in dict(table.sequences("inode:ext4", "i_size", "r"))


class TestBufferHead:
    def test_end_io_under_irq_lock(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        bh = world.new_buffer_head(ctx, world.inodes["ext4"][0])
        rt.run(bufferhead.end_buffer_async_write(rt, ctx, bh))
        table = table_of(world)
        seqs = seqs_fmt(table, "buffer_head", "b_state", "w")
        assert ("hardirq", "ES(b_uptodate_lock in buffer_head)") in seqs

    def test_touch_buffer_is_lockless(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        bh = world.new_buffer_head(ctx, world.inodes["ext4"][0])
        rt.run(bufferhead.touch_buffer(rt, ctx, bh))
        table = table_of(world)
        assert () in dict(table.sequences("buffer_head", "b_state", "w"))

    def test_associate_uses_inode_private_lock(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        bh = world.new_buffer_head(ctx, world.inodes["ext4"][0])
        rt.run(bufferhead.buffer_associate(rt, ctx, bh))
        table = table_of(world)
        seqs = seqs_fmt(table, "buffer_head", "b_assoc_buffers", "w")
        assert ("EO(i_data.private_lock in inode)",) in seqs


class TestJbd2:
    def test_commit_state_under_write_lock(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        txn = world.transactions[0]
        rt.run(jbd2.jbd2_journal_commit_transaction(rt, ctx, world.journal, txn))
        table = table_of(world)
        seqs = seqs_fmt(table, "journal_t", "j_commit_sequence", "w")
        assert ("ES(j_state_lock in journal_t)",) in seqs
        txn_seqs = seqs_fmt(table, "transaction_t", "t_state", "w")
        assert ("EO(j_state_lock in journal_t)",) in txn_seqs

    def test_writepages_peek_writes_under_read_lock(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        inode = world.inodes["ext4"][0]
        rt.run(jbd2.ext4_writepages_peek(rt, ctx, inode, world.journal))
        table = table_of(world)
        seqs = seqs_fmt(table, "journal_t", "j_committing_transaction", "w")
        assert (
            "EO(i_rwsem in inode):r",
            "ES(j_state_lock in journal_t):r",
        ) in seqs

    def test_journal_head_blist_protocol(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        bh = world.new_buffer_head(ctx, world.inodes["ext4"][0])
        jh = world.new_journal_head(ctx, bh)
        rt.run(jbd2.jbd2_journal_add_journal_head(rt, ctx, jh, world.journal))
        table = table_of(world)
        seqs = seqs_fmt(table, "journal_head", "b_transaction", "w")
        assert (
            "ES(b_state_lock in journal_head)",
            "EO(j_list_lock in journal_t)",
        ) in seqs


class TestDentry:
    def test_d_move_under_rename_lock(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        d = world.root_dentries["ext4"]
        rt.run(dops.d_move(rt, ctx, d))
        table = table_of(world)
        seqs = seqs_fmt(table, "dentry", "d_parent", "w")
        assert ("rename_lock", "ES(d_lock in dentry)") in seqs

    def test_simple_dir_walk_violating_shape(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        d = world.root_dentries["ext4"]
        dir_inode = world.root_inodes["ext4"]
        rt.run(dops.simple_dir_walk(rt, ctx, dir_inode, d))
        table = table_of(world)
        seqs = seqs_fmt(table, "dentry", "d_subdirs", "r")
        assert ("EO(i_rwsem in inode):r", "rcu:r") in seqs

    def test_rcu_walk_lockless_reads(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        d = world.root_dentries["ext4"]
        rt.run(dops.rcu_walk_lookup(rt, ctx, d))
        table = table_of(world)
        assert ("rcu:r",) in seqs_fmt(table, "dentry", "d_name", "r")


class TestPipe:
    def test_ring_ops_under_mutex(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        pipe = world.new_pipe(ctx)
        rt.run(pops.pipe_write(rt, ctx, pipe))
        rt.run(pops.pipe_read(rt, ctx, pipe))
        table = table_of(world)
        seqs = seqs_fmt(table, "pipe_inode_info", "nrbufs", "w")
        assert ("ES(mutex in pipe_inode_info)",) in seqs

    def test_poll_fast_path_lockless(self, world):
        rt = world.rt
        ctx = rt.new_task("t")
        pipe = world.new_pipe(ctx)
        rt.run(pops.pipe_poll_fast(rt, ctx, pipe))
        table = table_of(world)
        assert () in dict(table.sequences("pipe_inode_info", "readers", "r"))
