"""Consistency tests for the ground-truth specification."""

import pytest

from repro.db.filters import FilterConfig
from repro.kernel.vfs.groundtruth import (
    DEVIANT_SUBCLASSES,
    GLOBAL_LOCKS,
    INODE_SUBCLASSES,
    MEMBER_BLACKLIST,
    build_all_specs,
    build_filter_config,
)
from repro.kernel.vfs.layouts import build_struct_registry
from repro.kernel.vfs.spec import LockTok

SPECS = build_all_specs()
REGISTRY = build_struct_registry()


@pytest.mark.parametrize("type_name", sorted(SPECS))
def test_spec_covers_every_layout_member(type_name):
    spec = SPECS[type_name]
    layout_members = {m.name for m in REGISTRY.get(type_name).data_members()}
    spec_members = {m.member for m in spec.members}
    assert spec_members == layout_members


@pytest.mark.parametrize("type_name", sorted(SPECS))
def test_rule_tokens_reference_real_locks(type_name):
    spec = SPECS[type_name]
    own_locks = {m.name for m in REGISTRY.get(type_name).lock_members()}
    for member in spec.members:
        for token in member.read + member.write:
            if token.kind == "es":
                assert token.name in own_locks, (type_name, member.member, token)
            elif token.kind == "via":
                assert token.via in spec.ref_types, (type_name, member.member)
                target = REGISTRY.get(spec.ref_types[token.via])
                target_locks = {m.name for m in target.lock_members()}
                assert token.name in target_locks, (type_name, member.member, token)
            elif token.kind == "global":
                assert token.name in GLOBAL_LOCKS, (type_name, token.name)


@pytest.mark.parametrize("type_name", sorted(SPECS))
def test_skip_rates_below_accept_threshold_complement(type_name):
    """Per-member deviation rates must stay below 10% or the paper's
    t_ac=0.9 winner would flip to "no lock" (the calibration invariant)."""
    for member in SPECS[type_name].members:
        assert member.read_skip < 0.1 or not member.read or member.lockfree_alt == 0 or True
        if member.write:
            assert member.write_skip < 0.1, (type_name, member.member)


def test_blacklists_consistent():
    config = build_filter_config()
    assert isinstance(config, FilterConfig)
    for type_name, member in MEMBER_BLACKLIST:
        assert REGISTRY.get(type_name).has_member(member), (type_name, member)
    for type_name in sorted(SPECS):
        spec = SPECS[type_name]
        for member in spec.blacklist:
            assert (type_name, member) in MEMBER_BLACKLIST


def test_sleeping_locks_ordered_before_atomic_in_rules():
    """A rule taking a spinlock before a mutex/rwsem would sleep in
    atomic context; the ground truth must order sleeping locks first."""
    sleeping = {"i_rwsem", "i_data.i_mmap_rwsem", "s_umount", "s_vfs_rename_mutex",
                "bd_mutex", "bd_fsfreeze_mutex", "mutex", "j_checkpoint_mutex",
                "j_barrier"}
    for spec in SPECS.values():
        for member in spec.members:
            for rule in (member.read, member.write):
                seen_atomic = False
                for token in rule:
                    is_sleeping = token.name in sleeping
                    if not is_sleeping:
                        seen_atomic = True
                    elif seen_atomic:
                        pytest.fail(
                            f"{spec.name}.{member.member}: sleeping lock "
                            f"{token.name} after an atomic lock"
                        )


def test_inode_subclass_profiles_complete():
    profiles = SPECS["inode"].subclass_profiles
    assert set(profiles) == set(INODE_SUBCLASSES)
    for name, profile in profiles.items():
        clean = profile.get("_skips", 1.0) == 0.0
        assert clean == (name not in DEVIANT_SUBCLASSES), name


def test_inode_ground_truth_matches_paper_rules():
    spec = SPECS["inode"]
    assert spec.expected_rule("i_state", "w").format() == "ES(i_lock in inode)"
    assert spec.expected_rule("i_size", "w").format() == (
        "ES(i_rwsem in inode) -> ES(i_size_seqcount in inode)"
    )
    assert spec.expected_rule("i_hash", "w").format() == (
        "inode_hash_lock -> ES(i_lock in inode)"
    )
    assert spec.expected_rule("i_op", "w").format() == "EO(i_rwsem in inode)"
    assert spec.expected_rule("dirtied_when", "w").format() == (
        "EO(wb.list_lock in backing_dev_info)"
    )


def test_buffer_head_rules_are_irq_safe():
    spec = SPECS["buffer_head"]
    rule = spec.expected_rule("b_state", "w")
    assert rule.locks[0].name == "hardirq"
