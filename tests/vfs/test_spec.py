"""Unit tests for the locking-spec model (LockTok / MemberSpec / TypeSpec)."""

import pytest

from repro.core.lockrefs import LockRef
from repro.kernel.vfs.spec import LockTok, MemberSpec, TypeSpec


class TestLockTok:
    def test_es_refs(self):
        tok = LockTok.es("i_lock")
        refs = tok.expected_refs({"<self>": "inode"})
        assert refs == [LockRef.es("i_lock", "inode")]

    def test_via_refs(self):
        tok = LockTok.via_("i_sb", "s_umount", mode="r")
        refs = tok.expected_refs({"<self>": "inode", "i_sb": "super_block"})
        assert refs == [LockRef.eo("s_umount", "super_block", "r")]

    def test_global_refs(self):
        tok = LockTok.global_("inode_hash_lock")
        assert tok.expected_refs({"<self>": "inode"}) == [
            LockRef.global_("inode_hash_lock")
        ]

    def test_irq_flavor_adds_pseudo(self):
        tok = LockTok.es("b_uptodate_lock", flavor="irq")
        refs = tok.expected_refs({"<self>": "buffer_head"})
        assert refs[0] == LockRef.global_("hardirq")
        assert refs[1] == LockRef.es("b_uptodate_lock", "buffer_head")

    def test_bh_flavor_adds_pseudo(self):
        tok = LockTok.es("l", flavor="bh")
        refs = tok.expected_refs({"<self>": "t"})
        assert refs[0] == LockRef.global_("softirq")

    def test_rcu(self):
        assert LockTok.rcu().expected_refs({"<self>": "t"}) == [
            LockRef.global_("rcu", "r")
        ]


class TestMemberSpec:
    def test_expected_rule(self):
        spec = MemberSpec(
            "i_hash",
            read=(LockTok.global_("inode_hash_lock"),),
            write=(LockTok.global_("inode_hash_lock"), LockTok.es("i_lock")),
        )
        write_rule = spec.expected_rule("w", {"<self>": "inode"})
        assert write_rule.format() == "inode_hash_lock -> ES(i_lock in inode)"
        read_rule = spec.expected_rule("r", {"<self>": "inode"})
        assert read_rule.format() == "inode_hash_lock"

    def test_weight_overrides(self):
        spec = MemberSpec("m", weight=2.0, read_weight=0.0)
        assert spec.weight_for("r") == 0.0
        assert spec.weight_for("w") == 2.0

    def test_duplicate_pseudo_collapsed(self):
        spec = MemberSpec(
            "m",
            write=(LockTok.es("a", flavor="irq"), LockTok.es("b", flavor="irq")),
        )
        rule = spec.expected_rule("w", {"<self>": "t"})
        hardirqs = [r for r in rule.locks if r.name == "hardirq"]
        assert len(hardirqs) == 1


class TestTypeSpec:
    def test_duplicate_member_rejected(self):
        with pytest.raises(ValueError):
            TypeSpec("t", [MemberSpec("a"), MemberSpec("a")])

    def test_groups(self):
        spec = TypeSpec(
            "t",
            [MemberSpec("a", group="g"), MemberSpec("b", group="g"), MemberSpec("c")],
        )
        groups = spec.groups()
        assert {m.member for m in groups["g"]} == {"a", "b"}
        assert "_c" in groups

    def test_owner_types_includes_self(self):
        spec = TypeSpec("inode", [MemberSpec("a")], ref_types={"i_sb": "super_block"})
        owners = spec.owner_types()
        assert owners["<self>"] == "inode"
        assert owners["i_sb"] == "super_block"
