"""Unit tests for the VFS struct layouts."""

import pytest

from repro.kernel.structs import MemberKind
from repro.kernel.vfs.layouts import (
    BUILDERS,
    EXPECTED_MEMBER_COUNTS,
    build_struct_registry,
)


@pytest.mark.parametrize("type_name", sorted(EXPECTED_MEMBER_COUNTS))
def test_member_counts_match_tab6(type_name):
    struct = BUILDERS[type_name]()
    assert len(struct.data_members()) == EXPECTED_MEMBER_COUNTS[type_name]


def test_registry_contains_all_eleven_types():
    registry = build_struct_registry()
    assert len(registry.names()) == 11


@pytest.mark.parametrize(
    "type_name,lock",
    [
        ("inode", "i_lock"),
        ("inode", "i_rwsem"),
        ("inode", "i_size_seqcount"),
        ("inode", "i_data.tree_lock"),
        ("dentry", "d_lock"),
        ("dentry", "d_seq"),
        ("super_block", "s_umount"),
        ("buffer_head", "b_uptodate_lock"),
        ("backing_dev_info", "wb.list_lock"),
        ("journal_t", "j_state_lock"),
        ("journal_t", "j_list_lock"),
        ("transaction_t", "t_handle_lock"),
        ("journal_head", "b_state_lock"),
        ("pipe_inode_info", "mutex"),
        ("block_device", "bd_mutex"),
    ],
)
def test_expected_embedded_locks_present(type_name, lock):
    registry = build_struct_registry()
    names = {m.name for m in registry.get(type_name).lock_members()}
    assert lock in names


def test_cdev_has_no_embedded_locks():
    registry = build_struct_registry()
    assert registry.get("cdev").lock_members() == []


def test_inode_union_unrolled():
    """The i_pipe/i_bdev/i_cdev union members have distinct offsets."""
    inode = build_struct_registry().get("inode")
    offsets = {inode.offset_of(m) for m in ("i_pipe", "i_bdev", "i_cdev")}
    assert len(offsets) == 3


def test_paper_tab5_members_exist():
    inode = build_struct_registry().get("inode")
    for member in ("i_bytes", "i_state", "i_hash", "i_blocks", "i_lru", "i_size"):
        assert inode.has_member(member)


def test_fig8_members_exist():
    inode = build_struct_registry().get("inode")
    for member in ("i_data.a_ops", "i_data.gfp_mask", "i_data.writeback_index",
                   "dirtied_when", "i_io_list", "i_rdev", "i_generation"):
        assert inode.has_member(member)


def test_atomic_members_marked():
    inode = build_struct_registry().get("inode")
    atomics = {m.name for m in inode.data_members() if m.kind == MemberKind.ATOMIC}
    assert atomics == {"i_count", "i_dio_count", "i_writecount", "i_readcount"}
