"""Smoke tests: every shipped example runs end-to-end.

Each example is executed in-process (importing its module and calling
``main``) at a small workload scale; stdout must contain the landmark
lines a reader would look for.
"""

import importlib.util
import io
import pathlib
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main(*args)
    return buffer.getvalue()


def test_quickstart():
    out = run_example("quickstart")
    assert "LockDoc winner: ES(sec_lock in clock) -> ES(min_lock in clock)" in out
    assert "1 rule violation(s) found" in out


def test_custom_subsystem():
    out = run_example("custom_subsystem")
    assert "ES(q_lock in msg_queue) protects (write)" in out
    assert "mq_debug_dump" in out or "violating access" in out


def test_mine_vfs_rules():
    out = run_example("mine_vfs_rules", 1.5)
    assert "mined vs. ground truth" in out
    assert "[ok] i_state" in out
    assert "inode:ext4 locking rules:" in out


def test_find_locking_bugs():
    out = run_example("find_locking_bugs", 1.5)
    assert "rule violations per data type" in out
    assert "expected:" in out


def test_check_documentation():
    out = run_example("check_documentation", 1.5)
    assert "documented-rule validation" in out
    assert "consistently followed:" in out


def test_lockdep_and_patches():
    out = run_example("lockdep_and_patches", 1.5)
    assert "lock-order graph" in out
    assert "documentation patch for struct inode" in out
    assert "SQL violation query" in out or "SQLite export" in out
