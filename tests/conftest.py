"""Shared fixtures.

The expensive fixtures (the benchmark-mix pipeline, the clock trace)
are session-scoped: the suite runs the workload once and every shape
test reads from it, exactly like the paper analyzed one recorded trace.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import get_pipeline
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import Member, StructDef, StructRegistry

#: Scale used by the shared test pipeline — statistics-bearing tests
#: need a reasonably deep trace; heavier sweeps live in benchmarks/.
TEST_SCALE = 18.0


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_cache(tmp_path_factory):
    """Point the on-disk trace cache at a session-private directory.

    Keeps the suite hermetic: no reads from (or writes to) the user's
    ``~/.cache/lockdoc-repro``, and no cross-session coupling through
    stale cached artifacts.
    """
    os.environ["LOCKDOC_CACHE_DIR"] = str(tmp_path_factory.mktemp("trace-cache"))
    yield


@pytest.fixture(scope="session")
def pipeline():
    """The shared benchmark-mix pipeline (seed 0)."""
    return get_pipeline(seed=0, scale=TEST_SCALE)


@pytest.fixture(scope="session")
def derivation(pipeline):
    """Rule-derivation results at the default accept threshold."""
    return pipeline.derive()


@pytest.fixture(scope="session")
def clock_trace():
    """The Fig. 4 clock example trace (1000 ticks + 1 faulty)."""
    from repro.experiments.tab1 import record_clock_trace

    return record_clock_trace(1000)


def make_pair_struct(name: str = "pair") -> StructDef:
    """A tiny two-member struct with two spinlocks (test workhorse)."""
    return StructDef(
        name,
        [
            Member.scalar("a", 8),
            Member.scalar("b", 8),
            Member.lock("lock_a", "spinlock_t"),
            Member.lock("lock_b", "spinlock_t"),
        ],
    )


@pytest.fixture
def pair_runtime():
    """Fresh runtime with the pair struct registered."""
    registry = StructRegistry([make_pair_struct()])
    return KernelRuntime(registry)
