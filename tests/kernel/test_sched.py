"""Unit tests for the cooperative scheduler."""

import pytest

from repro.kernel.context import ContextKind
from repro.kernel.errors import DeadlockError, KernelError
from repro.kernel.runtime import KernelRuntime
from repro.kernel.sched import Scheduler
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct


@pytest.fixture
def rt():
    return KernelRuntime(StructRegistry([make_pair_struct()]))


def test_threads_run_to_completion(rt):
    log = []

    def body(name):
        def run(ctx):
            for i in range(3):
                log.append((name, i))
                yield

        return run

    scheduler = Scheduler(rt, seed=1)
    scheduler.spawn("a", body("a"))
    scheduler.spawn("b", body("b"))
    scheduler.run()
    assert sorted(log) == [(n, i) for n in "ab" for i in range(3)]


def test_interleaving_is_deterministic(rt):
    def trace_for(seed):
        runtime = KernelRuntime(StructRegistry([make_pair_struct()]))
        order = []

        def body(name):
            def run(ctx):
                for _ in range(5):
                    order.append(name)
                    yield

            return run

        scheduler = Scheduler(runtime, seed=seed)
        scheduler.spawn("a", body("a"))
        scheduler.spawn("b", body("b"))
        scheduler.run()
        return order

    assert trace_for(7) == trace_for(7)


def test_seed_changes_interleaving(rt):
    def order_with(seed):
        runtime = KernelRuntime(StructRegistry([make_pair_struct()]))
        order = []

        def body(name):
            def run(ctx):
                for _ in range(10):
                    order.append(name)
                    yield

            return run

        scheduler = Scheduler(runtime, seed=seed)
        scheduler.spawn("a", body("a"))
        scheduler.spawn("b", body("b"))
        scheduler.run()
        return tuple(order)

    assert len({order_with(s) for s in range(5)}) > 1


def test_mutex_blocking_and_handoff(rt):
    mutex = rt.static_lock("m", "mutex")
    order = []

    def body(name):
        def run(ctx):
            yield from rt.mutex_lock(ctx, mutex)
            order.append((name, "locked"))
            yield  # hold across a preemption point
            order.append((name, "unlocking"))
            rt.mutex_unlock(ctx, mutex)

        return run

    scheduler = Scheduler(rt, seed=3)
    for name in ("a", "b", "c"):
        scheduler.spawn(name, body(name))
    scheduler.run()
    # Critical sections never interleave.
    for i in range(0, len(order), 2):
        assert order[i][0] == order[i + 1][0]
        assert order[i][1] == "locked" and order[i + 1][1] == "unlocking"


def test_deadlock_detection(rt):
    m1 = rt.static_lock("m1", "mutex")
    m2 = rt.static_lock("m2", "mutex")

    def grab(first, second):
        def run(ctx):
            yield from rt.mutex_lock(ctx, first)
            yield
            yield
            yield from rt.mutex_lock(ctx, second)
            rt.mutex_unlock(ctx, second)
            rt.mutex_unlock(ctx, first)

        return run

    found_deadlock = False
    for seed in range(12):
        runtime = KernelRuntime(StructRegistry([make_pair_struct()]))
        a = runtime.static_lock("m1", "mutex")
        b = runtime.static_lock("m2", "mutex")

        def grab2(first, second):
            def run(ctx):
                yield from runtime.mutex_lock(ctx, first)
                yield
                yield
                yield from runtime.mutex_lock(ctx, second)
                runtime.mutex_unlock(ctx, second)
                runtime.mutex_unlock(ctx, first)

            return run

        scheduler = Scheduler(runtime, seed=seed, max_burst=1)
        scheduler.spawn("ab", grab2(a, b))
        scheduler.spawn("ba", grab2(b, a))
        try:
            scheduler.run()
        except DeadlockError:
            found_deadlock = True
            break
    assert found_deadlock, "ABBA deadlock never materialized across seeds"


def test_atomic_sections_never_interleave(rt):
    """A spinlock holder is non-preemptable: no other thread's marker may
    appear between lock and unlock."""
    obj = rt.new_object(rt.new_task("boot"), "pair")
    lock = obj.lock("lock_a")
    order = []

    def body(name):
        def run(ctx):
            for _ in range(5):
                yield from rt.spin_lock(ctx, lock)
                order.append((name, "in"))
                yield  # even with an explicit yield inside the section
                order.append((name, "out"))
                rt.spin_unlock(ctx, lock)
                yield

        return run

    scheduler = Scheduler(rt, seed=5)
    scheduler.spawn("a", body("a"))
    scheduler.spawn("b", body("b"))
    scheduler.run()
    for i in range(0, len(order), 2):
        assert order[i][0] == order[i + 1][0]


def test_exit_holding_lock_rejected(rt):
    mutex = rt.static_lock("m", "mutex")

    def leaker(ctx):
        yield from rt.mutex_lock(ctx, mutex)

    scheduler = Scheduler(rt, seed=0)
    scheduler.spawn("leak", leaker)
    with pytest.raises(KernelError, match="exited holding"):
        scheduler.run()


def test_irq_injection(rt):
    fired = []

    def handler(ctx):
        assert ctx.kind == ContextKind.HARDIRQ
        fired.append(ctx.ctx_id)
        yield

    def body(ctx):
        for _ in range(200):
            yield

    scheduler = Scheduler(rt, seed=2)
    scheduler.spawn("main", body)
    source = scheduler.add_irq_source("timer", handler, rate=0.3)
    scheduler.run()
    assert source.fired > 0
    assert len(fired) == source.fired


def test_irq_not_injected_while_irqs_disabled(rt):
    interrupted_states = []

    def handler(ctx):
        parent = ctx.interrupted
        interrupted_states.append(parent.irq_disable_depth if parent else 0)
        yield

    def body(ctx):
        for _ in range(100):
            rt.local_irq_disable(ctx)
            yield
            yield
            rt.local_irq_enable(ctx)
            yield

    scheduler = Scheduler(rt, seed=4)
    scheduler.spawn("main", body)
    scheduler.add_irq_source("timer", handler, rate=0.5)
    scheduler.run()
    assert all(depth == 0 for depth in interrupted_states)


def test_softirq_not_injected_while_bh_disabled(rt):
    states = []

    def handler(ctx):
        parent = ctx.interrupted
        states.append(parent.bh_disable_depth if parent else 0)
        yield

    def body(ctx):
        for _ in range(100):
            rt.local_bh_disable(ctx)
            yield
            rt.local_bh_enable(ctx)
            yield

    scheduler = Scheduler(rt, seed=4)
    scheduler.spawn("main", body)
    scheduler.add_irq_source("bh", handler, rate=0.5, softirq=True)
    scheduler.run()
    assert all(depth == 0 for depth in states)


def test_irq_handler_leaking_lock_rejected(rt):
    mutex_free = rt.static_lock("s", "spinlock_t")

    def handler(ctx):
        yield from rt.spin_lock(ctx, mutex_free)
        # handler "forgets" to unlock

    def body(ctx):
        for _ in range(50):
            yield

    scheduler = Scheduler(rt, seed=1)
    scheduler.spawn("main", body)
    scheduler.add_irq_source("bad", handler, rate=1.0)
    with pytest.raises(KernelError, match="leaked"):
        scheduler.run()


def test_step_limit(rt):
    def forever(ctx):
        while True:
            yield

    scheduler = Scheduler(rt, seed=0)
    scheduler.spawn("spin", forever)
    with pytest.raises(Exception, match="exceeded"):
        scheduler.run(max_steps=100)
