"""Unit tests for the kernel runtime (objects, accesses, lock API)."""

import pytest

from repro.kernel.errors import KernelError, LockUsageError
from repro.kernel.locks import LockClass
from repro.kernel.runtime import Wait, pinned
from repro.tracing.events import AccessEvent, AllocEvent, FreeEvent, LockEvent


@pytest.fixture
def rt(pair_runtime):
    return pair_runtime


@pytest.fixture
def ctx(rt):
    return rt.new_task("worker")


class TestObjectLifecycle:
    def test_new_object_records_alloc(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        allocs = [e for e in rt.tracer.events if isinstance(e, AllocEvent)]
        assert len(allocs) == 1
        assert allocs[0].data_type == "pair"
        assert obj.live

    def test_embedded_locks_created(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        assert obj.lock("lock_a").lock_class == LockClass.SPINLOCK
        assert obj.lock("lock_a").address == obj.addr_of("lock_a")

    def test_unknown_lock_member(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        with pytest.raises(LockUsageError):
            obj.lock("nope")

    def test_delete_records_free(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        rt.delete_object(ctx, obj)
        frees = [e for e in rt.tracer.events if isinstance(e, FreeEvent)]
        assert len(frees) == 1
        assert not obj.live

    def test_delete_with_held_lock_rejected(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        with pytest.raises(LockUsageError, match="freeing"):
            rt.delete_object(ctx, obj)

    def test_subclass_recorded(self, rt, ctx):
        obj = rt.new_object(ctx, "pair", subclass="ext4")
        assert obj.subclass == "ext4"

    def test_lock_registry_cleaned_on_delete(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        lock_id = obj.lock("lock_a").lock_id
        rt.delete_object(ctx, obj)
        assert lock_id not in rt.locks_by_id


class TestAccesses:
    def test_read_event(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        rt.read(ctx, obj, "a")
        event = rt.tracer.events[-1]
        assert isinstance(event, AccessEvent)
        assert not event.is_write
        assert event.address == obj.addr_of("a")

    def test_write_stores_value(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        rt.write(ctx, obj, "b", value=42)
        assert rt.read(ctx, obj, "b") == 42

    def test_access_site_from_frame(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        with rt.function(ctx, "fn", "file.c", 10):
            rt.read(ctx, obj, "a")
            rt.read(ctx, obj, "a", line=99)
        events = [e for e in rt.tracer.events if isinstance(e, AccessEvent)]
        assert events[-2].file == "file.c" and events[-2].line == 10
        assert events[-1].line == 99

    def test_stack_interning(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        with rt.function(ctx, "fn", "file.c", 10):
            rt.read(ctx, obj, "a")
            rt.read(ctx, obj, "a")
        events = [e for e in rt.tracer.events if isinstance(e, AccessEvent)]
        assert events[-1].stack_id == events[-2].stack_id
        frames = rt.tracer.stack(events[-1].stack_id)
        assert frames[-1][0] == "fn"


class TestLockApi:
    def test_spin_lock_records_events(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        lock = obj.lock("lock_a")
        rt.run(rt.spin_lock(ctx, lock))
        rt.spin_unlock(ctx, lock)
        lock_events = [e for e in rt.tracer.events if isinstance(e, LockEvent)]
        assert [e.is_acquire for e in lock_events] == [True, False]
        assert lock_events[0].lock_id == lock.lock_id

    def test_wrong_primitive_rejected(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        with pytest.raises(LockUsageError, match="mutex_lock"):
            rt.run(rt.mutex_lock(ctx, obj.lock("lock_a")))

    def test_spin_trylock(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        other = rt.new_task("other")
        assert rt.spin_trylock(ctx, obj.lock("lock_a"))
        assert not rt.spin_trylock(other, obj.lock("lock_a"))
        rt.spin_unlock(ctx, obj.lock("lock_a"))

    def test_spin_lock_irq_holds_pseudo(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        rt.run(rt.spin_lock_irq(ctx, obj.lock("lock_a")))
        held = [lock.name for lock in ctx.held_locks()]
        assert held == ["hardirq", "lock_a"]
        rt.spin_unlock_irq(ctx, obj.lock("lock_a"))
        assert ctx.held == []

    def test_spin_lock_bh_holds_pseudo(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        rt.run(rt.spin_lock_bh(ctx, obj.lock("lock_a")))
        assert [lock.name for lock in ctx.held_locks()] == ["softirq", "lock_a"]
        rt.spin_unlock_bh(ctx, obj.lock("lock_a"))

    def test_rcu_nesting_records_once(self, rt, ctx):
        rt.rcu_read_lock(ctx)
        rt.rcu_read_lock(ctx)
        rt.rcu_read_unlock(ctx)
        rt.rcu_read_unlock(ctx)
        lock_events = [e for e in rt.tracer.events if isinstance(e, LockEvent)]
        assert len(lock_events) == 2  # one acquire + one release

    def test_irq_disable_nesting_records_once(self, rt, ctx):
        rt.local_irq_disable(ctx)
        rt.local_irq_disable(ctx)
        rt.local_irq_enable(ctx)
        assert ctx.irq_disable_depth == 1
        rt.local_irq_enable(ctx)
        lock_events = [e for e in rt.tracer.events if isinstance(e, LockEvent)]
        assert len(lock_events) == 2

    def test_unbalanced_enable_rejected(self, rt, ctx):
        with pytest.raises(LockUsageError, match="unbalanced"):
            rt.local_bh_enable(ctx)

    def test_static_lock_is_singleton(self, rt):
        a = rt.static_lock("global_l", "spinlock_t")
        b = rt.static_lock("global_l", "spinlock_t")
        assert a is b
        assert a.is_static

    def test_sleeping_lock_in_atomic_context_rejected(self, rt, ctx):
        registry = rt.structs
        obj = rt.new_object(ctx, "pair")
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        mutex = rt.static_lock("m", "mutex")
        with pytest.raises(LockUsageError, match="holding a spinlock"):
            rt.run(rt.mutex_lock(ctx, mutex))

    def test_sleeping_lock_with_irqs_off_rejected(self, rt, ctx):
        mutex = rt.static_lock("m", "mutex")
        rt.local_irq_disable(ctx)
        with pytest.raises(LockUsageError, match="disabled"):
            rt.run(rt.mutex_lock(ctx, mutex))

    def test_inline_run_raises_on_contention(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        other = rt.new_task("other")
        mutex = rt.static_lock("m", "mutex")
        rt.run(rt.mutex_lock(ctx, mutex))
        with pytest.raises(KernelError, match="blocked"):
            rt.run(rt.mutex_lock(other, mutex))


class TestPinning:
    def test_pin_unpin(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        with pinned(obj):
            assert obj.pinned
        assert not obj.pinned

    def test_unbalanced_unpin(self, rt, ctx):
        obj = rt.new_object(ctx, "pair")
        with pytest.raises(KernelError):
            obj.unpin()


class TestWaitToken:
    def test_ready_probe(self, rt, ctx):
        from repro.kernel.locks import LockMode

        mutex = rt.static_lock("m", "mutex")
        wait = Wait(mutex, LockMode.EXCLUSIVE)
        assert wait.ready(ctx)
        rt.run(rt.mutex_lock(ctx, mutex))
        other = rt.new_task("o")
        assert not Wait(mutex, LockMode.EXCLUSIVE).ready(other)
