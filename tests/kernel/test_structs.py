"""Unit tests for the struct-layout model."""

import pytest

from repro.kernel.locks import LockClass
from repro.kernel.structs import (
    LOCK_SIZES,
    Member,
    MemberKind,
    StructDef,
    StructRegistry,
)


def build_nested():
    inner = StructDef(
        "inner",
        [Member.scalar("x", 8), Member.lock("ilock", "spinlock_t"), Member.scalar("y", 4)],
    )
    return StructDef(
        "outer",
        [
            Member.scalar("head", 8),
            Member.struct("sub", inner),
            Member.atomic("count"),
            Member.lock("olock", "mutex"),
        ],
    )


class TestMemberFactories:
    def test_scalar(self):
        m = Member.scalar("f", 4)
        assert m.kind == MemberKind.SCALAR and m.size == 4

    def test_atomic(self):
        m = Member.atomic("c")
        assert m.kind == MemberKind.ATOMIC

    def test_lock_size_from_class(self):
        m = Member.lock("l", "mutex")
        assert m.size == LOCK_SIZES[LockClass.MUTEX]
        assert m.lock_class == LockClass.MUTEX

    def test_lock_accepts_enum(self):
        m = Member.lock("l", LockClass.SPINLOCK)
        assert m.lock_class == LockClass.SPINLOCK


class TestStructDef:
    def test_sequential_offsets(self):
        s = StructDef("s", [Member.scalar("a", 8), Member.scalar("b", 4)])
        assert s.offset_of("a") == 0
        assert s.offset_of("b") == 8
        assert s.size == 12

    def test_nested_flattening(self):
        s = build_nested()
        assert s.has_member("sub.x")
        assert s.has_member("sub.ilock")
        assert s.offset_of("sub.x") == 8

    def test_member_at_offset(self):
        s = build_nested()
        member = s.member_at(s.offset_of("sub.y") + 1)
        assert member.name == "sub.y"

    def test_member_at_bad_offset(self):
        s = build_nested()
        with pytest.raises(KeyError):
            s.member_at(s.size + 10)

    def test_unknown_member(self):
        s = build_nested()
        with pytest.raises(KeyError):
            s.member("nope")

    def test_duplicate_member_rejected(self):
        with pytest.raises(ValueError):
            StructDef("d", [Member.scalar("a"), Member.scalar("a")])

    def test_lock_members(self):
        s = build_nested()
        names = {m.name for m in s.lock_members()}
        assert names == {"sub.ilock", "olock"}

    def test_data_members_exclude_locks(self):
        s = build_nested()
        names = {m.name for m in s.data_members()}
        assert "olock" not in names
        assert "count" in names  # atomics are data (filtered later)

    def test_every_offset_resolves(self):
        s = build_nested()
        for member in s.flat_members:
            for offset in (member.offset, member.end - 1):
                assert s.member_at(offset).name == member.name


class TestStructRegistry:
    def test_register_and_get(self):
        registry = StructRegistry([build_nested()])
        assert registry.get("outer").name == "outer"
        assert "outer" in registry

    def test_duplicate_rejected(self):
        registry = StructRegistry([build_nested()])
        with pytest.raises(ValueError):
            registry.register(build_nested())

    def test_unknown(self):
        registry = StructRegistry()
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_names_sorted(self):
        registry = StructRegistry(
            [StructDef("zz", [Member.scalar("a")]), StructDef("aa", [Member.scalar("a")])]
        )
        assert registry.names() == ["aa", "zz"]
