"""Unit and property tests for the allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.errors import DoubleFreeError, MemoryError_
from repro.kernel.memory import ALIGN, HEAP_BASE, Allocation, Allocator


class TestAllocation:
    def test_contains(self):
        a = Allocation(address=1000, size=64, data_type="t")
        assert a.contains(1000)
        assert a.contains(1063)
        assert not a.contains(1064)
        assert not a.contains(999)
        assert a.contains(1060, size=4)
        assert not a.contains(1060, size=5)

    def test_offset_of(self):
        a = Allocation(address=1000, size=64, data_type="t")
        assert a.offset_of(1000) == 0
        assert a.offset_of(1040) == 40

    def test_offset_outside_raises(self):
        a = Allocation(address=1000, size=64, data_type="t")
        with pytest.raises(Exception):
            a.offset_of(2000)


class TestAllocator:
    def test_alloc_basic(self):
        allocator = Allocator()
        a = allocator.alloc(40, "inode")
        assert a.address >= HEAP_BASE
        assert a.size == 40
        assert a.live

    def test_alignment(self):
        allocator = Allocator()
        a = allocator.alloc(3, "t")
        assert a.size % ALIGN == 0

    def test_zero_size_rejected(self):
        allocator = Allocator()
        with pytest.raises(MemoryError_):
            allocator.alloc(0, "t")

    def test_no_overlap(self):
        allocator = Allocator()
        allocations = [allocator.alloc(24, "t") for _ in range(20)]
        spans = sorted((a.address, a.address + a.size) for a in allocations)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_free_and_reuse(self):
        allocator = Allocator()
        a = allocator.alloc(64, "t")
        address = a.address
        allocator.free(a)
        assert not a.live
        b = allocator.alloc(64, "t")
        assert b.address == address  # address reuse (kmalloc cache style)
        assert b.alloc_id != a.alloc_id  # but a fresh identity

    def test_double_free(self):
        allocator = Allocator()
        a = allocator.alloc(64, "t")
        allocator.free(a)
        with pytest.raises(DoubleFreeError):
            allocator.free(a)

    def test_find_live_exact(self):
        allocator = Allocator()
        a = allocator.alloc(64, "t")
        assert allocator.find_live(a.address) is a

    def test_find_live_interior(self):
        allocator = Allocator()
        a = allocator.alloc(64, "t")
        assert allocator.find_live(a.address + 32) is a

    def test_find_live_dead(self):
        allocator = Allocator()
        a = allocator.alloc(64, "t")
        allocator.free(a)
        assert allocator.find_live(a.address) is None

    def test_static_segment_disjoint_from_heap(self):
        allocator = Allocator()
        heap = allocator.alloc(64, "t")
        static = allocator.alloc_static(8)
        assert allocator.is_static_address(static)
        assert not allocator.is_static_address(heap.address)

    def test_live_of_type(self):
        allocator = Allocator()
        allocator.alloc(8, "a")
        allocator.alloc(8, "b")
        allocator.alloc(8, "a")
        assert len(allocator.live_of_type("a")) == 2
        assert len(allocator.live_of_type("b")) == 1

    def test_counters(self):
        allocator = Allocator()
        a = allocator.alloc(8, "t")
        allocator.alloc(8, "t")
        allocator.free(a)
        assert allocator.alloc_count == 2
        assert allocator.free_count == 1


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=512), st.booleans()),
        min_size=1,
        max_size=60,
    )
)
def test_property_live_allocations_never_overlap(plan):
    """Whatever the alloc/free sequence, live allocations never overlap
    and interior lookups always resolve to the covering allocation."""
    allocator = Allocator()
    live = []
    for size, do_free in plan:
        allocation = allocator.alloc(size, "t")
        live.append(allocation)
        if do_free and len(live) > 1:
            victim = live.pop(0)
            allocator.free(victim)
    spans = sorted((a.address, a.address + a.size) for a in live)
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert end <= start
    for allocation in live:
        assert allocator.find_live(allocation.address + allocation.size - 1) is allocation
