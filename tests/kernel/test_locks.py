"""Unit tests for the lock primitives."""

import pytest

from repro.kernel.context import make_hardirq, make_softirq, make_task
from repro.kernel.errors import LockUsageError
from repro.kernel.locks import Lock, LockClass, LockMode, PseudoLocks


@pytest.fixture
def ctx():
    return make_task("t0")


@pytest.fixture
def other():
    return make_task("t1")


class TestSpinlock:
    def test_acquire_release(self, ctx):
        lock = Lock(LockClass.SPINLOCK, "l")
        assert lock.try_acquire(ctx, LockMode.EXCLUSIVE)
        assert lock.owner is ctx
        lock.release(ctx, LockMode.EXCLUSIVE)
        assert lock.is_free()

    def test_contention(self, ctx, other):
        lock = Lock(LockClass.SPINLOCK, "l")
        assert lock.try_acquire(ctx, LockMode.EXCLUSIVE)
        assert not lock.try_acquire(other, LockMode.EXCLUSIVE)

    def test_self_deadlock_detected(self, ctx):
        lock = Lock(LockClass.SPINLOCK, "l")
        assert lock.try_acquire(ctx, LockMode.EXCLUSIVE)
        with pytest.raises(LockUsageError, match="self-deadlock"):
            lock.try_acquire(ctx, LockMode.EXCLUSIVE)

    def test_no_shared_mode(self, ctx):
        lock = Lock(LockClass.SPINLOCK, "l")
        with pytest.raises(LockUsageError, match="no shared mode"):
            lock.try_acquire(ctx, LockMode.SHARED)

    def test_release_not_held(self, ctx):
        lock = Lock(LockClass.SPINLOCK, "l")
        with pytest.raises(LockUsageError):
            lock.release(ctx, LockMode.EXCLUSIVE)

    def test_release_by_non_owner(self, ctx, other):
        lock = Lock(LockClass.SPINLOCK, "l")
        lock.try_acquire(ctx, LockMode.EXCLUSIVE)
        with pytest.raises(LockUsageError):
            lock.release(other, LockMode.EXCLUSIVE)


class TestRwlock:
    def test_multiple_readers(self, ctx, other):
        lock = Lock(LockClass.RWLOCK, "l")
        assert lock.try_acquire(ctx, LockMode.SHARED)
        assert lock.try_acquire(other, LockMode.SHARED)
        assert lock.reader_count == 2

    def test_writer_excludes_readers(self, ctx, other):
        lock = Lock(LockClass.RWLOCK, "l")
        assert lock.try_acquire(ctx, LockMode.EXCLUSIVE)
        assert not lock.try_acquire(other, LockMode.SHARED)

    def test_readers_exclude_writer(self, ctx, other):
        lock = Lock(LockClass.RWLOCK, "l")
        assert lock.try_acquire(ctx, LockMode.SHARED)
        assert not lock.try_acquire(other, LockMode.EXCLUSIVE)

    def test_read_recursion_allowed(self, ctx):
        lock = Lock(LockClass.RWLOCK, "l")
        assert lock.try_acquire(ctx, LockMode.SHARED)
        assert lock.try_acquire(ctx, LockMode.SHARED)
        lock.release(ctx, LockMode.SHARED)
        assert lock.held_by(ctx)
        lock.release(ctx, LockMode.SHARED)
        assert lock.is_free()

    def test_upgrade_rejected(self, ctx):
        lock = Lock(LockClass.RWLOCK, "l")
        lock.try_acquire(ctx, LockMode.SHARED)
        with pytest.raises(LockUsageError, match="write-acquires"):
            lock.try_acquire(ctx, LockMode.EXCLUSIVE)

    def test_downgrade_rejected(self, ctx):
        lock = Lock(LockClass.RWLOCK, "l")
        lock.try_acquire(ctx, LockMode.EXCLUSIVE)
        with pytest.raises(LockUsageError, match="read-acquires"):
            lock.try_acquire(ctx, LockMode.SHARED)


class TestMutex:
    def test_exclusive(self, ctx, other):
        lock = Lock(LockClass.MUTEX, "m")
        assert lock.try_acquire(ctx, LockMode.EXCLUSIVE)
        assert not lock.try_acquire(other, LockMode.EXCLUSIVE)
        lock.release(ctx, LockMode.EXCLUSIVE)
        assert lock.try_acquire(other, LockMode.EXCLUSIVE)

    def test_sleeping_classification(self):
        assert LockClass.MUTEX.sleeping
        assert LockClass.RW_SEMAPHORE.sleeping
        assert LockClass.SEMAPHORE.sleeping
        assert not LockClass.SPINLOCK.sleeping
        assert not LockClass.RWLOCK.sleeping


class TestSemaphore:
    def test_counting(self, ctx, other):
        sem = Lock(LockClass.SEMAPHORE, "s", capacity=2)
        assert sem.try_acquire(ctx, LockMode.EXCLUSIVE)
        assert sem.try_acquire(other, LockMode.EXCLUSIVE)
        third = make_task("t2")
        assert not sem.try_acquire(third, LockMode.EXCLUSIVE)
        sem.release(ctx, LockMode.EXCLUSIVE)
        assert sem.try_acquire(third, LockMode.EXCLUSIVE)

    def test_overflow_up(self, ctx):
        sem = Lock(LockClass.SEMAPHORE, "s", capacity=1)
        with pytest.raises(LockUsageError, match="up"):
            sem.release(ctx, LockMode.EXCLUSIVE)


class TestRwSemaphore:
    def test_reader_writer(self, ctx, other):
        sem = Lock(LockClass.RW_SEMAPHORE, "rw")
        assert sem.try_acquire(ctx, LockMode.SHARED)
        assert not sem.try_acquire(other, LockMode.EXCLUSIVE)
        sem.release(ctx, LockMode.SHARED)
        assert sem.try_acquire(other, LockMode.EXCLUSIVE)


class TestSeqlock:
    def test_write_side_bumps_sequence(self, ctx):
        lock = Lock(LockClass.SEQLOCK, "s")
        start = lock.seq
        lock.try_acquire(ctx, LockMode.EXCLUSIVE)
        assert lock.seq == start + 1  # odd while writing
        lock.release(ctx, LockMode.EXCLUSIVE)
        assert lock.seq == start + 2  # even when done

    def test_reader_blocked_by_writer(self, ctx, other):
        lock = Lock(LockClass.SEQLOCK, "s")
        lock.try_acquire(ctx, LockMode.EXCLUSIVE)
        assert not lock.try_acquire(other, LockMode.SHARED)

    def test_readers_concurrent(self, ctx, other):
        lock = Lock(LockClass.SEQLOCK, "s")
        assert lock.try_acquire(ctx, LockMode.SHARED)
        assert lock.try_acquire(other, LockMode.SHARED)


class TestRcu:
    def test_nesting(self, ctx):
        rcu = Lock(LockClass.RCU, "rcu", is_static=True)
        assert rcu.try_acquire(ctx, LockMode.SHARED)
        assert rcu.try_acquire(ctx, LockMode.SHARED)
        rcu.release(ctx, LockMode.SHARED)
        assert rcu.held_by(ctx)
        rcu.release(ctx, LockMode.SHARED)
        assert not rcu.held_by(ctx)

    def test_many_concurrent_readers(self):
        rcu = Lock(LockClass.RCU, "rcu", is_static=True)
        contexts = [make_task(f"t{i}") for i in range(10)]
        for c in contexts:
            assert rcu.try_acquire(c, LockMode.SHARED)
        assert rcu.reader_count == 10


class TestPseudoLocks:
    def test_singletons(self):
        pseudo = PseudoLocks()
        names = {lock.name for lock in pseudo.all()}
        assert names == {"rcu", "softirq", "hardirq", "preempt"}
        assert all(lock.is_static for lock in pseudo.all())

    def test_irq_disable_nests(self, ctx):
        pseudo = PseudoLocks()
        assert pseudo.hardirq.try_acquire(ctx, LockMode.EXCLUSIVE)
        assert pseudo.hardirq.try_acquire(ctx, LockMode.EXCLUSIVE)
        pseudo.hardirq.release(ctx, LockMode.EXCLUSIVE)
        assert pseudo.hardirq.held_by(ctx)
        pseudo.hardirq.release(ctx, LockMode.EXCLUSIVE)
        assert pseudo.hardirq.is_free()

    def test_cross_context_pseudo_rejected(self, ctx, other):
        pseudo = PseudoLocks()
        pseudo.softirq.try_acquire(ctx, LockMode.EXCLUSIVE)
        with pytest.raises(LockUsageError, match="crossed contexts"):
            pseudo.softirq.try_acquire(other, LockMode.EXCLUSIVE)


class TestLockIdentity:
    def test_unique_ids(self):
        a = Lock(LockClass.SPINLOCK, "a")
        b = Lock(LockClass.SPINLOCK, "b")
        assert a.lock_id != b.lock_id

    def test_reader_writer_classification(self):
        assert LockClass.RWLOCK.reader_writer
        assert LockClass.RW_SEMAPHORE.reader_writer
        assert LockClass.SEQLOCK.reader_writer
        assert LockClass.RCU.reader_writer
        assert not LockClass.MUTEX.reader_writer
        assert not LockClass.SPINLOCK.reader_writer

    def test_pseudo_classification(self):
        assert LockClass.RCU.pseudo
        assert LockClass.SOFTIRQ.pseudo
        assert LockClass.HARDIRQ.pseudo
        assert LockClass.PREEMPT.pseudo
        assert not LockClass.SPINLOCK.pseudo
