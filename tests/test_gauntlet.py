"""The corruption gauntlet (acceptance criteria of the faults work).

Every fault operator — alone and composed — is driven through the full
``trace -> import -> derive -> races`` pipeline in lenient mode, across
several seeds and both workloads:

* zero uncaught exceptions anywhere in the pipeline,
* the :class:`~repro.db.health.TraceHealth` report accounts for 100% of
  the events that entered the importer (kept + quarantined == total),
* graceful degradation: a trace with ~2% of events dropped still
  derives the same winning rule for >= 90% of the fault-free baseline's
  members.

Seeds come from the ``FAULT_SEEDS`` environment variable (default
``0,1,2``) so CI can widen the sweep without a code change.
"""

import os

import pytest

from repro.analysis.racedetect import RaceReport, detect_races
from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.db.health import ingest_events
from repro.db.importer import ImportPolicy
from repro.experiments.common import get_pipeline
from repro.faults import ALL_OPERATOR_SPECS, COMPOSED_SPEC, FaultPlan
from repro.kernel.vfs.groundtruth import build_filter_config
from repro.kernel.vfs.layouts import build_struct_registry
from repro.tracing import serialize
from repro.workloads.racer import build_racer_registry, run_racer

SEEDS = tuple(
    int(s) for s in os.environ.get("FAULT_SEEDS", "0,1,2").split(",") if s
)

#: The gauntlet disables the error budget: heavy corruption (30% head
#: truncation, say) must *survive*, not abort — budget enforcement has
#: its own tests.
GAUNTLET_POLICY = ImportPolicy(lenient=True, max_malformed_fraction=1.0)

#: Byte-only operators exercise the binary encoding; everything else
#: runs through the text encoding (mangle is text-only, torn does both).
_BINARY_SPECS = {"flip:0.002", "torn:0.1"}


@pytest.fixture(scope="module")
def racer_trace():
    tracer = run_racer(seed=0, scale=1.0).tracer
    events = list(tracer.events)
    stacks = serialize.stacks_of(tracer)
    return {
        "text": serialize.dumps_events_text(events, stacks),
        "binary": serialize.dumps_events_binary(events, stacks),
        "structs": build_racer_registry(),
    }


@pytest.fixture(scope="module")
def mix_pipeline():
    return get_pipeline(0, 1.0)


def _run_pipeline(report, structs, filters=None):
    """The post-parse pipeline; returns (health, race report)."""
    db, health = ingest_events(
        report.events,
        report.stacks,
        structs,
        filters,
        GAUNTLET_POLICY,
        parse_report=report,
    )
    table = ObservationTable.from_database(db)
    derivation = Derivator(0.9).derive(table)
    races = detect_races(report.events, db, derivation)
    return health, races


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("spec", ALL_OPERATOR_SPECS + (COMPOSED_SPEC,))
def test_racer_survives_every_operator(racer_trace, spec, seed):
    plan = FaultPlan.from_spec(spec, seed=seed)
    if spec in _BINARY_SPECS:
        mutated = plan.corrupt_binary(racer_trace["binary"])
        report = serialize.loads_binary_lenient(mutated)
    else:
        mutated = plan.corrupt_text(racer_trace["text"])
        report = serialize.loads_text_lenient(mutated)
    health, races = _run_pipeline(report, racer_trace["structs"])
    assert health.accounts_for_all_events(), health.to_dict()
    assert isinstance(races, RaceReport)


@pytest.mark.parametrize("seed", SEEDS)
def test_mix_survives_composed_faults(mix_pipeline, seed):
    events = mix_pipeline.mix.tracer.events
    stacks = serialize.stacks_of(mix_pipeline.mix.tracer)
    text = serialize.dumps_events_text(events, stacks)
    mutated = FaultPlan.from_spec(COMPOSED_SPEC, seed=seed).corrupt_text(text)
    report = serialize.loads_text_lenient(mutated)
    health, races = _run_pipeline(
        report, build_struct_registry(), build_filter_config()
    )
    assert health.accounts_for_all_events(), health.to_dict()
    assert health.kept_events > 0
    assert isinstance(races, RaceReport)


def test_mix_graceful_degradation(mix_pipeline):
    """<= 5% event drops still reproduce >= 90% of the winning rules."""
    baseline = {
        (d.type_key, d.member, d.access_type): d.rule.format()
        for d in mix_pipeline.derive().all()
    }
    assert baseline

    plan = FaultPlan.from_spec("drop:0.02", seed=0)
    events = plan.apply_events(mix_pipeline.mix.tracer.events)
    stacks = serialize.stacks_of(mix_pipeline.mix.tracer)
    db, health = ingest_events(
        events, stacks, build_struct_registry(), build_filter_config(),
        GAUNTLET_POLICY,
    )
    assert health.accounts_for_all_events()
    derivation = Derivator(0.9).derive(ObservationTable.from_database(db))
    degraded = {
        (d.type_key, d.member, d.access_type): d.rule.format()
        for d in derivation.all()
    }
    matching = sum(
        1 for key, rule in baseline.items() if degraded.get(key) == rule
    )
    assert matching / len(baseline) >= 0.9, (
        f"only {matching}/{len(baseline)} winning rules survived 2% drops"
    )
