"""Tests for fault-plan composition, spec parsing and reproducibility."""

import pytest

from repro.faults import (
    ALL_OPERATOR_SPECS,
    COMPOSED_SPEC,
    DropEvents,
    FaultPlan,
    ReorderWindow,
    make_operator,
    operator_names,
)
from repro.tracing import serialize
from repro.workloads.racer import run_racer


@pytest.fixture(scope="module")
def encoded():
    tracer = run_racer(seed=0, scale=1.0).tracer
    events = list(tracer.events)
    stacks = serialize.stacks_of(tracer)
    return (
        serialize.dumps_events_text(events, stacks),
        serialize.dumps_events_binary(events, stacks),
    )


class TestSpecParsing:
    def test_names_and_params(self):
        plan = FaultPlan.from_spec("drop:0.1,reorder:4", seed=7)
        assert len(plan.operators) == 2
        assert isinstance(plan.operators[0], DropEvents)
        assert plan.operators[0].rate == 0.1
        assert isinstance(plan.operators[1], ReorderWindow)
        assert plan.operators[1].window == 4
        assert "@seed=7" in plan.describe()

    def test_param_defaults(self):
        plan = FaultPlan.from_spec("drop")
        assert plan.operators[0].rate == 0.02

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown fault operator"):
            FaultPlan.from_spec("drop:0.1,bogus")

    def test_bad_parameter_rejected(self):
        with pytest.raises(ValueError, match="bad parameter"):
            FaultPlan.from_spec("drop:zero")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty fault spec"):
            FaultPlan.from_spec(" , ")

    def test_registry_covers_every_shipped_spec(self):
        for spec in ALL_OPERATOR_SPECS + (COMPOSED_SPEC,):
            assert FaultPlan.from_spec(spec).operators

    def test_make_operator_lists_known_names(self):
        names = operator_names()
        assert names == sorted(names)
        assert "drop" in names and "torn" in names
        with pytest.raises(ValueError, match="known:"):
            make_operator("nope")


class TestReproducibility:
    def test_same_seed_same_corruption(self, encoded):
        text, data = encoded
        a = FaultPlan.from_spec(COMPOSED_SPEC, seed=3)
        b = FaultPlan.from_spec(COMPOSED_SPEC, seed=3)
        assert a.corrupt_text(text) == b.corrupt_text(text)
        assert a.corrupt_binary(data) == b.corrupt_binary(data)

    def test_different_seed_different_corruption(self, encoded):
        text, _ = encoded
        a = FaultPlan.from_spec(COMPOSED_SPEC, seed=3)
        b = FaultPlan.from_spec(COMPOSED_SPEC, seed=4)
        assert a.corrupt_text(text) != b.corrupt_text(text)

    def test_operator_rng_is_position_scoped(self, encoded):
        # Prepending an operator must not reshuffle the randomness the
        # *shared-position* operators see... but shifting positions does
        # change the stream, so equal plans are the only guarantee we
        # make: per-(seed, index, name) RNG derivation.
        text, _ = encoded
        plan = FaultPlan.from_spec("drop:0.1", seed=5)
        again = FaultPlan([DropEvents(0.1)], seed=5)
        assert plan.corrupt_text(text) == again.corrupt_text(text)


class TestWholeTraceCorruption:
    def test_corrupt_text_keeps_format_identity(self, encoded):
        text, _ = encoded
        out = FaultPlan.from_spec("drop:0.05", seed=0).corrupt_text(text)
        assert out.startswith("# lockdoc-trace v1\n")
        # Pure event-level corruption still parses strictly.
        events, _ = serialize.loads_text(out)
        assert events

    def test_corrupt_binary_keeps_magic(self, encoded):
        _, data = encoded
        out = FaultPlan.from_spec("torn:0.1", seed=0).corrupt_binary(data)
        assert out.startswith(b"LDOC1\n")
        assert len(out) < len(data)

    def test_identity_plan_round_trips(self, encoded):
        text, data = encoded
        plan = FaultPlan.from_spec("drop:0.0", seed=0)
        assert serialize.loads_text(plan.corrupt_text(text)) == \
            serialize.loads_text(text)
        assert serialize.loads_binary(plan.corrupt_binary(data)) == \
            serialize.loads_binary(data)
