"""ChaosPlan unit tests: spec parsing, determinism, decision logic."""

import pytest

from repro.faults.daemon import CHAOS_EXIT, ChaosPlan, operator_names


class TestSpecParsing:
    def test_single_operator_with_param(self):
        plan = ChaosPlan.from_spec("crash:0.25", seed=7)
        assert [(op.kind, op.param) for op in plan.operators] == [("crash", 0.25)]
        assert plan.seed == 7

    def test_defaults(self):
        plan = ChaosPlan.from_spec("crash,stall,stall-sometimes")
        assert [(op.kind, op.param) for op in plan.operators] == [
            ("crash", 0.5), ("stall", 2.0), ("stall-sometimes", 2.0),
        ]

    def test_unknown_operator(self):
        with pytest.raises(ValueError, match="unknown chaos operator"):
            ChaosPlan.from_spec("explode:1.0")

    def test_bad_param(self):
        with pytest.raises(ValueError, match="bad parameter"):
            ChaosPlan.from_spec("crash:often")

    def test_empty_spec(self):
        with pytest.raises(ValueError, match="empty chaos spec"):
            ChaosPlan.from_spec("  ,  ")

    def test_operator_names_listed(self):
        assert operator_names() == ["crash", "stall", "stall-sometimes"]


class TestDecisions:
    def test_deterministic_per_key_and_attempt(self):
        plan = ChaosPlan.from_spec("crash:0.5,stall-sometimes:1.0", seed=3)
        for key in ("aaa", "bbb", "ccc"):
            for attempt in (0, 1):
                first = plan.decisions(key, attempt)
                assert first == plan.decisions(key, attempt)

    def test_attempts_draw_independently(self):
        # With p=0.5, over many keys some must crash on attempt 0 but
        # not on attempt 1 — the retry path the server depends on.
        plan = ChaosPlan.from_spec("crash:0.5", seed=0)
        fates = {
            (bool(plan.decisions(f"key-{i}", 0)),
             bool(plan.decisions(f"key-{i}", 1)))
            for i in range(64)
        }
        assert (True, False) in fates
        assert (False, False) in fates

    def test_rate_one_always_crashes(self):
        plan = ChaosPlan.from_spec("crash:1.0", seed=5)
        for i in range(16):
            for attempt in range(3):
                assert plan.decisions(f"k{i}", attempt) == [("crash", 1.0)]

    def test_rate_zero_never_crashes(self):
        plan = ChaosPlan.from_spec("crash:0.0", seed=5)
        assert plan.decisions("anything", 0) == []

    def test_crash_preempts_later_operators(self):
        plan = ChaosPlan.from_spec("crash:1.0,stall:9.0", seed=0)
        assert plan.decisions("k", 0) == [("crash", 1.0)]

    def test_stall_always_taken(self):
        plan = ChaosPlan.from_spec("stall:0.5", seed=0)
        assert plan.decisions("k", 0) == [("stall", 0.5)]

    def test_describe(self):
        plan = ChaosPlan.from_spec("crash:0.5,stall:2.0", seed=9)
        assert plan.describe() == "crash(0.5) -> stall(2.0) @seed=9"


def test_chaos_exit_code_is_distinguishable():
    # Not a signal exit (negative), not a clean exit (0), not the CLI
    # error contract (2) — post-mortems can tell chaos from real faults.
    assert CHAOS_EXIT not in (0, 1, 2)
    assert 0 < CHAOS_EXIT < 128
