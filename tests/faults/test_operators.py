"""Unit tests for the trace-corruption operators.

Every operator must be deterministic under a fixed RNG and must model
exactly its defect class: event-level operators keep the encoded hooks
identity, encoded-level operators keep the event stream intact.
"""

import random

import pytest

from repro.faults.operators import (
    DropAllocs,
    DropEvents,
    DropReleases,
    DuplicateEvents,
    FaultOp,
    FlipBytes,
    MangleLines,
    ReorderWindow,
    TornTail,
    TruncateHead,
    TruncateMid,
    TruncateTail,
)
from repro.tracing import serialize
from repro.tracing.events import AllocEvent, LockEvent
from repro.workloads.racer import run_racer

ALL_OPS = (
    DropEvents(0.1),
    DuplicateEvents(0.1),
    ReorderWindow(4),
    TruncateHead(0.3),
    TruncateTail(0.3),
    TruncateMid(0.2),
    DropReleases(0.3),
    DropAllocs(0.3),
    TornTail(0.1),
    MangleLines(0.1),
    FlipBytes(0.01),
)


@pytest.fixture(scope="module")
def sample():
    """A small but realistic trace: events, text and binary encodings."""
    tracer = run_racer(seed=0, scale=1.0).tracer
    events = list(tracer.events)
    stacks = serialize.stacks_of(tracer)
    text = serialize.dumps_events_text(events, stacks)
    data = serialize.dumps_events_binary(events, stacks)
    return events, text, data


def _rng():
    return random.Random(1234)


@pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.describe())
def test_operator_is_deterministic(op, sample):
    events, text, data = sample
    assert op.apply_events(events, _rng()) == op.apply_events(events, _rng())
    assert op.apply_text(text, _rng()) == op.apply_text(text, _rng())
    assert op.apply_bytes(data, _rng()) == op.apply_bytes(data, _rng())


@pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.describe())
def test_operator_describe_names_itself(op):
    assert op.describe().startswith(op.name)


def test_base_operator_is_identity(sample):
    events, text, data = sample
    op = FaultOp()
    assert op.apply_events(events, _rng()) == events
    assert op.apply_text(text, _rng()) == text
    assert op.apply_bytes(data, _rng()) == data


class TestEventLevel:
    def test_drop_reduces_count(self, sample):
        events, _, _ = sample
        out = DropEvents(0.5).apply_events(events, _rng())
        assert 0 < len(out) < len(events)
        assert DropEvents(0.0).apply_events(events, _rng()) == events
        assert DropEvents(1.0).apply_events(events, _rng()) == []

    def test_duplicate_preserves_order(self, sample):
        events, _, _ = sample
        out = DuplicateEvents(1.0).apply_events(events, _rng())
        assert len(out) == 2 * len(events)
        assert out[0] is out[1] is events[0]

    def test_reorder_keeps_multiset(self, sample):
        events, _, _ = sample
        out = ReorderWindow(8).apply_events(events, _rng())
        assert len(out) == len(events)
        assert sorted(map(id, out)) == sorted(map(id, events))
        assert out != events  # enough events that a shuffle must show

    def test_reorder_window_one_is_order_preserving(self, sample):
        # Perturbed keys stay within [i, i+1), so order cannot change.
        events, _, _ = sample
        assert ReorderWindow(1).apply_events(events, _rng()) == events

    def test_truncate_head_keeps_suffix(self, sample):
        events, _, _ = sample
        out = TruncateHead(0.5).apply_events(events, _rng())
        assert out == events[len(events) - len(out):]
        assert len(out) >= len(events) // 2

    def test_truncate_tail_keeps_prefix(self, sample):
        events, _, _ = sample
        out = TruncateTail(0.5).apply_events(events, _rng())
        assert out == events[: len(out)]
        assert len(out) >= len(events) // 2

    def test_truncate_mid_cuts_contiguous_span(self, sample):
        events, _, _ = sample
        out = TruncateMid(0.3).apply_events(events, _rng())
        assert len(out) < len(events)
        cut = len(events) - len(out)
        # Output is a prefix plus a suffix of the input.
        start = next(
            i for i, (a, b) in enumerate(zip(out, events)) if a is not b
        )
        assert out[start:] == events[start + cut:]

    def test_drop_releases_only_touches_releases(self, sample):
        events, _, _ = sample
        out = DropReleases(1.0).apply_events(events, _rng())
        assert not any(
            isinstance(e, LockEvent) and not e.is_acquire for e in out
        )
        survivors = [
            e
            for e in events
            if not (isinstance(e, LockEvent) and not e.is_acquire)
        ]
        assert out == survivors

    def test_drop_allocs_only_touches_allocs(self, sample):
        events, _, _ = sample
        out = DropAllocs(1.0).apply_events(events, _rng())
        assert not any(isinstance(e, AllocEvent) for e in out)
        assert len(out) == len(
            [e for e in events if not isinstance(e, AllocEvent)]
        )


class TestEncodedLevel:
    def test_torn_tail_cuts_bytes(self, sample):
        _, _, data = sample
        out = TornTail(0.2).apply_bytes(data, _rng())
        assert len(out) < len(data)
        assert data.startswith(out)

    def test_torn_tail_cuts_text(self, sample):
        _, text, _ = sample
        out = TornTail(0.2).apply_text(text, _rng())
        assert len(out) < len(text)
        assert text.startswith(out)

    def test_torn_tail_spares_tiny_inputs(self):
        assert TornTail(0.5).apply_bytes(b"LDOC1\n", _rng()) == b"LDOC1\n"
        assert TornTail(0.5).apply_text("short", _rng()) == "short"

    def test_mangle_spares_headers(self, sample):
        _, text, _ = sample
        out = MangleLines(1.0).apply_text(text, _rng())
        in_lines, out_lines = text.split("\n"), out.split("\n")
        assert out_lines[:2] == in_lines[:2]
        assert len(out_lines) == len(in_lines)
        assert sum(a != b for a, b in zip(in_lines, out_lines)) > 10

    def test_flip_preserves_length_and_magic(self, sample):
        _, _, data = sample
        out = FlipBytes(0.01).apply_bytes(data, _rng())
        assert len(out) == len(data)
        assert out[:6] == data[:6] == b"LDOC1\n"
        assert out != data
