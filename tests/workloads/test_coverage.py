"""Tests for the coverage accounting (Tab. 3 substrate)."""

from repro.workloads.coverage import (
    COLD_FUNCTIONS,
    CatalogEntry,
    CoverageRow,
    build_catalog,
    coverage_report,
    executed_functions,
)


def test_catalog_entry_directory():
    assert CatalogEntry("f", "fs/inode.c", 1, 10).directory == "fs"
    assert CatalogEntry("f", "fs/ext4/inode.c", 1, 10).directory == "fs/ext4"
    assert CatalogEntry("f", "toplevel.c", 1, 10).directory == "."


def test_coverage_row_math():
    row = CoverageRow("fs", lines_hit=30, lines_total=100, functions_hit=3,
                      functions_total=10)
    assert row.line_coverage == 0.30
    assert row.function_coverage == 0.30
    assert "30.00%" in row.format()


def test_catalog_contains_hand_and_cold_functions(pipeline):
    catalog = build_catalog(pipeline.mix.world)
    names = {e.name for e in catalog}
    assert "__remove_inode_hash" in names  # hand-written
    assert "jbd2_journal_commit_transaction" in names
    assert any(n.startswith("fs_cold_") for n in names)  # cold paths
    assert any(n.endswith("_fastpath") for n in names)  # deviant twins


def test_executed_functions_from_stacks(pipeline):
    executed = executed_functions(pipeline.db)
    assert ("vfs_write", "fs/read_write.c") in executed


def test_cold_functions_never_executed(pipeline):
    executed = executed_functions(pipeline.db)
    assert not any(name.endswith("_cold_0001") for name, _ in executed)


def test_report_rows_in_partial_band(pipeline):
    rows = coverage_report(pipeline.mix.world, pipeline.db)
    assert [r.directory for r in rows] == ["fs", "fs/ext4", "fs/jbd2"]
    for row in rows:
        assert 0.0 < row.line_coverage < 1.0, row.format()
        assert 0.0 < row.function_coverage < 1.0, row.format()
