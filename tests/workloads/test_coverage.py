"""Tests for the coverage accounting (Tab. 3 substrate)."""

from repro.workloads.coverage import (
    COLD_FUNCTIONS,
    CatalogEntry,
    CoverageRow,
    build_catalog,
    coverage_report,
    executed_functions,
)


def test_catalog_entry_directory():
    assert CatalogEntry("f", "fs/inode.c", 1, 10).directory == "fs"
    assert CatalogEntry("f", "fs/ext4/inode.c", 1, 10).directory == "fs/ext4"
    assert CatalogEntry("f", "toplevel.c", 1, 10).directory == "."


def test_coverage_row_math():
    row = CoverageRow("fs", lines_hit=30, lines_total=100, functions_hit=3,
                      functions_total=10)
    assert row.line_coverage == 0.30
    assert row.function_coverage == 0.30
    assert "30.00%" in row.format()


def test_catalog_contains_hand_and_cold_functions(pipeline):
    catalog = build_catalog(pipeline.mix.world)
    names = {e.name for e in catalog}
    assert "__remove_inode_hash" in names  # hand-written
    assert "jbd2_journal_commit_transaction" in names
    assert any(n.startswith("fs_cold_") for n in names)  # cold paths
    assert any(n.endswith("_fastpath") for n in names)  # deviant twins


def test_executed_functions_from_stacks(pipeline):
    executed = executed_functions(pipeline.db)
    assert ("vfs_write", "fs/read_write.c") in executed


def test_cold_functions_never_executed(pipeline):
    executed = executed_functions(pipeline.db)
    assert not any(name.endswith("_cold_0001") for name, _ in executed)


def test_report_rows_in_partial_band(pipeline):
    rows = coverage_report(pipeline.mix.world, pipeline.db)
    assert [r.directory for r in rows] == ["fs", "fs/ext4", "fs/jbd2"]
    for row in rows:
        assert 0.0 < row.line_coverage < 1.0, row.format()
        assert 0.0 < row.function_coverage < 1.0, row.format()


# ----------------------------------------------------------------------
# Unit tests over synthetic inputs (no pipeline needed)
# ----------------------------------------------------------------------

def test_rt_function_regex_extracts_literal_and_constant_files():
    from repro.workloads.coverage import _RT_FUNCTION

    source = '''
        self.rt.function(ctx, "vfs_demo", "fs/demo.c", 123)
        rt.function(ctx, "jbd2_demo", FILE, 45)
    '''
    found = _RT_FUNCTION.findall(source)
    assert ("vfs_demo", '"fs/demo.c"', "123") in found
    assert ("jbd2_demo", "FILE", "45") in found


def test_rt_function_regex_ignores_dynamic_names():
    from repro.workloads.coverage import _RT_FUNCTION

    # f-string / variable function names cannot be cataloged statically
    # and must not produce bogus entries.
    assert _RT_FUNCTION.findall('rt.function(ctx, name, FILE, 1)') == []


def test_handwritten_entries_unique_and_resolved():
    from repro.workloads.coverage import _handwritten_entries

    entries = _handwritten_entries()
    keys = [(e.name, e.file) for e in entries]
    assert len(keys) == len(set(keys))  # de-duplicated
    assert all(e.file.endswith((".c", ".h")) for e in entries)
    assert all(e.line > 0 and e.span > 0 for e in entries)


def test_cold_entries_are_deterministic_and_counted():
    from repro.workloads.coverage import _cold_entries

    first = _cold_entries()
    assert first == _cold_entries()  # fixed catalog, not run-dependent
    by_dir = {}
    for entry in first:
        by_dir[entry.directory] = by_dir.get(entry.directory, 0) + 1
    assert by_dir == COLD_FUNCTIONS


def test_coverage_report_per_directory_accounting():
    from repro.workloads.coverage import coverage_report

    class _World:
        class engine:
            ops_by_type = {}

    catalog = [
        CatalogEntry("hot", "fs/a.c", 1, span=10),
        CatalogEntry("cold", "fs/b.c", 1, span=30),
        CatalogEntry("sub", "fs/ext4/c.c", 1, span=20),
    ]

    class _Db:
        stack_table = [[("hot", "fs/a.c", 1), ("sub", "fs/ext4/c.c", 1)]]

    import repro.workloads.coverage as cov

    original = cov.build_catalog
    cov.build_catalog = lambda world, subsystem="vfs": catalog
    try:
        rows = coverage_report(_World(), _Db(), directories=("fs", "fs/ext4"))
    finally:
        cov.build_catalog = original

    fs_row, ext4_row = rows
    # fs counts only files directly under fs/ — the ext4 entry is not
    # part of the fs row.
    assert (fs_row.functions_hit, fs_row.functions_total) == (1, 2)
    assert (fs_row.lines_hit, fs_row.lines_total) == (10, 40)
    assert fs_row.line_coverage == 0.25
    assert (ext4_row.functions_hit, ext4_row.functions_total) == (1, 1)
    assert ext4_row.function_coverage == 1.0
