"""Subsystem-generalized coverage catalogs.

The CoverageMap/Tab. 3 accounting grew a per-subsystem registration
(:data:`SUBSYSTEM_CATALOGS`).  These tests freeze the VFS catalog
byte-for-byte — registering the net slice must not move a single vfs
number — and pin the net catalog's own shape.
"""

import hashlib

from repro.workloads.coverage import (
    NET_COLD_FUNCTIONS,
    SUBSYSTEM_CATALOGS,
    _cold_entries,
    _handwritten_entries,
    subsystem_directories,
)

# Frozen before the net slice landed; any drift here means subsystem
# registration perturbed the vfs accounting.
VFS_COLD_COUNT = 528
VFS_COLD_SHA = "9cec39798e0de230d0141e18f4dab7b042fa544072dabcf760eb49480658a980"
VFS_HANDWRITTEN_COUNT = 60
VFS_HANDWRITTEN_SHA = (
    "636f4852f14606682a3c2fc64b5b0b8c944f7fb0dfef38f8354ee64bb79d813e"
)


def _fingerprint(entries):
    payload = repr([(e.name, e.file, e.line, e.span) for e in entries])
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# VFS byte-identity
# ----------------------------------------------------------------------

def test_vfs_cold_catalog_is_byte_identical():
    entries = _cold_entries("vfs")
    assert len(entries) == VFS_COLD_COUNT
    assert _fingerprint(entries) == VFS_COLD_SHA


def test_vfs_handwritten_catalog_is_byte_identical():
    entries = _handwritten_entries("vfs")
    assert len(entries) == VFS_HANDWRITTEN_COUNT
    assert _fingerprint(entries) == VFS_HANDWRITTEN_SHA


def test_cold_seeds_are_independent():
    """Each subsystem draws its cold spans from its own seeded rng."""
    seeds = {c.cold_seed for c in SUBSYSTEM_CATALOGS.values()}
    assert len(seeds) == len(SUBSYSTEM_CATALOGS)


# ----------------------------------------------------------------------
# Net catalog shape
# ----------------------------------------------------------------------

def test_net_directories():
    assert subsystem_directories("net") == ("net", "net/core", "net/ipv4")


def test_net_cold_catalog_matches_the_registration():
    entries = _cold_entries("net")
    assert len(entries) == sum(NET_COLD_FUNCTIONS.values()) == 310
    by_dir = {}
    for entry in entries:
        by_dir.setdefault(entry.directory, 0)
        by_dir[entry.directory] += 1
    for directory, count in NET_COLD_FUNCTIONS.items():
        assert by_dir[directory] == count


def test_net_cold_catalog_is_deterministic():
    assert _fingerprint(_cold_entries("net")) == _fingerprint(
        _cold_entries("net")
    )


def test_net_handwritten_catalog_covers_the_socket_paths():
    entries = _handwritten_entries("net")
    assert len(entries) == 27
    names = {entry.name for entry in entries}
    assert {"sock_sendmsg", "sock_recvmsg", "tcp_retransmit_skb"} <= names
    files = {entry.file for entry in entries}
    assert all(f.startswith("net/") for f in files), files
