"""Tests for the benchmark workloads and the mix assembly."""

import pytest

from repro.kernel.sched import Scheduler
from repro.kernel.vfs.fs import VfsWorld
from repro.workloads.base import FSTYPE_WEIGHTS, Workload
from repro.workloads.bdflush import BdFlush
from repro.workloads.fsbench import FsBench
from repro.workloads.fsinod import FsInod
from repro.workloads.fsstress import FsStress
from repro.workloads.journal import Journal
from repro.workloads.mix import BenchmarkMix, run_benchmark_mix
from repro.workloads.perms import Perms
from repro.workloads.pipes import Pipes
from repro.workloads.symlinks import Symlinks

ALL_WORKLOADS = [FsBench, FsStress, FsInod, Pipes, Symlinks, Perms, Journal, BdFlush]


@pytest.fixture
def world():
    w = VfsWorld(seed=11)
    w.boot()
    return w


@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
def test_each_workload_runs_standalone(world, workload_cls):
    workload = workload_cls(world, iterations=5, seed=1)
    scheduler = Scheduler(world.rt, seed=2)
    threads = workload.threads()
    assert threads
    for name, body in threads:
        scheduler.spawn(name, body)
    scheduler.run()
    assert world.rt.tracer.stats.total_events > 0


def test_base_workload_requires_threads(world):
    with pytest.raises(NotImplementedError):
        Workload(world).threads()


def test_fstype_weights_cover_all_subclasses(world):
    assert set(FSTYPE_WEIGHTS) == set(world.supers)


def test_mix_runs_and_produces_all_type_keys():
    result = run_benchmark_mix(seed=3, scale=1.0)
    db = result.to_database()
    keys = db.type_keys()
    assert "inode:ext4" in keys
    assert "buffer_head" in keys
    assert "journal_t" in keys
    assert len([k for k in keys if k.startswith("inode:")]) == 11


def test_mix_is_deterministic():
    first = run_benchmark_mix(seed=5, scale=0.5)
    second = run_benchmark_mix(seed=5, scale=0.5)
    assert first.tracer.stats.total_events == second.tracer.stats.total_events
    assert first.steps == second.steps
    assert first.tracer.events == second.tracer.events


def test_mix_seed_changes_trace():
    first = run_benchmark_mix(seed=6, scale=0.5)
    second = run_benchmark_mix(seed=7, scale=0.5)
    assert first.tracer.events != second.tracer.events


def test_mix_scale_controls_volume():
    small = run_benchmark_mix(seed=8, scale=0.5)
    large = run_benchmark_mix(seed=8, scale=2.0)
    assert large.tracer.stats.total_events > small.tracer.stats.total_events * 2


def test_irq_sources_fire():
    result = run_benchmark_mix(seed=9, scale=1.0)
    fired = {s.name: s.fired for s in result.scheduler.irq_sources}
    assert fired.get("blk-softirq", 0) > 0


def test_threads_complete_cleanly():
    result = run_benchmark_mix(seed=10, scale=0.5)
    assert all(t.finished for t in result.scheduler.threads)
    assert all(not t.ctx.held for t in result.scheduler.threads)
