"""Workload registry: resolution, contract, fuzz-corpus dispatch."""

import pytest

from repro.workloads import registry


def test_builtins_are_registered():
    names = registry.available()
    assert {"mix", "racer", "racer-safe"} <= set(names)


def test_describe_has_help_for_every_name():
    described = registry.describe()
    assert set(described) == set(registry.available())
    assert described["mix"]


def test_unknown_workload_raises_with_available_list():
    with pytest.raises(ValueError, match="mix"):
        registry.resolve("nope")


def test_unknown_fuzz_corpus_raises():
    with pytest.raises(ValueError, match="fuzz corpus"):
        registry.resolve("fuzz:does-not-exist")


def test_run_result_honours_common_contract():
    result = registry.run("racer", seed=0, scale=1.0)
    assert result.tracer.stats.total_events > 0
    db = result.to_database()
    assert len(db.kept_accesses()) > 0


def test_register_and_replace():
    calls = []

    def factory(seed, scale):
        calls.append((seed, scale))
        return "sentinel"

    registry.register("test-sentinel", factory, "test-only")
    try:
        assert registry.run("test-sentinel", seed=3, scale=2.0) == "sentinel"
        assert calls == [(3, 2.0)]
        assert registry.describe()["test-sentinel"] == "test-only"
    finally:
        # keep the global registry clean for other tests
        registry._REGISTRY.pop("test-sentinel")
        registry._HELP.pop("test-sentinel")


def test_corpus_path_dispatch_and_scale_repeats(tmp_path):
    import random

    from repro.fuzz.corpus import Corpus
    from repro.fuzz.feedback import CoverageMap, execute_program
    from repro.fuzz.mutate import random_program

    program = random_program(random.Random(0))
    corpus = Corpus(baseline=CoverageMap(), seed=0)
    corpus.admit(program, execute_program(program).coverage, generation=0)
    path = tmp_path / "corpus.json"
    corpus.save(str(path))

    once = registry.run(f"fuzz:{path}", seed=0, scale=1)
    twice = registry.run(f"fuzz:{path}", seed=0, scale=2)
    assert twice.tracer.stats.total_events > once.tracer.stats.total_events


def test_registered_corpus_name_resolves(tmp_path):
    import random

    from repro.fuzz.corpus import Corpus
    from repro.fuzz.feedback import CoverageMap, execute_program
    from repro.fuzz.mutate import random_program

    program = random_program(random.Random(1))
    corpus = Corpus(baseline=CoverageMap(), seed=1)
    corpus.admit(program, execute_program(program).coverage, generation=0)
    name = registry.register_corpus(corpus)
    try:
        assert name == f"fuzz:{corpus.corpus_id}"
        assert name in registry.available()
        result = registry.run(name, seed=0, scale=1)
        assert result.to_database() is not None
    finally:
        registry._REGISTRY.pop(name)
        registry._HELP.pop(name)
