"""Ground-truth tests for the planted-race workload.

The racer workload plants known behaviour per member (see its module
docstring); these tests pin the detector to that ground truth: every
planted race is reported, nothing else is, and the race-free control
variant is completely clean.
"""

import pytest

from repro.analysis import RaceClass, detect_races
from repro.core.lockorder import build_lock_order, format_class
from repro.workloads.racer import PLANTED_CYCLE, PLANTED_RACES, run_racer


@pytest.fixture(scope="module")
def racy():
    return run_racer(seed=0, scale=1.0, racy=True)


@pytest.fixture(scope="module")
def racy_report(racy):
    return detect_races(racy.tracer.events, racy.to_database(), racy.derive())


@pytest.fixture(scope="module")
def safe_report():
    result = run_racer(seed=0, scale=1.0, racy=False)
    return detect_races(result.tracer.events, result.to_database(), result.derive())


def test_all_planted_races_found(racy_report):
    for type_key, member in PLANTED_RACES:
        finding = racy_report.get(type_key, member)
        assert finding is not None, f"planted race {type_key}.{member} missed"
        assert finding.race_class == RaceClass.RULE_CONFIRMED_RACE
        assert finding.sample_pair is not None


def test_no_false_positive_races(racy_report):
    reported = {(f.type_key, f.member) for f in racy_report.races()}
    assert reported == set(PLANTED_RACES)


def test_init_phase_write_is_ordered_violation_not_race(racy_report):
    finding = racy_report.get("race_obj", "stat")
    assert finding is not None
    assert finding.race_class == RaceClass.ORDERED_VIOLATION
    assert finding.sample_violation is not None


def test_single_writer_unlocked_member_is_benign(racy_report):
    finding = racy_report.get("race_obj", "seq")
    assert finding is not None
    assert finding.race_class == RaceClass.BENIGN


def test_locked_member_never_becomes_a_candidate(racy_report):
    assert racy_report.get("race_obj", "guarded") is None


def test_race_free_variant_reports_zero_races(safe_report):
    assert safe_report.races() == []
    # The planted non-race classifications survive unchanged.
    assert (
        safe_report.get("race_obj", "stat").race_class
        == RaceClass.ORDERED_VIOLATION
    )
    assert safe_report.get("race_obj", "seq").race_class == RaceClass.BENIGN


def test_derived_rule_still_names_the_lock(racy):
    derivation = racy.derive()
    for member in ("counter", "dirty", "stat", "guarded"):
        derived = derivation.get("race_obj", member, "w")
        assert derived is not None
        assert "lock" in derived.rule.format()
    seq_rule = derivation.get("race_obj", "seq", "w")
    assert seq_rule is not None and seq_rule.rule.is_no_lock


def test_race_witness_points_at_the_buggy_code(racy_report):
    finding = racy_report.get("race_obj", "counter")
    lines = {line for (_, line) in finding.locations}
    assert 66 in lines  # the unlocked write in _buggy_worker


def test_planted_cycle_found_with_zero_inversions(racy):
    report = build_lock_order(racy.to_database())
    assert report.inversions == []  # pairwise ABBA check is blind here
    cycles = report.multi_lock_cycles()
    assert len(cycles) == 1
    names = {format_class(key) for key in cycles[0].classes}
    assert names == set(PLANTED_CYCLE)


def test_deterministic_per_seed():
    first = run_racer(seed=3, scale=1.0)
    second = run_racer(seed=3, scale=1.0)
    assert len(first.tracer.events) == len(second.tracer.events)
    assert first.steps == second.steps
