"""End-to-end determinism: same seed, byte-identical trace.

Every source of randomness in a workload must flow from the workload
seed (satellite audit of ``workloads/*.py``): two runs with the same
seed serialize to the exact same trace text, and a different seed
produces a different trace.
"""

from repro.tracing import serialize
from repro.workloads.mix import run_benchmark_mix
from repro.workloads.racer import run_racer


def _mix_trace_text(seed: int) -> str:
    return serialize.dumps_text(run_benchmark_mix(seed=seed, scale=0.5).tracer)


def test_mix_trace_is_byte_identical_for_same_seed():
    assert _mix_trace_text(3) == _mix_trace_text(3)


def test_mix_trace_differs_across_seeds():
    assert _mix_trace_text(3) != _mix_trace_text(4)


def test_subclass_sweep_is_seeded_from_mix_seed():
    # The sweep thread's rng derives from the mix seed; with everything
    # else equal, distinct seeds must still yield distinct sweeps (this
    # regressed when the sweep used a fixed module-level constant).
    from repro.workloads.mix import _subclass_sweep  # noqa: F401 (audit anchor)

    assert _mix_trace_text(10) != _mix_trace_text(11)


def test_racer_trace_is_byte_identical_for_same_seed():
    first = serialize.dumps_text(run_racer(seed=5, scale=1.0, racy=True).tracer)
    second = serialize.dumps_text(run_racer(seed=5, scale=1.0, racy=True).tracer)
    assert first == second


def test_fuzz_program_execution_is_deterministic():
    import random

    from repro.fuzz.feedback import execute_program
    from repro.fuzz.mutate import random_program

    program = random_program(random.Random(7))
    first = execute_program(program)
    second = execute_program(program)
    assert first.coverage == second.coverage
    assert first.events == second.events
    assert first.steps == second.steps
