"""Tests for the out-of-core SQLite trace store (build/validate/query).

The store's contract is *bit-identical analysis*: every relation, the
observation fold, and the health report must match what the in-memory
importer produces — on clean traces, on fault-corrupted traces, built
serially or sharded.  Plus the crash-safety contract: a torn file is
refused, a failed build leaves nothing behind.
"""

import os
import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.observations import ObservationTable
from repro.db import sqlstore
from repro.db.health import ingest_events
from repro.db.importer import LENIENT_POLICY
from repro.db.sqlbackend import _s64, _u64, export_sqlite
from repro.faults import FaultPlan
from repro.kernel.vfs.groundtruth import build_filter_config
from repro.kernel.vfs.layouts import build_struct_registry
from repro.tracing import serialize
from repro.workloads.mix import run_benchmark_mix

SCALE = 1.2

#: The four boundary addresses of the signed/unsigned 64-bit mapping.
U64_BOUNDARIES = (0, 2**63 - 1, 2**63, 2**64 - 1)


@pytest.fixture(scope="module")
def mix_trace():
    """One small mix run: events, stacks, registries."""
    result = run_benchmark_mix(seed=0, scale=SCALE)
    return {
        "events": result.tracer.events,
        "stacks": serialize.stacks_of(result.tracer),
        "structs": build_struct_registry(),
        "filters": build_filter_config(),
    }


@pytest.fixture(scope="module")
def memory_db(mix_trace):
    db, health = ingest_events(
        mix_trace["events"], mix_trace["stacks"],
        mix_trace["structs"], mix_trace["filters"],
    )
    db.health = health
    return db


@pytest.fixture(scope="module")
def store(tmp_path_factory, mix_trace):
    path = tmp_path_factory.mktemp("store") / "mix.store.sqlite"
    sqlstore.build_store(
        str(path), mix_trace["events"], mix_trace["stacks"],
        mix_trace["structs"], mix_trace["filters"],
        meta_extra={"recipe": "vfs"},
    )
    s = sqlstore.SqliteTraceStore(str(path))
    yield s
    s.close()


# ----------------------------------------------------------------------
# _s64/_u64 round trip (satellite: unsigned-address read paths)
# ----------------------------------------------------------------------


class TestAddressRoundTrip:
    def test_boundary_addresses(self):
        for address in U64_BOUNDARIES:
            stored = _s64(address)
            assert -(2**63) <= stored < 2**63  # fits SQLite INTEGER
            assert _u64(stored) == address

    def test_none_passes_through(self):
        assert _s64(None) is None
        assert _u64(None) is None

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_round_trip_property(self, address):
        assert _u64(_s64(address)) == address

    def test_high_addresses_survive_sqlite_storage(self):
        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE t (v INTEGER)")
        connection.executemany(
            "INSERT INTO t VALUES (?)",
            [(_s64(address),) for address in U64_BOUNDARIES],
        )
        read_back = [
            _u64(value)
            for (value,) in connection.execute("SELECT v FROM t ORDER BY rowid")
        ]
        assert read_back == list(U64_BOUNDARIES)


# ----------------------------------------------------------------------
# Store build == in-memory import, relation for relation
# ----------------------------------------------------------------------


class TestLoadDatabaseParity:
    def test_accesses_identical(self, store, memory_db, mix_trace):
        loaded = store.load_database(mix_trace["structs"])
        assert loaded.accesses == memory_db.accesses

    def test_small_relations_identical(self, store, memory_db, mix_trace):
        loaded = store.load_database(mix_trace["structs"])
        assert loaded.allocations == memory_db.allocations
        assert loaded.locks == memory_db.locks
        assert list(loaded.txns.values()) == list(memory_db.txns.values())
        assert loaded.stack_table == memory_db.stack_table

    def test_health_identical(self, store, memory_db):
        assert store.health() == memory_db.health

    def test_addresses_are_unsigned_after_reload(self, store, mix_trace):
        loaded = store.load_database(mix_trace["structs"])
        assert all(a.address >= 0 for a in loaded.accesses)
        assert all(a.address >= 0 for a in loaded.allocations.values())


class TestFoldParity:
    @pytest.mark.parametrize("split", [True, False])
    def test_fold_matches_observation_table(self, store, memory_db, split):
        table = ObservationTable.from_database(
            memory_db, split_subclasses=split
        )
        fold = store.fold(split_subclasses=split)
        assert fold.keys() == table.keys()
        assert fold.observation_count is not None
        for key in table.keys():
            assert fold.sequences(*key) == table.sequences(*key)
            assert fold.observation_count(*key) == table.observation_count(*key)

    def test_lazy_get_matches_observation_rows(self, store, memory_db):
        table = ObservationTable.from_database(memory_db)
        fold = store.fold()
        for key in table.keys()[:40]:
            assert fold.get(*key) == table.get(*key)

    def test_merged_surface_matches(self, store, memory_db):
        table = ObservationTable.from_database(memory_db)
        fold = store.fold()
        for type_key in table.type_keys():
            data_type = type_key.split(":", 1)[0]
            for member in table.merged_members_of(data_type):
                for access_type in ("r", "w"):
                    assert fold.merged_sequences(
                        data_type, member, access_type
                    ) == table.merged_sequences(data_type, member, access_type)


# ----------------------------------------------------------------------
# Sharded build == serial build
# ----------------------------------------------------------------------


class TestShardedBuild:
    def test_sharded_equals_serial(self, tmp_path, mix_trace):
        trace_path = tmp_path / "mix.bin"
        with open(trace_path, "wb") as fp:
            serialize.write_binary(
                mix_trace["events"], mix_trace["stacks"], fp
            )
        serial = tmp_path / "serial.store.sqlite"
        sharded = tmp_path / "sharded.store.sqlite"
        health_serial = sqlstore.build_store_from_trace(
            str(serial), str(trace_path), "vfs", shard_count=1
        )
        health_sharded = sqlstore.build_store_from_trace(
            str(sharded), str(trace_path), "vfs", shard_count=3
        )
        assert health_sharded == health_serial
        a = sqlstore.SqliteTraceStore(str(serial))
        b = sqlstore.SqliteTraceStore(str(sharded))
        try:
            assert b.load_database().accesses == a.load_database().accesses
            assert b.counts() == a.counts()
            fold_a, fold_b = a.fold(), b.fold()
            assert fold_b.keys() == fold_a.keys()
            for key in fold_a.keys():
                assert fold_b.sequences(*key) == fold_a.sequences(*key)
        finally:
            a.close()
            b.close()

    def test_shard_files_cleaned_up(self, tmp_path, mix_trace):
        trace_path = tmp_path / "mix.bin"
        with open(trace_path, "wb") as fp:
            serialize.write_binary(
                mix_trace["events"], mix_trace["stacks"], fp
            )
        out = tmp_path / "out.store.sqlite"
        sqlstore.build_store_from_trace(
            str(out), str(trace_path), "vfs", shard_count=2
        )
        leftovers = [
            name for name in os.listdir(tmp_path)
            if name not in ("mix.bin", "out.store.sqlite")
        ]
        assert leftovers == []

    def test_default_shard_count_env_override(self, monkeypatch):
        monkeypatch.setenv(sqlstore.SHARDS_ENV, "7")
        assert sqlstore.default_shard_count() == 7
        monkeypatch.setenv(sqlstore.SHARDS_ENV, "junk")
        assert sqlstore.default_shard_count() >= 1


# ----------------------------------------------------------------------
# Fault-corrupted traces (synthetic_close + scrub/fence parity)
# ----------------------------------------------------------------------


class TestCorruptedTraceParity:
    @pytest.fixture(scope="class")
    def corrupted(self, tmp_path_factory, mix_trace):
        events = FaultPlan.from_spec("drop:0.02", seed=1).apply_events(
            mix_trace["events"]
        )
        path = tmp_path_factory.mktemp("corrupted") / "store.sqlite"
        db, health = ingest_events(
            events, mix_trace["stacks"], mix_trace["structs"],
            mix_trace["filters"], LENIENT_POLICY,
        )
        sqlstore.build_store(
            str(path), events, mix_trace["stacks"], mix_trace["structs"],
            mix_trace["filters"], LENIENT_POLICY,
        )
        store = sqlstore.SqliteTraceStore(str(path))
        yield db, health, store
        store.close()

    def test_health_identical(self, corrupted):
        _db, health, store = corrupted
        assert store.health() == health
        assert store.health().scrubbed_accesses > 0  # repairs did run

    def test_synthetic_close_preserved(self, corrupted, mix_trace):
        db, _health, store = corrupted
        synthetic = [t.txn_id for t in db.txns.values() if t.synthetic_close]
        assert synthetic, "expected synthetic closes from a 2%-drop trace"
        loaded = store.load_database(mix_trace["structs"])
        assert [
            t.txn_id for t in loaded.txns.values() if t.synthetic_close
        ] == synthetic
        stored = dict(store.connection.execute(
            "SELECT txn_id, synthetic_close FROM txns"
        ))
        assert sorted(
            txn_id for txn_id, flag in stored.items() if flag
        ) == sorted(synthetic)

    def test_full_database_identical(self, corrupted, mix_trace):
        db, _health, store = corrupted
        loaded = store.load_database(mix_trace["structs"])
        assert loaded.accesses == db.accesses
        assert list(loaded.txns.values()) == list(db.txns.values())


# ----------------------------------------------------------------------
# Crash safety: torn files refused, failed builds leave nothing
# ----------------------------------------------------------------------


class TestCrashSafety:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(sqlstore.StoreCorrupt):
            sqlstore.open_store(str(tmp_path / "nope.sqlite"))

    def test_torn_file_raises(self, tmp_path, store):
        torn = tmp_path / "torn.sqlite"
        data = open(store.path, "rb").read()
        torn.write_bytes(data[: int(len(data) * 0.6)])
        with pytest.raises(sqlstore.StoreCorrupt):
            sqlstore.open_store(str(torn))

    def test_unstamped_file_raises(self, tmp_path):
        path = tmp_path / "unstamped.sqlite"
        connection = sqlite3.connect(str(path))
        connection.execute("CREATE TABLE meta (key TEXT, value TEXT)")
        connection.commit()
        connection.close()
        with pytest.raises(sqlstore.StoreCorrupt, match="incomplete"):
            sqlstore.open_store(str(path))

    def test_row_count_mismatch_raises(self, tmp_path, store):
        path = tmp_path / "tampered.sqlite"
        path.write_bytes(open(store.path, "rb").read())
        connection = sqlite3.connect(str(path))
        connection.execute(
            "DELETE FROM accesses WHERE access_id IN "
            "(SELECT access_id FROM accesses LIMIT 5)"
        )
        connection.commit()
        connection.close()
        with pytest.raises(sqlstore.StoreCorrupt, match="torn"):
            sqlstore.open_store(str(path))

    def test_export_failure_leaves_no_file(
        self, tmp_path, memory_db, monkeypatch
    ):
        from repro.db import sqlbackend

        monkeypatch.setattr(
            sqlbackend, "INDEXES_SQL", "CREATE INDEX bogus ON nonexistent (x);"
        )
        path = tmp_path / "failed.sqlite"
        with pytest.raises(sqlite3.OperationalError):
            export_sqlite(memory_db, str(path))
        assert not path.exists()
        assert os.listdir(tmp_path) == []  # no tmp orphan either

    def test_failed_build_leaves_no_file(
        self, tmp_path, mix_trace, monkeypatch
    ):
        from repro.db import sqlstore as module

        monkeypatch.setattr(
            module, "INDEXES_SQL", "CREATE INDEX bogus ON nonexistent (x);"
        )
        path = tmp_path / "failed.store.sqlite"
        with pytest.raises(sqlite3.OperationalError):
            sqlstore.build_store(
                str(path), mix_trace["events"], mix_trace["stacks"],
                mix_trace["structs"], mix_trace["filters"],
            )
        assert os.listdir(tmp_path) == []

    def test_export_file_passes_store_validation(self, tmp_path, memory_db):
        path = tmp_path / "export.sqlite"
        export_sqlite(memory_db, str(path)).close()
        connection = sqlstore.open_store(str(path))
        meta = dict(connection.execute("SELECT key, value FROM meta"))
        connection.close()
        assert meta["complete"] == "1"
        assert int(meta["rows_accesses"]) == len(memory_db.accesses)
