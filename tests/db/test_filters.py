"""Unit tests for the Sec. 5.3 import filters."""

import pytest

from repro.db.filters import (
    REASON_ATOMIC_MEMBER,
    REASON_FUNCTION_BLACKLIST,
    REASON_INIT_TEARDOWN,
    REASON_LOCK_MEMBER,
    REASON_MEMBER_BLACKLIST,
    FilterConfig,
)
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import Member, StructDef, StructRegistry


def build_rich_struct():
    return StructDef(
        "rich",
        [
            Member.scalar("plain", 8),
            Member.atomic("counter"),
            Member.lock("lk", "spinlock_t"),
            Member.scalar("secret", 8),
        ],
    )


@pytest.fixture
def rt():
    return KernelRuntime(StructRegistry([build_rich_struct()]))


def kept_members(rt, config):
    db = import_tracer(rt.tracer, rt.structs, config)
    return {a.member for a in db.kept_accesses()}, db


def test_atomic_member_filtered(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "rich")
    rt.atomic_read(ctx, obj, "counter")
    rt.read(ctx, obj, "plain")
    members, db = kept_members(rt, FilterConfig())
    assert members == {"plain"}
    assert db.filtered_counts() == {REASON_ATOMIC_MEMBER: 1}


def test_atomic_filter_can_be_disabled(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "rich")
    rt.atomic_read(ctx, obj, "counter")
    members, _ = kept_members(rt, FilterConfig(drop_atomic_members=False))
    assert "counter" in members


def test_lock_word_access_filtered(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "rich")
    # Simulate the VM seeing the raw lock-word store.
    rt.tracer.record_access(ctx, obj.addr_of("lk"), 4, is_write=True)
    members, db = kept_members(rt, FilterConfig())
    assert members == set()
    assert db.filtered_counts() == {REASON_LOCK_MEMBER: 1}


def test_member_blacklist(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "rich")
    rt.read(ctx, obj, "secret")
    config = FilterConfig(member_blacklist={("rich", "secret")})
    members, db = kept_members(rt, config)
    assert members == set()
    assert db.filtered_counts() == {REASON_MEMBER_BLACKLIST: 1}


def test_init_teardown_filter_scans_whole_stack(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "rich")
    with rt.function(ctx, "rich_init", "f.c", 1):
        with rt.function(ctx, "helper", "f.c", 20):
            rt.write(ctx, obj, "plain")
    rt.write(ctx, obj, "plain")  # post-init write survives
    config = FilterConfig(init_teardown_functions={"rich_init"})
    db = import_tracer(rt.tracer, rt.structs, config)
    kept = [a for a in db.kept_accesses() if a.member == "plain"]
    assert len(kept) == 1
    assert db.filtered_counts() == {REASON_INIT_TEARDOWN: 1}


def test_global_function_blacklist(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "rich")
    with rt.function(ctx, "atomic_inc", "atomic.h", 1):
        rt.write(ctx, obj, "plain")
    config = FilterConfig(global_function_blacklist={"atomic_inc"})
    members, db = kept_members(rt, config)
    assert members == set()
    assert db.filtered_counts() == {REASON_FUNCTION_BLACKLIST: 1}


def test_per_type_function_blacklist(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "rich")
    with rt.function(ctx, "special_path", "f.c", 1):
        rt.write(ctx, obj, "plain")
    config = FilterConfig(per_type_function_blacklist={"rich": {"special_path"}})
    members, _ = kept_members(rt, config)
    assert members == set()
    # ... but the same function does not filter other types:
    config2 = FilterConfig(per_type_function_blacklist={"other": {"special_path"}})
    members2, _ = kept_members(rt, config2)
    assert members2 == {"plain"}


def test_blacklisted_members_helper():
    config = FilterConfig(member_blacklist={("a", "x"), ("a", "y"), ("b", "z")})
    assert config.blacklisted_members("a") == {"x", "y"}
    assert config.blacklisted_members("c") == set()


def test_filter_precedence_lock_first():
    config = FilterConfig(member_blacklist={("t", "lk")})
    reason = config.reason_for("t", "lk", "lock", frozenset())
    assert reason == REASON_LOCK_MEMBER
