"""Lenient-import behavior: quarantine, synthetic closes, error budget.

Counterpart of :mod:`tests.db.test_importer`: the same importer run
against protocol-violating traces, under strict and lenient policies.
"""

import pytest

from repro.db.filters import (
    REASON_STALE_LOCK,
    REASON_SYNTHETIC_TXN,
    REASON_UNMATCHED_RELEASE,
)
from repro.db.health import ingest_events
from repro.db.importer import (
    ErrorBudgetExceeded,
    Importer,
    ImportError_,
    ImportPolicy,
    LENIENT_POLICY,
    Q_DUPLICATE_ALLOC,
    Q_FREE_UNKNOWN,
    Q_OVERLAPPING_ALLOC,
    Q_UNKNOWN_EVENT,
    import_trace,
)
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from repro.tracing.events import AccessEvent, AllocEvent, FreeEvent, LockEvent
from tests.conftest import make_pair_struct


@pytest.fixture
def world():
    registry = StructRegistry([make_pair_struct()])
    rt = KernelRuntime(registry)
    ctx = rt.new_task("t")
    return rt, ctx


def _trace_of(rt):
    stacks = [rt.tracer.stack(i) for i in range(rt.tracer.stack_count)]
    return list(rt.tracer.events), stacks


def _run(events, stacks, structs, policy=None):
    importer = Importer(structs, policy=policy)
    importer.run(events, stacks)
    return importer


class TestQuarantine:
    def test_free_unknown_alloc(self, world):
        rt, ctx = world
        events = [FreeEvent(ts=1, ctx_id=ctx.ctx_id, alloc_id=99, address=0x1000)]
        with pytest.raises(ImportError_, match="unknown/dead allocation"):
            import_trace(events, [()], rt.structs)
        importer = _run(events, [()], rt.structs, LENIENT_POLICY)
        assert [q.reason for q in importer.quarantine] == [Q_FREE_UNKNOWN]
        assert len(importer.db.allocations) == 0

    def test_duplicate_alloc_id(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        events, stacks = _trace_of(rt)
        duplicate = AllocEvent(
            ts=events[-1].ts + 1,
            ctx_id=ctx.ctx_id,
            alloc_id=obj.allocation.alloc_id,
            address=0x900000,
            size=64,
            data_type="pair",
            subclass=None,
        )
        events.append(duplicate)
        with pytest.raises(ImportError_, match="duplicate allocation"):
            import_trace(events, stacks, rt.structs)
        importer = _run(events, stacks, rt.structs, LENIENT_POLICY)
        assert [q.reason for q in importer.quarantine] == [Q_DUPLICATE_ALLOC]
        # The original allocation's identity survives untouched.
        row = importer.db.allocations[obj.allocation.alloc_id]
        assert row.address == obj.address

    def test_overlapping_alloc(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        events, stacks = _trace_of(rt)
        overlapping = AllocEvent(
            ts=events[-1].ts + 1,
            ctx_id=ctx.ctx_id,
            alloc_id=12345,
            address=obj.address + 8,  # lands inside the live object
            size=64,
            data_type="pair",
            subclass=None,
        )
        events.append(overlapping)
        with pytest.raises(ImportError_, match="overlaps"):
            import_trace(events, stacks, rt.structs)
        importer = _run(events, stacks, rt.structs, LENIENT_POLICY)
        assert [q.reason for q in importer.quarantine] == [Q_OVERLAPPING_ALLOC]
        assert 12345 not in importer.db.allocations

    def test_unknown_event_type_object(self, world):
        rt, _ = world
        with pytest.raises(ImportError_, match="unknown event"):
            import_trace([object()], [()], rt.structs)
        importer = _run([object()], [()], rt.structs, LENIENT_POLICY)
        assert [q.reason for q in importer.quarantine] == [Q_UNKNOWN_EVENT]

    def test_unmatched_release_counted_in_filter_stats(self, world):
        # Satellite check: the unmatched release is tolerated in both
        # modes but shows up in FilterStats under its dedicated reason.
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        lock = obj.lock("lock_a")
        rt.run(rt.spin_lock(ctx, lock))
        rt.spin_unlock(ctx, lock)
        events, stacks = _trace_of(rt)
        events = [
            e for e in events if not getattr(e, "is_acquire", False)
        ]
        for policy in (None, LENIENT_POLICY):
            importer = _run(events, stacks, rt.structs, policy)
            assert importer.unmatched_releases == 1
            assert importer.stats.by_reason[REASON_UNMATCHED_RELEASE] == 1
            assert [q.reason for q in importer.quarantine] == [
                REASON_UNMATCHED_RELEASE
            ]


class TestSyntheticClose:
    def _truncated_world(self, world):
        """Lock, write, then the trace ends before the release."""
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        events, stacks = _trace_of(rt)
        return rt, events, stacks

    def test_release_synthesized_and_txn_flagged(self, world):
        rt, events, stacks = self._truncated_world(world)
        importer = _run(events, stacks, rt.structs)
        assert importer.synthesized_releases == 1
        assert importer.synthetic_txns == 1
        txns = [t for t in importer.db.txns.values() if t.synthetic_close]
        assert len(txns) == 1 and not txns[0].no_locks

    def test_synthetic_accesses_filtered(self, world):
        rt, events, stacks = self._truncated_world(world)
        importer = _run(events, stacks, rt.structs)
        flagged = [
            a
            for a in importer.db.accesses
            if a.filter_reason == REASON_SYNTHETIC_TXN
        ]
        assert len(flagged) == 1 and flagged[0].member == "a"
        assert not any(a.member == "a" for a in importer.db.kept_accesses())
        assert importer.stats.by_reason[REASON_SYNTHETIC_TXN] == 1

    def test_observation_table_skips_synthetic_spans(self, world):
        from repro.core.observations import ObservationTable

        rt, events, stacks = self._truncated_world(world)
        db = import_trace(events, stacks, rt.structs)
        table = ObservationTable.from_database(db)
        assert table.total == 0
        assert table.synthetic_excluded == 1

    def test_clean_trace_has_no_synthetics(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
        events, stacks = _trace_of(rt)
        importer = _run(events, stacks, rt.structs)
        assert importer.synthesized_releases == 0
        assert importer.synthetic_txns == 0
        assert not any(t.synthetic_close for t in importer.db.txns.values())


class TestErrorBudget:
    def _garbage(self, count):
        return [
            FreeEvent(ts=i, ctx_id=1, alloc_id=1000 + i, address=0x1000 + i)
            for i in range(count)
        ]

    def test_budget_aborts_mostly_garbage_trace(self, world):
        rt, _ = world
        with pytest.raises(ErrorBudgetExceeded, match="error budget"):
            _run(self._garbage(100), [()], rt.structs, LENIENT_POLICY)

    def test_budget_disabled_at_one(self, world):
        rt, _ = world
        policy = ImportPolicy(lenient=True, max_malformed_fraction=1.0)
        importer = _run(self._garbage(100), [()], rt.structs, policy)
        assert len(importer.quarantine) == 100

    def test_tiny_traces_never_budgeted(self, world):
        rt, _ = world
        importer = _run(self._garbage(10), [()], rt.structs, LENIENT_POLICY)
        assert len(importer.quarantine) == 10

    def test_budget_threshold_is_sharp(self, world):
        rt, ctx = world
        for _ in range(8):
            obj = rt.new_object(ctx, "pair")
            rt.write(ctx, obj, "a")
            rt.delete_object(ctx, obj)
        events, stacks = _trace_of(rt)
        good = len(events)
        # Quarantined fraction just over 25% -> abort; just under -> ok.
        bad_over = int(good * 0.4)
        policy = ImportPolicy(
            lenient=True, max_malformed_fraction=0.25, min_events_for_budget=1
        )
        with pytest.raises(ErrorBudgetExceeded):
            _run(events + self._garbage(bad_over), stacks, rt.structs, policy)
        importer = _run(events + self._garbage(2), stacks, rt.structs, policy)
        assert len(importer.quarantine) == 2


def _lock_ev(ts, ctx, lock_id=7, acquire=True, mode="w", lock_class="spin"):
    return LockEvent(
        ts=ts,
        ctx_id=ctx,
        lock_id=lock_id,
        lock_class=lock_class,
        lock_name="L",
        address=None,
        is_acquire=acquire,
        mode=mode,
        stack_id=0,
        file="f.c",
        line=1,
    )


def _write_ev(ts, ctx, offset=0):
    return AccessEvent(
        ts=ts,
        ctx_id=ctx,
        address=0x1000 + offset,
        size=8,
        is_write=True,
        stack_id=0,
        file="f.c",
        line=2,
    )


_ALLOC = AllocEvent(
    ts=1, ctx_id=1, alloc_id=1, address=0x1000, size=64, data_type="pair", subclass=None
)


class TestStaleLockRepair:
    """Lost-release healing, hold-cap scrubbing, and span fencing."""

    @pytest.fixture
    def structs(self):
        return StructRegistry([make_pair_struct()])

    def test_same_ctx_exclusive_reacquire_heals(self, structs):
        # A context re-acquiring a held exclusive lock would deadlock in
        # reality, so the earlier release must have been dropped.
        events = [
            _ALLOC,
            _lock_ev(10, 1),
            _lock_ev(20, 1),
            _write_ev(21, 1),
            _lock_ev(22, 1, acquire=False),
        ]
        importer = _run(events, [()], structs)
        assert importer.healed_releases == 1
        assert importer.unmatched_releases == 0
        assert importer.synthesized_releases == 0

    def test_cross_context_acquire_heals_foreign_holder(self, structs):
        # Mutual exclusion: once ctx 2 acquires the lock, ctx 1's stale
        # entry is provably a lost release.
        events = [
            _ALLOC,
            _lock_ev(10, 1),
            _lock_ev(20, 2),
            _write_ev(21, 2),
            _lock_ev(22, 2, acquire=False),
        ]
        importer = _run(events, [()], structs)
        assert importer.healed_releases == 1
        assert importer.synthesized_releases == 0
        kept = [a for a in importer.db.kept_accesses() if a.member == "a"]
        assert len(kept) == 1 and len(kept[0].lockseq) == 1

    def test_scrub_strips_stale_lock_beyond_hold_cap(self, structs):
        # A clean hold (10..12) bounds how long the lock is credibly
        # held; past acquire+cap the stale entry is scrubbed from the
        # recorded lock sequences instead of the accesses being dropped.
        events = [
            _ALLOC,
            _lock_ev(10, 1),
            _lock_ev(12, 1, acquire=False),
            _lock_ev(20, 1),  # its release is lost
            _write_ev(21, 1),  # within the credible hold
            _write_ev(30, 1, offset=8),  # beyond it
            _write_ev(40, 1, offset=8),
            _lock_ev(50, 2),  # detection point
            _lock_ev(51, 2, acquire=False),
        ]
        importer = _run(events, [()], structs)
        assert importer.healed_releases == 1
        assert importer.scrubbed_accesses == 2
        assert importer.fenced_accesses == 0
        rows = {a.ts: a for a in importer.db.accesses}
        assert len(rows[21].lockseq) == 1
        assert rows[30].lockseq == () and rows[40].lockseq == ()
        # Scrubbed rows are repaired, not discarded.
        assert rows[30].filter_reason is None
        assert importer.health().scrubbed_accesses == 2

    def test_fence_when_lock_never_held_cleanly(self, structs):
        # No clean hold of the mutex exists anywhere, so there is no
        # basis to split the suspect span: fence it entirely.
        events = [
            _ALLOC,
            _lock_ev(10, 1, lock_id=8, lock_class="mutex"),
            _write_ev(20, 1),
            _lock_ev(30, 1),
            _lock_ev(31, 1, acquire=False),
        ]
        importer = _run(events, [()], structs)
        assert importer.synthesized_releases == 1
        assert importer.fenced_accesses == 1
        assert importer.scrubbed_accesses == 0
        row = next(a for a in importer.db.accesses if a.ts == 20)
        assert row.filter_reason == REASON_STALE_LOCK
        assert importer.stats.by_reason[REASON_STALE_LOCK] == 1
        assert not any(a.ts == 20 for a in importer.db.kept_accesses())

    def test_shared_reacquire_heal_is_policy_gated(self, structs):
        # RCU read sections nest legitimately: strict-mode import must
        # preserve the nesting, the lenient policy trades it for repair.
        events = [
            _ALLOC,
            _lock_ev(10, 1, lock_class="rcu", mode="r"),
            _lock_ev(11, 1, lock_class="rcu", mode="r"),
            _write_ev(12, 1),
            _lock_ev(13, 1, lock_class="rcu", mode="r", acquire=False),
            _lock_ev(14, 1, lock_class="rcu", mode="r", acquire=False),
        ]
        strict = _run(events, [()], structs)
        assert strict.healed_releases == 0
        assert strict.unmatched_releases == 0
        lenient = _run(events, [()], structs, LENIENT_POLICY)
        assert lenient.healed_releases == 1
        assert lenient.unmatched_releases == 1


class TestTraceHealth:
    def test_accounting_identity(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        events, stacks = _trace_of(rt)
        events.append(FreeEvent(ts=999, ctx_id=ctx.ctx_id, alloc_id=777, address=0x1))
        db, health = ingest_events(events, stacks, rt.structs, policy=LENIENT_POLICY)
        assert health.accounts_for_all_events()
        assert health.total_events == len(events)
        assert health.kept_events == len(events) - 1
        assert health.quarantined == {Q_FREE_UNKNOWN: 1}
        assert health.synthesized_releases == 1
        assert health.synthetic_txns == 1
        assert db.health is health or db.health.to_dict() == health.to_dict()

    def test_health_render_mentions_core_measures(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        rt.write(ctx, obj, "a")
        events, stacks = _trace_of(rt)
        _, health = ingest_events(events, stacks, rt.structs, policy=LENIENT_POLICY)
        text = health.render()
        assert "salvage ratio" in text
        assert "error budget" in text

    def test_dangling_stack_ref_counted(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        rt.tracer.record_access(ctx, obj.addr_of("a"), 8, is_write=True)
        events, stacks = _trace_of(rt)
        events = [
            event._replace(stack_id=424242) if hasattr(event, "stack_id") else event
            for event in events
        ]
        importer = _run(events, stacks, rt.structs, LENIENT_POLICY)
        assert importer.dangling_stack_refs > 0
        assert importer.health().dangling_stack_refs > 0
