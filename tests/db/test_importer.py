"""Unit tests for trace import: transaction construction, member
resolution, lock-reference abstraction, lifetime handling."""

import pytest

from repro.core.lockrefs import LockRef, Scope
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import Member, StructDef, StructRegistry
from tests.conftest import make_pair_struct


@pytest.fixture
def world():
    registry = StructRegistry([make_pair_struct()])
    rt = KernelRuntime(registry)
    ctx = rt.new_task("t")
    return rt, ctx


def _import(rt):
    return import_tracer(rt.tracer, rt.structs)


class TestTransactionConstruction:
    def test_access_under_lock_gets_txn(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
        db = _import(rt)
        access = [a for a in db.accesses if a.member == "a"][0]
        txn = db.txns[access.txn_id]
        assert not txn.no_locks
        assert len(txn.held) == 1

    def test_nested_lock_opens_new_txn(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
        rt.write(ctx, obj, "b")
        rt.spin_unlock(ctx, obj.lock("lock_b"))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
        db = _import(rt)
        accesses = {
            (a.member, len(db.txns[a.txn_id].held)) for a in db.kept_accesses()
        }
        assert ("a", 1) in accesses  # outer txn
        assert ("b", 2) in accesses  # nested txn
        # the two 'a' accesses land in two distinct single-lock txns
        a_txns = {a.txn_id for a in db.kept_accesses() if a.member == "a"}
        assert len(a_txns) == 2

    def test_lockless_accesses_get_pseudo_txn(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        with rt.function(ctx, "reader", "f.c", 1):
            rt.read(ctx, obj, "a")
            rt.read(ctx, obj, "b")
        db = _import(rt)
        txn_ids = {a.txn_id for a in db.kept_accesses()}
        assert len(txn_ids) == 1
        assert db.txns[next(iter(txn_ids))].no_locks

    def test_pseudo_txn_split_by_outer_function(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        with rt.function(ctx, "op1", "f.c", 1):
            rt.read(ctx, obj, "a")
        with rt.function(ctx, "op2", "f.c", 2):
            rt.read(ctx, obj, "a")
        db = _import(rt)
        txn_ids = {a.txn_id for a in db.kept_accesses()}
        assert len(txn_ids) == 2

    def test_txns_are_per_context(self, world):
        rt, ctx = world
        other = rt.new_task("other")
        obj = rt.new_object(ctx, "pair")
        mutex = rt.static_lock("m", "mutex")
        rt.run(rt.mutex_lock(ctx, mutex))
        rt.write(ctx, obj, "a")
        rt.read(other, obj, "b")  # other ctx holds nothing
        rt.mutex_unlock(ctx, mutex)
        db = _import(rt)
        a = [x for x in db.kept_accesses() if x.member == "a"][0]
        b = [x for x in db.kept_accesses() if x.member == "b"][0]
        assert not db.txns[a.txn_id].no_locks
        assert db.txns[b.txn_id].no_locks


class TestLockRefResolution:
    def test_embedded_same(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
        db = _import(rt)
        access = [a for a in db.kept_accesses() if a.member == "a"][0]
        assert access.lockseq == (LockRef.es("lock_a", "pair"),)

    def test_embedded_other(self, world):
        rt, ctx = world
        obj1 = rt.new_object(ctx, "pair")
        obj2 = rt.new_object(ctx, "pair")
        rt.run(rt.spin_lock(ctx, obj1.lock("lock_a")))
        rt.write(ctx, obj2, "a")  # foreign lock held
        rt.spin_unlock(ctx, obj1.lock("lock_a"))
        db = _import(rt)
        access = [a for a in db.kept_accesses() if a.member == "a"][0]
        assert access.lockseq == (LockRef.eo("lock_a", "pair"),)

    def test_global_lock(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        glock = rt.static_lock("big_lock", "spinlock_t")
        rt.run(rt.spin_lock(ctx, glock))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, glock)
        db = _import(rt)
        access = [a for a in db.kept_accesses() if a.member == "a"][0]
        assert access.lockseq == (LockRef.global_("big_lock"),)

    def test_pseudo_lock(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        rt.rcu_read_lock(ctx)
        rt.read(ctx, obj, "a")
        rt.rcu_read_unlock(ctx)
        db = _import(rt)
        access = [a for a in db.kept_accesses() if a.member == "a"][0]
        assert access.lockseq == (LockRef.global_("rcu", "r"),)

    def test_acquisition_order_preserved(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        glock = rt.static_lock("g", "spinlock_t")
        rt.run(rt.spin_lock(ctx, glock))
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
        rt.spin_unlock(ctx, glock)
        db = _import(rt)
        access = [a for a in db.kept_accesses() if a.member == "a"][0]
        assert [r.scope for r in access.lockseq] == [Scope.GLOBAL, Scope.ES]

    def test_same_ref_dedup(self, world):
        rt, ctx = world
        obj1 = rt.new_object(ctx, "pair")
        obj2 = rt.new_object(ctx, "pair")
        obj3 = rt.new_object(ctx, "pair")
        # two foreign lock_a instances collapse to one EO ref
        rt.run(rt.spin_lock(ctx, obj1.lock("lock_a")))
        rt.run(rt.spin_lock(ctx, obj2.lock("lock_a")))
        rt.write(ctx, obj3, "a")
        rt.spin_unlock(ctx, obj2.lock("lock_a"))
        rt.spin_unlock(ctx, obj1.lock("lock_a"))
        db = _import(rt)
        access = [a for a in db.kept_accesses() if a.member == "a"][0]
        assert access.lockseq == (LockRef.eo("lock_a", "pair"),)

    def test_lock_owner_metadata(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
        rt.spin_unlock(ctx, obj.lock("lock_b"))
        db = _import(rt)
        row = db.locks[obj.lock("lock_b").lock_id]
        assert row.owner_data_type == "pair"
        assert row.owner_member == "lock_b"
        assert not row.is_static


class TestAddressReuse:
    def test_accesses_attributed_by_lifetime(self, world):
        rt, ctx = world
        obj1 = rt.new_object(ctx, "pair")
        rt.write(ctx, obj1, "a")
        first_id = obj1.allocation.alloc_id
        rt.delete_object(ctx, obj1)
        obj2 = rt.new_object(ctx, "pair")  # reuses the address
        assert obj2.address == obj1.address
        rt.write(ctx, obj2, "a")
        db = _import(rt)
        ids = [a.alloc_id for a in db.kept_accesses() if a.member == "a"]
        assert len(ids) == 2 and ids[0] == first_id and ids[1] != first_id

    def test_access_to_dead_address_is_untyped(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        address = obj.addr_of("a")
        rt.delete_object(ctx, obj)
        rt.tracer.record_access(ctx, address, 8, is_write=True)
        db = _import(rt)
        dangling = [a for a in db.accesses if a.filter_reason == "untyped_address"]
        assert len(dangling) == 1


class TestMemberResolution:
    def test_nested_member(self):
        inner = StructDef("inner", [Member.scalar("x", 8)])
        outer = StructDef(
            "outer", [Member.scalar("h", 8), Member.struct("sub", inner)]
        )
        rt = KernelRuntime(StructRegistry([outer]))
        ctx = rt.new_task("t")
        obj = rt.new_object(ctx, "outer")
        rt.write(ctx, obj, "sub.x")
        db = import_tracer(rt.tracer, rt.structs)
        assert [a.member for a in db.kept_accesses()] == ["sub.x"]

    def test_unmatched_release_tolerated(self, world):
        rt, ctx = world
        from repro.db.importer import Importer

        obj = rt.new_object(ctx, "pair")
        lock = obj.lock("lock_a")
        rt.run(rt.spin_lock(ctx, lock))
        rt.spin_unlock(ctx, lock)
        # Craft a trace starting mid-stream: drop the acquire event.
        events = [e for e in rt.tracer.events if not (
            hasattr(e, "is_acquire") and e.is_acquire
        )]
        stacks = [rt.tracer.stack(i) for i in range(rt.tracer.stack_count)]
        importer = Importer(rt.structs)
        importer.run(events, stacks)
        assert importer.unmatched_releases == 1


class TestStats:
    def test_db_stats_consistent(self, world):
        rt, ctx = world
        obj = rt.new_object(ctx, "pair")
        rt.write(ctx, obj, "a")
        rt.delete_object(ctx, obj)
        db = _import(rt)
        stats = db.stats()
        assert stats["allocations"] == 1
        assert stats["frees"] == 1
        assert stats["accesses"] == 1
