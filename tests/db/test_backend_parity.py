"""Backend parity: ``--backend sqlite`` output is byte-identical.

Every analysis surface (rule derivation, documented-rule checking,
violation finding, race detection) is run through both trace backends
for each registry workload — on clean traces and on fault-corrupted
ones — and the *rendered text* is compared, not just summaries.  A
store that drops an access row, reorders a lockseq, or mangles one
flag would show up here as a one-character diff.
"""

import os
import subprocess
import sys

import pytest

from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.core.violations import ViolationFinder
from repro.db.health import ingest_events
from repro.db.importer import LENIENT_POLICY
from repro.db.sqlstore import SqliteTraceStore, build_store
from repro.faults import FaultPlan
from repro.serve import ops
from repro.tracing import serialize
from repro.workloads.registry import database_inputs

SCALE = 1.2

WORKLOADS = ("mix", "racer", "racer-safe")


# ----------------------------------------------------------------------
# Ops-level parity (the exact runners the CLI and daemon execute)
# ----------------------------------------------------------------------


def _both_backends(op: str, extra: dict) -> None:
    results = {
        backend: ops.execute(op, {**extra, "backend": backend})
        for backend in ("memory", "sqlite")
    }
    assert results["sqlite"]["text"] == results["memory"]["text"]
    assert results["sqlite"]["exit_code"] == results["memory"]["exit_code"]


@pytest.mark.parametrize("op", ["derive", "check", "violations"])
def test_mix_ops_identical(op):
    _both_backends(op, {"workload": "mix", "scale": SCALE})


@pytest.mark.parametrize("workload", WORKLOADS)
def test_races_identical(workload):
    _both_backends(
        "races", {"workload": workload, "scale": 1.0, "examples": 2}
    )


def test_violations_with_examples_identical():
    _both_backends(
        "violations", {"workload": "mix", "scale": SCALE, "examples": 3}
    )


def test_health_identical(tmp_path):
    from repro.workloads.racer import run_racer

    trace = tmp_path / "racer.bin"
    with open(trace, "wb") as fp:
        serialize.dump_binary(run_racer(seed=0, scale=0.5).tracer, fp)
    _both_backends("health", {"trace": str(trace), "registry": "racer"})


# ----------------------------------------------------------------------
# Corrupted-trace parity (2% event drops, lenient import)
# ----------------------------------------------------------------------


def _workload_trace(workload: str):
    if workload == "mix":
        from repro.workloads.mix import run_benchmark_mix

        result = run_benchmark_mix(seed=0, scale=SCALE)
        recipe = "vfs"
    else:
        from repro.workloads.racer import run_racer

        result = run_racer(seed=0, scale=1.0, racy=workload == "racer")
        recipe = "racer"
    return result.tracer, recipe


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("corrupted", [False, True])
def test_analysis_parity(tmp_path, workload, corrupted):
    """Derive + check + violations rendered output, both backends."""
    tracer, recipe = _workload_trace(workload)
    events = tracer.events
    if corrupted:
        events = FaultPlan.from_spec("drop:0.02", seed=1).apply_events(events)
    stacks = serialize.stacks_of(tracer)
    structs, filters = database_inputs(recipe)

    db, health = ingest_events(events, stacks, structs, filters, LENIENT_POLICY)
    path = tmp_path / "parity.store.sqlite"
    build_store(str(path), events, stacks, structs, filters, LENIENT_POLICY)
    store = SqliteTraceStore(str(path))
    try:
        memory_table = ObservationTable.from_database(db)
        sqlite_table = store.fold()

        memory_rules = Derivator(0.9).derive(memory_table)
        sqlite_rules = Derivator(0.9).derive(sqlite_table)
        assert _render_rules(sqlite_rules) == _render_rules(memory_rules)

        memory_hits = ViolationFinder(memory_rules, memory_table).find()
        sqlite_hits = ViolationFinder(sqlite_rules, sqlite_table).find()
        assert [v.format() for v in sqlite_hits] == [
            v.format() for v in memory_hits
        ]

        assert store.health() == health
    finally:
        store.close()


def _render_rules(derivation) -> list:
    return [
        (d.type_key, d.member, d.access_type, d.rule.format(),
         f"{d.winner.s_r:.6f}", d.observation_count)
        for d in derivation.all()
    ]


# ----------------------------------------------------------------------
# Through the daemon: --remote --backend sqlite
# ----------------------------------------------------------------------


class TestRemoteBackend:
    @pytest.fixture(scope="class")
    def daemon(self):
        from tests.serve.test_server_e2e import Daemon

        d = Daemon()
        yield d
        d.close()

    def test_remote_backends_identical(self, daemon):
        client = daemon.client()
        responses = {
            backend: client.request(
                "derive", {"scale": SCALE, "backend": backend}, deadline=300
            )
            for backend in ("memory", "sqlite")
        }
        assert (
            responses["sqlite"].result["text"]
            == responses["memory"].result["text"]
        )

    def test_cli_remote_sqlite_matches_local(self, daemon):
        repo = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo, "src")
        env["LOCKDOC_SERVE_DIR"] = daemon.serve_dir
        env["LOCKDOC_CACHE_DIR"] = daemon.cache_dir
        base = [
            sys.executable, "-m", "repro.cli", "violations",
            "--scale", str(SCALE), "--backend", "sqlite",
        ]
        remote = subprocess.run(
            base + ["--remote"], env=env, cwd=repo,
            capture_output=True, text=True, timeout=600,
        )
        local = subprocess.run(
            base, env=env, cwd=repo,
            capture_output=True, text=True, timeout=600,
        )
        assert remote.returncode == 0, remote.stderr
        assert local.returncode == 0, local.stderr
        assert remote.stdout == local.stdout

    def test_bad_backend_rejected(self, daemon):
        from repro.serve.client import RemoteError
        from repro.serve.protocol import E_BAD_REQUEST

        with pytest.raises(RemoteError) as info:
            daemon.client().request(
                "derive", {"scale": SCALE, "backend": "mariadb"}
            )
        assert info.value.kind == E_BAD_REQUEST
        assert "mariadb" in info.value.message
