"""Tests for the trace-database query layer."""

import pytest

from repro.core.lockrefs import LockRef
from repro.core.rules import LockingRule
from repro.db.importer import import_tracer
from repro.db.queries import (
    accesses_for_member,
    busiest_members,
    contexts_touching,
    counterexamples,
    derivator_input,
    locks_summary,
    txn_lock_histogram,
)
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct


@pytest.fixture
def db():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    other = rt.new_task("o")
    obj = rt.new_object(ctx, "pair", subclass="x")
    for _ in range(3):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    with rt.function(other, "peek", "f.c", 1):
        rt.read(other, obj, "a")
        rt.read(other, obj, "b")
    return import_tracer(rt.tracer, rt.structs)


def test_derivator_input_split(db):
    data = derivator_input(db)
    key = ("pair:x", "a", "w")
    assert key in data
    sequences = dict(data[key])
    assert sequences[(LockRef.es("lock_a", "pair"),)] == 3


def test_derivator_input_merged(db):
    data = derivator_input(db, split_subclasses=False)
    assert ("pair", "a", "w") in data
    assert ("pair:x", "a", "w") not in data


def test_counterexamples(db):
    rule = LockingRule.of(LockRef.es("lock_a", "pair"))
    bad_reads = counterexamples(db, "pair:x", "a", "r", rule)
    assert len(bad_reads) == 1  # the lockless peek
    good_writes = counterexamples(db, "pair:x", "a", "w", rule)
    assert good_writes == []


def test_accesses_for_member(db):
    rows = accesses_for_member(db, "pair:x", "a")
    assert len(rows) == 4  # 3 writes + 1 read
    assert [r.ts for r in rows] == sorted(r.ts for r in rows)


def test_txn_lock_histogram(db):
    histogram = txn_lock_histogram(db)
    assert histogram[1] == 3  # the three locked write txns
    assert histogram[0] == 1  # the lockless peek pseudo-txn


def test_locks_summary(db):
    summary = locks_summary(db)
    assert summary["spinlock_t"]["instances"] == 1
    assert summary["spinlock_t"]["embedded"] == 1
    assert summary["spinlock_t"]["static"] == 0


def test_busiest_members(db):
    ranked = busiest_members(db, limit=2)
    assert ranked[0][:2] == ("pair:x", "a")
    assert ranked[0][2] == 4


def test_contexts_touching(db):
    contexts = contexts_touching(db, "pair:x", "a")
    assert len(contexts) == 2  # writer task + peeking task
    assert sorted(contexts.values()) == [1, 3]
