"""Property test: the importer's lock tracking matches an independent
reference replay.

Hypothesis generates random single-context programs over two objects
(lock/unlock/read/write in legal orders); a tiny reference interpreter
tracks the held-lock set independently of the importer's transaction
machinery, and every imported access's lock sequence must match it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lockrefs import LockRef, dedup_refs
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct

# A program step: (op, object_index, lock_name_or_member)
_ops = st.lists(
    st.tuples(
        st.sampled_from(["lock", "unlock", "read", "write"]),
        st.integers(0, 1),
        st.sampled_from(["lock_a", "lock_b", "a", "b"]),
    ),
    max_size=40,
)


@settings(max_examples=80, deadline=None)
@given(_ops)
def test_property_imported_lockseq_matches_reference(program):
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    objects = [rt.new_object(ctx, "pair"), rt.new_object(ctx, "pair")]

    held = []  # reference: (object_index, lock_name) in acquisition order
    expected = []  # per access: the reference lock sequence

    for op, index, name in program:
        obj = objects[index]
        if op == "lock" and name.startswith("lock_"):
            if (index, name) in held:
                continue  # would self-deadlock; skip illegal step
            rt.run(rt.spin_lock(ctx, obj.lock(name)))
            held.append((index, name))
        elif op == "unlock" and name.startswith("lock_"):
            if (index, name) not in held:
                continue
            rt.spin_unlock(ctx, obj.lock(name))
            held.remove((index, name))
        elif op in ("read", "write") and not name.startswith("lock_"):
            if op == "read":
                rt.read(ctx, obj, name)
            else:
                rt.write(ctx, obj, name)
            refs = []
            for held_index, held_name in held:
                if held_index == index:
                    refs.append(LockRef.es(held_name, "pair"))
                else:
                    refs.append(LockRef.eo(held_name, "pair"))
            expected.append(dedup_refs(refs))
    # drain remaining locks so nothing is leaked
    for index, name in reversed(held):
        rt.spin_unlock(ctx, objects[index].lock(name))

    db = import_tracer(rt.tracer, rt.structs)
    imported = [a.lockseq for a in db.accesses if a.kept]
    assert imported == expected
