"""Tests for the SQLite backend (Fig. 6 schema + SQL violation query)."""

import pytest

from repro.core.lockrefs import LockRef
from repro.db.importer import import_tracer
from repro.db.sqlbackend import export_sqlite, find_violations_sql, table_counts
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct


@pytest.fixture
def traced_world():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair", subclass="x")
    for _ in range(5):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    with rt.function(ctx, "buggy_path", "bug.c", 7):
        rt.write(ctx, obj, "a", line=8)
    rt.delete_object(ctx, obj)
    return rt, import_tracer(rt.tracer, rt.structs)


def test_export_row_counts(traced_world):
    rt, db = traced_world
    connection = export_sqlite(db)
    counts = table_counts(connection)
    assert counts["data_types"] == 1
    assert counts["allocations"] == 1
    assert counts["accesses"] == len(db.accesses)
    assert counts["txns"] == len(db.txns)
    assert counts["subclasses"] == 1
    assert counts["type_layout"] == 4  # a, b, lock_a, lock_b


def test_access_locks_match_python_side(traced_world):
    rt, db = traced_world
    connection = export_sqlite(db)
    (locked_count,) = connection.execute(
        "SELECT COUNT(DISTINCT access_id) FROM access_locks"
    ).fetchone()
    python_side = sum(1 for a in db.accesses if a.lockseq)
    assert locked_count == python_side


def test_sql_violation_query_finds_the_bug(traced_world):
    rt, db = traced_world
    connection = export_sqlite(db)
    hits = find_violations_sql(
        connection, "pair", "a", "w", [LockRef.es("lock_a", "pair")]
    )
    assert len(hits) == 1
    _, subclass, file, line, _ = hits[0]
    assert (file, line) == ("bug.c", 8)


def test_sql_violation_query_mode_semantics():
    """A write-mode hold satisfies a read-mode requirement in SQL too."""
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    # hold nothing -> both queries hit; (the mode logic is covered by
    # checking a read-mode rule against no-lock accesses)
    rt.read(ctx, obj, "a")
    db = import_tracer(rt.tracer, rt.structs)
    connection = export_sqlite(db)
    hits = find_violations_sql(
        connection, "pair", "a", "r", [LockRef.es("lock_a", "pair", "r")]
    )
    assert len(hits) == 1


def test_filtered_accesses_excluded(traced_world):
    rt, db = traced_world
    connection = export_sqlite(db)
    # atomic accesses etc. carry filter_reason and are skipped by the query
    (total,) = connection.execute(
        "SELECT COUNT(*) FROM accesses WHERE filter_reason IS NOT NULL"
    ).fetchone()
    assert total == len(db.accesses) - len(db.kept_accesses())


def test_file_export(tmp_path, traced_world):
    rt, db = traced_world
    path = tmp_path / "trace.sqlite"
    connection = export_sqlite(db, str(path))
    connection.close()
    import sqlite3

    reopened = sqlite3.connect(str(path))
    assert table_counts(reopened)["accesses"] == len(db.accesses)


def test_stack_traces_exported(traced_world):
    rt, db = traced_world
    connection = export_sqlite(db)
    rows = connection.execute(
        "SELECT function, file, line FROM stack_traces WHERE function='buggy_path'"
    ).fetchall()
    assert rows == [("buggy_path", "bug.c", 7)]
