"""Streaming import must equal batch import — including under faults.

``Importer.run`` accepts any iterable: the materialized event list of
a batch load, or the lazy iterator of a streaming binary load.  This
regression suite pins the contract that the two paths are *identical*
in every observable — kept/quarantined accounting, error-budget
enforcement (:class:`ErrorBudgetExceeded` at the same point with the
same message), and the database rows that come out — even when the
input stream was corrupted by fault injection first.
"""

import io

import pytest

from repro.db.importer import (
    ErrorBudgetExceeded,
    ImportPolicy,
    LENIENT_POLICY,
    import_trace,
)
from repro.faults import FaultPlan
from repro.tracing import serialize
from repro.tracing.events import FreeEvent
from repro.workloads.racer import build_racer_registry, run_racer

FAULT_SPECS = ("flip:0.002", "torn:0.1", "flip:0.002,torn:0.1")


@pytest.fixture(scope="module")
def racer_binary():
    tracer = run_racer(seed=0, scale=1.0).tracer
    events = list(tracer.events)
    stacks = serialize.stacks_of(tracer)
    return serialize.dumps_events_binary(events, stacks)


@pytest.fixture(scope="module")
def structs():
    return build_racer_registry()


def _db_fingerprint(db):
    """Everything observable about an imported database."""
    return {
        "health": db.health.to_dict(),
        "allocations": sorted(db.allocations),
        "locks": sorted(db.locks),
        "txns": sorted(db.txns),
        "accesses": len(db.accesses),
        "access_rows": [repr(row) for row in db.accesses[:200]],
    }


@pytest.mark.parametrize("spec", FAULT_SPECS)
def test_streaming_equals_batch_over_corrupted_trace(
    racer_binary, structs, spec
):
    mutated = FaultPlan.from_spec(spec, seed=1).corrupt_binary(racer_binary)
    report = serialize.loads_binary_lenient(mutated)
    assert report.events, "corruption should leave a salvageable prefix"

    batch = import_trace(
        list(report.events), report.stacks, structs, policy=LENIENT_POLICY
    )
    # A true single-pass iterator: no len(), no second traversal.
    streamed = import_trace(
        iter(report.events), report.stacks, structs, policy=LENIENT_POLICY
    )
    assert _db_fingerprint(streamed) == _db_fingerprint(batch)
    assert streamed.health.accounts_for_all_events()


def test_file_stream_equals_batch_on_clean_trace(racer_binary, structs):
    """The real streaming consumer: ``open_binary_stream`` off a file."""
    stream = serialize.open_binary_stream(io.BytesIO(racer_binary))
    streamed = import_trace(
        stream.events, stream.stacks, structs, policy=LENIENT_POLICY
    )
    events, stacks = serialize.load_binary(io.BytesIO(racer_binary))
    batch = import_trace(events, stacks, structs, policy=LENIENT_POLICY)
    assert _db_fingerprint(streamed) == _db_fingerprint(batch)


class TestBudgetIdentity:
    """Error budgets bite at the same place with the same message."""

    def _bad_events(self, n):
        # Frees of allocations that never existed: every one of these
        # is quarantined by the importer.
        return [
            FreeEvent(ts=i, ctx_id=0, alloc_id=9000 + i, address=0)
            for i in range(n)
        ]

    def test_budget_exceeded_identically(self, structs):
        policy = ImportPolicy(lenient=True, max_malformed_fraction=0.25)
        bad = self._bad_events(100)
        errors = []
        for shape in (list(bad), iter(list(bad))):
            with pytest.raises(ErrorBudgetExceeded) as info:
                import_trace(shape, [()], structs, policy=policy)
            errors.append(str(info.value))
        assert errors[0] == errors[1]

    def test_below_budget_floor_not_enforced_identically(self, structs):
        # Under min_events_for_budget the budget must not trip — for
        # either shape — even at 100% malformed.
        policy = ImportPolicy(lenient=True, max_malformed_fraction=0.25)
        assert policy.min_events_for_budget > 10
        bad = self._bad_events(10)
        batch = import_trace(list(bad), [()], structs, policy=policy)
        streamed = import_trace(iter(list(bad)), [()], structs, policy=policy)
        assert _db_fingerprint(streamed) == _db_fingerprint(batch)
        assert batch.health.quarantined_total == 10
