"""End-to-end tests for the static-analysis driver."""

import json

import pytest

from repro.staticcheck import run_static_analysis
from repro.staticcheck.plan import PLANT_COVERAGE_GAP, PLANT_SKIP


@pytest.fixture(scope="module")
def result():
    return run_static_analysis()


def test_perfect_score_on_planted_set(result):
    assert result.score.fp == 0, result.score.unexpected
    assert result.score.fn == 0, result.score.missed
    assert result.score.precision == 1.0
    assert result.score.recall == 1.0
    assert result.score.tp == len(result.plan.planted)
    assert result.score.tp >= 30  # the spec plants a substantial set


def test_both_plant_kinds_present(result):
    reasons = {p.reason for p in result.plan.planted}
    assert reasons == {PLANT_SKIP, PLANT_COVERAGE_GAP}


def test_deterministic_across_runs(result):
    again = run_static_analysis()
    assert result.tree == again.tree
    assert json.dumps(result.report.to_json_dict(), sort_keys=True) == (
        json.dumps(again.report.to_json_dict(), sort_keys=True)
    )


def test_findings_carry_path_and_missing_context(result):
    for finding in result.report.findings:
        assert finding.path.chain, finding
        assert finding.missing, finding
        assert set(finding.missing) <= set(finding.majority)
        assert 0.0 < finding.support < 1.0


def test_counters_consistent(result):
    counters = result.report.counters
    assert counters["flagged_targets"] == result.score.tp
    assert counters["paths"] > counters["targets"]
    assert counters["call_edges"] > 0
    assert result.report.functions > 1000


def test_corpus_functions_all_balanced(result):
    unbalanced = [
        fn.name for fn in result.graph.functions.values() if not fn.balanced
    ]
    assert unbalanced == []


def test_ambivalent_target_not_flagged(result):
    summaries = {summary.target: summary for summary in result.report.summaries}
    # d_flags reads have a sanctioned lock-free fast path: no majority
    # context, nothing flagged.
    summary = summaries[("dentry", "d_flags", "r")]
    assert summary.outliers == 0
    assert summary.majority == ()


def test_coverage_gap_targets_flagged(result):
    gap_keys = {
        p.key for p in result.plan.planted if p.reason == PLANT_COVERAGE_GAP
    }
    assert gap_keys
    assert gap_keys <= set(result.report.flagged_targets)


def test_score_stable_across_thresholds():
    for threshold in (0.7, 0.75, 0.8):
        run = run_static_analysis(threshold=threshold)
        assert run.score.fp == 0 and run.score.fn == 0, threshold


def test_parameter_validation():
    with pytest.raises(ValueError):
        run_static_analysis(threshold=1.5)
    with pytest.raises(ValueError):
        run_static_analysis(threshold=0.3)
    with pytest.raises(ValueError):
        run_static_analysis(max_depth=1)


def test_render_and_json_roundtrip(result):
    text = result.report.render(limit=5)
    assert "Static outliers" in text
    assert "more finding(s)" in text
    payload = result.report.to_json_dict()
    assert payload["counters"]["flagged_targets"] == result.score.tp
    assert len(payload["findings"]) == len(result.report.findings)
    json.dumps(payload)  # serializable
