"""Tests for the corpus C parser (repro.staticcheck.parser)."""

from repro.staticcheck.parser import parse_source

SNIPPET = """\
// SPDX-License-Identifier: GPL-2.0
static void inode_touch(struct inode *inode);

/* the wrapper takes the rule locks */
static void inode_touch(struct inode *inode)
{
\tspin_lock(&inode->i_lock);
\tinode->i_state = 0;
\tspin_unlock(&inode->i_lock);
}

static void inode_sys(struct inode *inode)
{
\tinode_touch(inode);
}
"""


def parse(snippet=SNIPPET):
    return {fn.name: fn for fn in parse_source("fs/x.c", snippet)}


def test_prototypes_are_not_functions():
    functions = parse()
    assert set(functions) == {"inode_touch", "inode_sys"}


def test_access_records_held_snapshot():
    functions = parse()
    accesses = functions["inode_touch"].accesses
    assert len(accesses) == 1
    access = accesses[0]
    assert (access.var, access.var_type, access.member) == (
        "inode", "inode", "i_state"
    )
    assert access.access_type == "w"
    assert [(h.owner_var, h.name, h.mode) for h in access.held] == [
        ("inode", "i_lock", "w")
    ]


def test_call_site_snapshot_and_balance():
    functions = parse()
    assert functions["inode_touch"].balanced
    site = functions["inode_sys"].calls[0]
    assert site.callee == "inode_touch"
    assert site.args == ("inode",)
    assert site.held == ()


def test_irq_flavor_adds_pseudo_lock_first():
    functions = parse(
        "static void f(struct inode *inode)\n{\n"
        "\tspin_lock_irq(&inode->i_lock);\n"
        "\tinode->i_size = 0;\n"
        "\tspin_unlock_irq(&inode->i_lock);\n}\n"
    )
    held = functions["f"].accesses[0].held
    assert [(h.owner_var, h.name) for h in held] == [
        ("", "hardirq"), ("inode", "i_lock")
    ]
    assert functions["f"].balanced


def test_rcu_and_global_locks():
    functions = parse(
        "static void g(struct dentry *dentry)\n{\n"
        "\trcu_read_lock();\n"
        "\tread_lock(&tasklist_lock);\n"
        "\t(void)dentry->d_flags;\n"
        "\tread_unlock(&tasklist_lock);\n"
        "\trcu_read_unlock();\n}\n"
    )
    held = functions["g"].accesses[0].held
    assert [(h.owner_var, h.name, h.mode) for h in held] == [
        ("", "rcu", "r"), ("", "tasklist_lock", "r")
    ]
    assert functions["g"].balanced


def test_reader_writer_modes():
    functions = parse(
        "static void h(struct super_block *sb)\n{\n"
        "\tdown_read(&sb->s_umount);\n"
        "\t(void)sb->s_flags;\n"
        "\tup_read(&sb->s_umount);\n}\n"
    )
    held = functions["h"].accesses[0].held
    assert [(h.name, h.mode) for h in held] == [("s_umount", "r")]


def test_unbalanced_function_reports_gen_and_kill():
    functions = parse(
        "static void leak(struct inode *inode)\n{\n"
        "\tspin_lock(&inode->i_lock);\n}\n"
        "static void steal(struct inode *inode)\n{\n"
        "\tspin_unlock(&inode->i_lock);\n}\n"
    )
    assert [h.name for h in functions["leak"].gen] == ["i_lock"]
    assert functions["steal"].kill == ("i_lock",)
    assert not functions["leak"].balanced


def test_local_decl_registers_type_and_counts_deref_read():
    functions = parse(
        "static void via(struct inode *inode)\n{\n"
        "\tstruct backing_dev_info *bdi = inode->i_bdi;\n"
        "\tspin_lock(&bdi->wb.list_lock);\n"
        "\tinode->i_wb_list = 0;\n"
        "\tspin_unlock(&bdi->wb.list_lock);\n}\n"
    )
    fn = functions["via"]
    assert fn.var_types["bdi"] == "backing_dev_info"
    # the decl's RHS is a read of inode->i_bdi
    first = fn.accesses[0]
    assert (first.member, first.access_type) == ("i_bdi", "r")
    write = fn.accesses[1]
    assert write.member == "i_wb_list"
    assert [(h.owner_var, h.owner_type, h.name) for h in write.held] == [
        ("bdi", "backing_dev_info", "wb.list_lock")
    ]
    assert fn.balanced


def test_comment_openers_in_strings_do_not_hide_code():
    functions = parse(
        "static void s(struct inode *inode)\n{\n"
        '\tpr_warn("/* not a comment");\n'
        "\tspin_lock(&inode->i_lock);\n"
        "\tinode->i_flags = 0;\n"
        "\tspin_unlock(&inode->i_lock);\n}\n"
    )
    access = functions["s"].accesses[-1]
    assert access.member == "i_flags"
    assert [h.name for h in access.held] == ["i_lock"]


def test_seqcount_read_side():
    functions = parse(
        "static void q(struct dentry *dentry)\n{\n"
        "\tseq = read_seqcount_begin(&dentry->d_seq);\n"
        "\t(void)dentry->d_name;\n"
        "\t(void)read_seqcount_retry(&dentry->d_seq, seq);\n}\n"
    )
    held = functions["q"].accesses[0].held
    assert [(h.name, h.mode) for h in held] == [("d_seq", "r")]
    assert functions["q"].balanced
