"""Tests for static/dynamic fusion (repro.staticcheck.fusion)."""

import json

from repro.core.lockrefs import LockRef
from repro.core.rules import LockingRule
from repro.core.rulesio import ExportedRule, rules_from_json, rules_to_json
from repro.core.violations import ViolationFinder
from repro.staticcheck import fuse, run_static_analysis
from repro.staticcheck.callgraph import PathContext
from repro.staticcheck.fusion import CONFIRMED, DYNAMIC_ONLY, STATIC_ONLY
from repro.staticcheck.outliers import StaticFinding, StaticReport, TargetSummary

I_LOCK = LockRef.es("i_lock", "inode")


def make_static_report(targets):
    path = PathContext(chain=("root", "raw"), refs=())
    findings = [
        StaticFinding(
            target=target, path=path, missing=(I_LOCK,), majority=(I_LOCK,),
            paths_total=4, support=0.75,
        )
        for target in targets
    ]
    summaries = [
        TargetSummary(
            target=target, majority=(I_LOCK,), paths_total=4,
            truncated_paths=0, outliers=1,
        )
        for target in targets
    ]
    return StaticReport(
        findings=findings, summaries=summaries, threshold=0.7, max_depth=8
    )


def exported(member, s_r, locks=(I_LOCK,)):
    return ExportedRule(
        type_key="inode:ext4", member=member, access_type="w",
        rule=LockingRule(tuple(locks)), s_a=10, s_r=s_r, observations=10,
    )


def test_classification_three_way():
    report = make_static_report([
        ("inode", "i_state", "w"),   # mined with counterexamples
        ("inode", "i_flags", "w"),   # mined, fully complied
        ("inode", "i_nlink", "w"),   # never observed dynamically
    ])
    rules = [
        exported("i_state", 0.9),
        exported("i_flags", 1.0),
        exported("i_mode", 0.8),     # violating but not flagged statically
    ]
    fusion = fuse(report, rules)
    by_target = {entry.target: entry for entry in fusion.entries}
    assert by_target[("inode", "i_state", "w")].classification == CONFIRMED
    assert by_target[("inode", "i_flags", "w")].classification == STATIC_ONLY
    assert "coverage gap" in by_target[("inode", "i_flags", "w")].detail
    assert by_target[("inode", "i_nlink", "w")].classification == STATIC_ONLY
    assert "unobserved" in by_target[("inode", "i_nlink", "w")].detail
    assert by_target[("inode", "i_mode", "w")].classification == DYNAMIC_ONLY
    assert fusion.counts() == {CONFIRMED: 1, STATIC_ONLY: 2, DYNAMIC_ONLY: 1}


def test_rule_agreement_kinds():
    extra = LockRef.global_("inode_hash_lock")
    report = make_static_report([("inode", "i_state", "w")])
    fusion = fuse(report, [exported("i_state", 1.0)])
    assert fusion.agreement == {"matches": 1}
    fusion = fuse(report, [exported("i_state", 1.0, locks=(I_LOCK, extra))])
    assert fusion.agreement == {"static-weaker": 1}
    fusion = fuse(report, [exported("i_state", 1.0, locks=(extra,))])
    assert fusion.agreement == {"disagrees": 1}
    fusion = fuse(report, [])
    assert fusion.agreement == {"unmined": 1}


def test_render_and_json():
    report = make_static_report([("inode", "i_state", "w")])
    fusion = fuse(report, [exported("i_state", 0.9)])
    text = fusion.render()
    assert "Fusion report" in text and "Rule agreement" in text
    payload = fusion.to_json_dict()
    assert payload["counts"][CONFIRMED] == 1
    json.dumps(payload)


def test_fusion_against_real_pipeline(derivation, pipeline):
    """The acceptance-criteria path: fuse the real static report with
    the real mined rules; at least one finding must be static-only
    (the planted coverage gaps are unreachable dynamically)."""
    rules = rules_from_json(rules_to_json(derivation))
    violations = ViolationFinder(derivation, pipeline.table).find()
    result = run_static_analysis()
    fusion = fuse(result.report, rules, violations)
    counts = fusion.counts()
    assert counts[STATIC_ONLY] >= 1
    # every static finding appears in the fusion report
    assert sum(
        entry.static_outliers for entry in fusion.entries
    ) == len(result.report.findings)
    # agreement: the static majority context matches the mined rule for
    # the overwhelming share of mined targets
    matches = fusion.agreement.get("matches", 0)
    assert matches >= 100
