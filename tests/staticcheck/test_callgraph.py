"""Tests for call-graph construction and upward context tracing."""

import pytest

from repro.core.lockrefs import LockRef, Scope
from repro.staticcheck.callgraph import (
    build_call_graph,
    resolve,
    trace_access,
)
from repro.staticcheck.parser import HeldLock, parse_source

CORPUS = """\
static void raw(struct inode *inode)
{
\tinode->i_state = 0;
}

static void locked(struct inode *inode)
{
\tspin_lock(&inode->i_lock);
\traw(inode);
\tspin_unlock(&inode->i_lock);
}

static void root_a(struct inode *inode)
{
\tlocked(inode);
}

static void root_b(struct inode *inode)
{
\tlocked(inode);
}

static void root_bare(struct inode *inode)
{
\traw(inode);
}
"""


@pytest.fixture()
def graph():
    return build_call_graph(parse_source("fs/a.c", CORPUS))


def test_reverse_edges(graph):
    assert sorted(name for name, _ in graph.callers["locked"]) == [
        "root_a", "root_b"
    ]
    assert graph.edges == 4  # raw<-{locked,root_bare}, locked<-{root_a,root_b}


def test_duplicate_definitions_rejected():
    functions = parse_source("fs/a.c", CORPUS) + parse_source("fs/b.c", CORPUS)
    with pytest.raises(ValueError):
        build_call_graph(functions)


def test_resolve_scopes():
    es = resolve(HeldLock("inode", "inode", "i_lock", "w"), "inode")
    assert es == LockRef.es("i_lock", "inode")
    eo = resolve(HeldLock("other", "inode", "i_lock", "w"), "inode")
    assert eo.scope == Scope.EO
    glob = resolve(HeldLock("", "", "rcu", "r"), "inode")
    assert glob == LockRef.global_("rcu", "r")
    # losing the self binding demotes ES to EO
    lost = resolve(HeldLock("inode", "inode", "i_lock", "w"), None)
    assert lost.scope == Scope.EO


def test_trace_enumerates_all_roots(graph):
    access = graph.functions["raw"].accesses[0]
    paths = trace_access(graph, access)
    chains = sorted(path.chain for path in paths)
    assert chains == [
        ("root_a", "locked", "raw"),
        ("root_b", "locked", "raw"),
        ("root_bare", "raw"),
    ]
    by_root = {path.chain[0]: path for path in paths}
    locked_ref = LockRef.es("i_lock", "inode")
    assert locked_ref in by_root["root_a"].refs
    assert locked_ref in by_root["root_b"].refs
    assert by_root["root_bare"].refs == ()
    assert not any(path.truncated for path in paths)


def test_depth_bound_truncates(graph):
    access = graph.functions["raw"].accesses[0]
    paths = trace_access(graph, access, max_depth=2)
    assert {path.chain for path in paths} == {
        ("locked", "raw"),
        ("root_bare", "raw"),
    }
    truncated = [p for p in paths if p.truncated]
    assert [p.chain for p in truncated] == [("locked", "raw")]


def test_cycle_is_cut_not_dropped():
    corpus = (
        "static void raw(struct inode *inode)\n{\n"
        "\t(void)inode->i_flags;\n}\n"
        "static void walk(struct inode *inode)\n{\n"
        "\traw(inode);\n\tstep(inode);\n}\n"
        "static void step(struct inode *inode)\n{\n"
        "\twalk(inode);\n}\n"
    )
    graph = build_call_graph(parse_source("fs/c.c", corpus))
    access = graph.functions["raw"].accesses[0]
    paths = trace_access(graph, access)
    # walk <-> step is a pure cycle with no external root: the walk
    # terminates and emits the chain as truncated.
    assert len(paths) == 1
    assert paths[0].truncated
    assert paths[0].chain[-1] == "raw"


def test_argument_rebinding_demotes_to_eo():
    corpus = (
        "static void raw(struct inode *inode)\n{\n"
        "\tinode->i_state = 0;\n}\n"
        "static void cross(struct inode *a, struct inode *b)\n{\n"
        "\tspin_lock(&a->i_lock);\n"
        "\traw(b);\n"
        "\tspin_unlock(&a->i_lock);\n}\n"
        "static void entry(struct inode *a, struct inode *b)\n{\n"
        "\tcross(a, b);\n}\n"
    )
    graph = build_call_graph(parse_source("fs/d.c", corpus))
    access = graph.functions["raw"].accesses[0]
    paths = trace_access(graph, access)
    assert len(paths) == 1
    # a's lock is held while b is written: EO, not ES.
    assert paths[0].refs == (LockRef.eo("i_lock", "inode"),)
