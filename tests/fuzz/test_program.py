"""SyscallProgram IR: validation, round-trips, compilation."""

import random

import pytest

from repro.fuzz.program import (
    _ARITY,
    OP_KINDS,
    ProgramWorkload,
    SyscallOp,
    SyscallProgram,
)
from repro.fuzz.mutate import random_program


def _simple_program() -> SyscallProgram:
    return SyscallProgram(
        threads=[
            [SyscallOp("create", (1,)), SyscallOp("write", (3, 0))],
            [SyscallOp("exercise", (0, 5)), SyscallOp("journal", (2,))],
        ],
        sched_seed=7,
    )


def test_op_rejects_unknown_kind():
    with pytest.raises(ValueError):
        SyscallOp("fork_bomb", ())


def test_op_rejects_wrong_arity():
    with pytest.raises(ValueError):
        SyscallOp("create", (1, 2, 3, 4, 5, 6, 7))


def test_op_list_round_trip():
    op = SyscallOp("lru", (9, 4, 1))
    assert SyscallOp.from_list(op.to_list()) == op


def test_program_dict_round_trip():
    program = _simple_program()
    clone = SyscallProgram.from_dict(program.to_dict())
    assert clone == program
    assert clone.key() == program.key()
    assert clone.op_count == 4


def test_random_program_dict_round_trip():
    rng = random.Random(42)
    for _ in range(25):
        program = random_program(rng)
        assert SyscallProgram.from_dict(program.to_dict()) == program


def test_program_key_distinguishes_sched_seed():
    program = _simple_program()
    other = SyscallProgram(threads=program.threads, sched_seed=8)
    assert program.key() != other.key()


def test_compile_yields_one_body_per_thread():
    from repro.kernel import reset_id_counters
    from repro.kernel.vfs.fs import VfsWorld

    reset_id_counters()
    world = VfsWorld(seed=1)
    world.boot()
    compiled = _simple_program().compile(world)
    assert [name for name, _ in compiled] == ["fuzz/0", "fuzz/1"]
    assert all(callable(body) for _, body in compiled)


def test_program_runs_as_workload():
    from repro.kernel import reset_id_counters
    from repro.kernel.sched import Scheduler
    from repro.kernel.vfs.fs import VfsWorld

    reset_id_counters()
    world = VfsWorld(seed=1)
    world.boot()
    scheduler = Scheduler(world.rt, seed=2)
    workload = ProgramWorkload(world, _simple_program())
    for name, body in workload.threads():
        scheduler.spawn(name, body)
    steps = scheduler.run()
    assert steps > 0
    assert world.rt.tracer.stats.total_events > 0


def test_every_op_kind_executes():
    """Each opcode maps to a real entry point (no silent no-ops)."""
    from repro.fuzz.feedback import execute_program

    program = SyscallProgram(
        threads=[
            [SyscallOp(kind, tuple(1 for _ in range(_ARITY[kind])))
             for kind in OP_KINDS]
        ],
        sched_seed=3,
    )
    execution = execute_program(program)
    assert execution.events > 0
    assert execution.coverage.pair_count > 0
