"""Campaign-level behaviour: determinism, growth, replay, registry."""

import pytest

from repro.fuzz.corpus import Corpus
from repro.fuzz.orchestrator import (
    FuzzConfig,
    FuzzOrchestrator,
    baseline_coverage,
    replay_corpus,
)


@pytest.fixture(scope="module")
def baseline():
    return baseline_coverage(seed=0, scale=1.0)


@pytest.fixture(scope="module")
def outcome(baseline):
    config = FuzzConfig(seed=0, generations=3, population=8)
    return FuzzOrchestrator(config).run(baseline=baseline)


def _strip_wall(corpus: Corpus) -> dict:
    data = corpus.to_dict()
    for record in data["records"]:
        record["wall_s"] = 0.0
    return data


def test_campaign_admits_programs_and_records_generations(outcome):
    assert outcome.corpus.entries
    assert len(outcome.corpus.records) == 3
    assert all(r.candidates == 8 for r in outcome.corpus.records)


def test_coverage_is_monotonically_non_decreasing(outcome):
    pair_curve = [r.pair_coverage for r in outcome.corpus.records]
    func_curve = [r.function_coverage for r in outcome.corpus.records]
    assert pair_curve == sorted(pair_curve)
    assert func_curve == sorted(func_curve)


def test_acceptance_pair_growth_over_mix_baseline(outcome):
    """ISSUE acceptance: fixed-seed 3-generation campaign grows pair
    coverage >= 20% over the mix alone."""
    assert outcome.pair_growth >= 0.20


def test_campaign_is_deterministic(baseline, outcome):
    again = FuzzOrchestrator(
        FuzzConfig(seed=0, generations=3, population=8)
    ).run(baseline=baseline)
    assert _strip_wall(again.corpus) == _strip_wall(outcome.corpus)


def test_parallel_campaign_matches_serial(baseline, outcome):
    parallel = FuzzOrchestrator(
        FuzzConfig(seed=0, generations=3, population=8, jobs=2)
    ).run(baseline=baseline)
    assert _strip_wall(parallel.corpus) == _strip_wall(outcome.corpus)


def test_different_seed_changes_the_campaign(baseline, outcome):
    other = FuzzOrchestrator(
        FuzzConfig(seed=1, generations=3, population=8)
    ).run(baseline=baseline)
    assert _strip_wall(other.corpus) != _strip_wall(outcome.corpus)


def test_replay_reproduces_coverage_bit_for_bit(outcome):
    result = replay_corpus(outcome.corpus)
    assert result.identical
    assert result.mismatches == []
    assert result.pair_coverage == outcome.corpus.global_coverage.pair_count


def test_replay_trace_is_bit_identical_on_fast_path(outcome):
    """The hot-loop tracer rewrite (interned sites, inlined record
    bodies) must not perturb corpus replay: executing the same corpus
    workload twice produces byte-identical binary traces."""
    from repro.tracing.serialize import dumps_events_binary, stacks_of
    from repro.workloads import registry

    name = registry.register_corpus(outcome.corpus, name="fuzz:bit-test")
    first = registry.run(name, seed=0, scale=1.0)
    first_dump = dumps_events_binary(
        first.tracer.events, stacks_of(first.tracer)
    )
    second = registry.run(name, seed=0, scale=1.0)
    second_dump = dumps_events_binary(
        second.tracer.events, stacks_of(second.tracer)
    )
    assert first_dump == second_dump


def test_replay_detects_divergence(outcome):
    from repro.fuzz.feedback import CoverageMap

    broken = Corpus.from_dict(outcome.corpus.to_dict())
    broken.entries[0].coverage = CoverageMap(
        pairs=frozenset({("bogus", "m", "r", "-")})
    )
    result = replay_corpus(broken)
    assert not result.identical
    assert 0 in result.mismatches


def test_corpus_registers_as_workload(outcome, tmp_path):
    from repro.workloads import registry

    name = registry.register_corpus(outcome.corpus)
    assert name == f"fuzz:{outcome.corpus.corpus_id}"
    result = registry.run(name, seed=0, scale=1)
    db = result.to_database()
    assert len(db.kept_accesses()) > 0

    path = tmp_path / "corpus.json"
    outcome.corpus.save(str(path))
    by_path = registry.run(f"fuzz:{path}", seed=0, scale=1)
    assert len(by_path.to_database().kept_accesses()) > 0
