"""Corpus management: admission, energy, minimization, persistence."""

import json
import random

import pytest

from repro.fuzz.corpus import Corpus, CorpusEntry, GenerationRecord
from repro.fuzz.feedback import CoverageMap
from repro.fuzz.mutate import random_program


def _cov(*pairs, functions=()):
    return CoverageMap(
        pairs=frozenset(("t", f"m{p}", "r", "-") for p in pairs),
        functions=frozenset((f"fn{f}", "fs/x.c") for f in functions),
    )


def _program(seed):
    return random_program(random.Random(seed))


def test_admit_keeps_only_novel_coverage():
    corpus = Corpus(baseline=_cov(1, 2), seed=0)
    assert corpus.admit(_program(0), _cov(1, 2, 3), generation=0) is not None
    # Same coverage again: nothing new, rejected.
    assert corpus.admit(_program(1), _cov(1, 2, 3), generation=0) is None
    assert corpus.rejected == 1
    assert len(corpus.entries) == 1


def test_admit_counts_function_novelty_too():
    corpus = Corpus(baseline=_cov(1), seed=0)
    entry = corpus.admit(_program(0), _cov(1, functions=(7,)), generation=0)
    assert entry is not None
    assert entry.novel.function_count == 1
    assert entry.novel.pair_count == 0


def test_energy_rewards_pairs_over_functions():
    corpus = Corpus(baseline=CoverageMap(), seed=0)
    pair_entry = corpus.admit(_program(0), _cov(1, 2), generation=0)
    func_entry = corpus.admit(
        _program(1), _cov(1, 2, functions=(1, 2)), generation=0
    )
    assert pair_entry.energy == 4.0  # 2 pairs * 2
    assert func_entry.energy == 2.0  # 2 functions * 1


def test_select_is_energy_weighted_and_deterministic():
    corpus = Corpus(baseline=CoverageMap(), seed=0)
    corpus.admit(_program(0), _cov(*range(30)), generation=0)
    corpus.admit(_program(1), _cov(*range(30), 31), generation=0)
    picks = [corpus.select(random.Random(4)).entry_id for _ in range(5)]
    assert picks == [corpus.select(random.Random(4)).entry_id for _ in range(5)]
    # The high-energy first entry dominates selection.
    histogram = [corpus.select(random.Random(i)).entry_id for i in range(100)]
    assert histogram.count(0) > histogram.count(1)


def test_select_empty_corpus_raises():
    with pytest.raises(ValueError):
        Corpus(baseline=CoverageMap(), seed=0).select(random.Random(0))


def test_minimize_preserves_global_coverage():
    corpus = Corpus(baseline=_cov(0), seed=0)
    corpus.admit(_program(0), _cov(0, 1), generation=0)
    corpus.admit(_program(1), _cov(0, 1, 2, 3, 4), generation=0)  # superset
    corpus.admit(_program(2), _cov(5), generation=1)
    smaller = corpus.minimize()
    assert smaller.global_coverage.pairs >= corpus.global_coverage.pairs
    assert smaller.global_coverage.functions >= corpus.global_coverage.functions
    # Entry 0 is redundant (entry 1 covers it) and must be dropped.
    assert len(smaller.entries) == 2
    assert [e.entry_id for e in smaller.entries] == [0, 1]


def test_corpus_json_round_trip(tmp_path):
    corpus = Corpus(baseline=_cov(1), seed=9)
    corpus.admit(_program(0), _cov(1, 2, functions=(3,)), generation=0)
    corpus.records.append(
        GenerationRecord(
            generation=0, candidates=8, admitted=1,
            pair_coverage=2, function_coverage=1, wall_s=0.5,
        )
    )
    path = tmp_path / "corpus.json"
    corpus.save(str(path))
    loaded = Corpus.load(str(path))
    assert loaded.to_dict() == corpus.to_dict()
    assert loaded.corpus_id == corpus.corpus_id
    assert loaded.global_coverage == corpus.global_coverage
    # Saving the loaded corpus is byte-stable.
    second = tmp_path / "again.json"
    loaded.save(str(second))
    assert second.read_text() == path.read_text()


def test_corpus_id_depends_on_programs_and_seed():
    empty_a = Corpus(baseline=CoverageMap(), seed=0)
    empty_b = Corpus(baseline=CoverageMap(), seed=1)
    assert empty_a.corpus_id != empty_b.corpus_id
    grown = Corpus(baseline=CoverageMap(), seed=0)
    grown.admit(_program(0), _cov(1), generation=0)
    assert grown.corpus_id != empty_a.corpus_id


def test_load_rejects_malformed_json(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError):
        Corpus.load(str(bad))


def test_load_rejects_wrong_schema(tmp_path):
    bad = tmp_path / "schema.json"
    bad.write_text(json.dumps({"schema": "something-else/9"}))
    with pytest.raises(ValueError):
        Corpus.load(str(bad))


def test_entry_round_trip():
    entry = CorpusEntry(
        entry_id=3,
        program=_program(0),
        coverage=_cov(1, 2),
        novel=_cov(2),
        generation=1,
        energy=2.0,
    )
    assert CorpusEntry.from_dict(entry.to_dict()) == entry
