"""Mutation/crossover operators: bounds, validity, determinism."""

import random

from repro.fuzz.mutate import (
    MAX_OPS_PER_THREAD,
    MAX_THREADS,
    mutate,
    random_program,
    splice,
)
from repro.fuzz.program import SyscallProgram


def _assert_valid(program: SyscallProgram) -> None:
    assert 1 <= len(program.threads) <= MAX_THREADS
    for thread in program.threads:
        assert 1 <= len(thread) <= MAX_OPS_PER_THREAD
    # Round-tripping re-runs SyscallOp validation on every op.
    assert SyscallProgram.from_dict(program.to_dict()) == program


def test_random_program_respects_bounds():
    rng = random.Random(0)
    for _ in range(50):
        _assert_valid(random_program(rng))


def test_mutate_preserves_validity():
    rng = random.Random(1)
    program = random_program(rng)
    for _ in range(200):
        program = mutate(program, rng)
        _assert_valid(program)


def test_mutate_does_not_alias_parent():
    rng = random.Random(2)
    parent = random_program(rng)
    snapshot = parent.to_dict()
    for _ in range(50):
        mutate(parent, rng)
    assert parent.to_dict() == snapshot


def test_mutate_is_deterministic_for_same_rng_seed():
    parent = random_program(random.Random(3))
    first = [mutate(parent, random.Random(9)) for _ in range(5)]
    second = [mutate(parent, random.Random(9)) for _ in range(5)]
    assert [p.to_dict() for p in first] == [p.to_dict() for p in second]


def test_mutate_eventually_changes_the_program():
    rng = random.Random(4)
    parent = random_program(rng)
    assert any(mutate(parent, rng).key() != parent.key() for _ in range(20))


def test_splice_combines_both_parents():
    rng = random.Random(5)
    first = random_program(rng)
    second = random_program(rng)
    child = splice(first, second, rng)
    _assert_valid(child)
    parent_keys = {first.key(), second.key()}
    # The child is a valid program regardless; over several trials it
    # must produce genuinely new material, not clone a parent.
    children = [splice(first, second, random.Random(i)) for i in range(10)]
    assert any(c.key() not in parent_keys for c in children)
