"""Fuzzing over the net syscall vocabulary (subsystem="net")."""

import pytest

from repro.fuzz.corpus import Corpus
from repro.fuzz.feedback import execute_program
from repro.fuzz.mutate import random_program
from repro.fuzz.orchestrator import (
    FuzzConfig,
    FuzzOrchestrator,
    baseline_coverage,
    replay_corpus,
)
from repro.fuzz.program import (
    NET_OP_KINDS,
    OP_KINDS,
    SyscallOp,
    SyscallProgram,
    kinds_for,
)
import random


# ----------------------------------------------------------------------
# Vocabulary
# ----------------------------------------------------------------------

def test_kinds_for_selects_the_vocabulary():
    assert kinds_for("vfs") is OP_KINDS
    assert kinds_for("net") is NET_OP_KINDS
    with pytest.raises(ValueError):
        kinds_for("scsi")


def test_vocabularies_do_not_overlap():
    assert not set(OP_KINDS) & set(NET_OP_KINDS)


def test_random_net_program_uses_net_ops():
    rng = random.Random(0)
    program = random_program(rng, subsystem="net")
    assert program.subsystem == "net"
    kinds = {op.kind for thread in program.threads for op in thread}
    assert kinds <= set(NET_OP_KINDS)


# ----------------------------------------------------------------------
# Execution and serialization
# ----------------------------------------------------------------------

def _net_program(seed=0):
    rng = random.Random(seed)
    return random_program(rng, subsystem="net")


def test_net_program_executes_and_covers_net_pairs():
    execution = execute_program(_net_program())
    assert execution.coverage.pairs
    types = {pair[0] for pair in execution.coverage.pairs}
    assert types <= {"sock", "sk_buff", "socket_wq", "net_device"}


def test_net_execution_is_deterministic():
    program = _net_program()
    first = execute_program(program)
    second = execute_program(program)
    assert first.coverage == second.coverage


def test_subsystem_serialization_round_trip():
    program = _net_program()
    restored = SyscallProgram.from_dict(program.to_dict())
    assert restored.subsystem == "net"
    assert restored.key() == program.key()


def test_vfs_corpus_json_stays_byte_compatible():
    """vfs programs serialize exactly as before the net vocabulary:
    no ``subsystem`` key, and deserialization defaults to vfs."""
    program = SyscallProgram(
        threads=[[SyscallOp("create", (0,)), SyscallOp("rename")]],
        sched_seed=7,
    )
    payload = program.to_dict()
    assert "subsystem" not in payload
    assert SyscallProgram.from_dict(payload).subsystem == "vfs"


def test_net_key_differs_from_vfs_key():
    net = _net_program()
    vfs_twin = SyscallProgram(
        threads=net.threads, sched_seed=net.sched_seed, subsystem="vfs"
    )
    assert net.key() != vfs_twin.key()


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def net_campaign():
    baseline = baseline_coverage(0, 1.0, subsystem="net")
    config = FuzzConfig(
        seed=0, generations=2, population=6,
        baseline_scale=1.0, subsystem="net",
    )
    outcome = FuzzOrchestrator(config).run(baseline=baseline)
    return {"baseline": baseline, "outcome": outcome}


def test_net_campaign_grows_coverage_over_netbench(net_campaign):
    outcome = net_campaign["outcome"]
    assert outcome.corpus.entries
    # the handwritten nested-lockset paths are only reachable by the
    # fuzzer, so the campaign must clear the bench gate's 10% floor
    assert outcome.pair_growth >= 0.10


def test_net_campaign_replays_bit_identically(net_campaign):
    replay = replay_corpus(net_campaign["outcome"].corpus)
    assert replay.identical, replay.mismatches


def test_net_corpus_round_trip(net_campaign, tmp_path):
    corpus = net_campaign["outcome"].corpus
    assert corpus.subsystem == "net"
    path = str(tmp_path / "net-corpus.json")
    corpus.save(path)
    restored = Corpus.load(path)
    assert restored.subsystem == "net"
    assert [e.program.key() for e in restored.entries] == [
        e.program.key() for e in corpus.entries
    ]


def test_net_corpus_runs_as_a_registry_workload(net_campaign, tmp_path):
    from repro.workloads import registry

    corpus = net_campaign["outcome"].corpus
    path = str(tmp_path / "net-corpus.json")
    corpus.save(path)
    name = f"fuzz:{path}"
    assert registry.db_recipe(name) == "net"
    assert registry.subsystem_of(name) == "net"
    result = registry.run(name, seed=0, scale=1.0)
    types = {row.type_key for row in result.to_database().kept_accesses()}
    assert types <= {"sock", "sk_buff", "socket_wq", "net_device"}
