"""On-disk trace cache: keys, hits, byte-identity, streaming import.

The cache's whole correctness story is "a hit is observably identical
to a miss, just faster" — these tests pin that down at the byte level
(binary dumps), at the database level (streaming import), and across
``experiments.common.clear_cache()`` (whose contract is to leave the
disk tier alone).
"""

from __future__ import annotations

import io

import pytest

from repro import cache
from repro.core.observations import ObservationTable
from repro.db.importer import Importer
from repro.experiments import common
from repro.tracing.serialize import (
    dumps_events_binary,
    load_binary,
    open_binary_stream,
    stacks_of,
)
from repro.workloads import registry

SCALE = 1.0


def _dump(tracer) -> bytes:
    return dumps_events_binary(tracer.events, stacks_of(tracer))


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """A fresh private cache directory for each test.

    The in-process pipeline memo is saved and restored so the shared
    session-scoped pipeline (scale 18) is not evicted by these tests.
    """
    monkeypatch.setenv("LOCKDOC_CACHE_DIR", str(tmp_path / "cache"))
    saved = dict(common._CACHE)
    common._CACHE.clear()
    cache.set_enabled(True)
    yield tmp_path / "cache"
    common._CACHE.clear()
    common._CACHE.update(saved)
    cache.set_enabled(True)


def test_key_varies_with_parameters(cache_dir):
    base = cache.trace_key("mix", 0, 1.0)
    assert cache.trace_key("mix", 1, 1.0) != base
    assert cache.trace_key("mix", 0, 2.0) != base
    assert cache.trace_key("racer", 0, 1.0) != base
    assert cache.trace_key("mix", 0, 1.0) == base  # stable


def test_miss_stores_then_hit_is_byte_identical(cache_dir):
    first = cache.cached_run("mix", seed=0, scale=SCALE)
    assert not isinstance(first, cache.CachedRun)  # live run on miss
    assert cache.trace_path("mix", 0, SCALE).exists()

    second = cache.cached_run("mix", seed=0, scale=SCALE)
    assert isinstance(second, cache.CachedRun)
    assert _dump(second.tracer) == _dump(first.tracer)
    assert second.tracer.stats == first.tracer.stats
    assert second.tracer.stack_count == first.tracer.stack_count


def test_cached_run_database_matches_live(cache_dir):
    live = cache.cached_run("racer", seed=0, scale=SCALE)
    cached = cache.cached_run("racer", seed=0, scale=SCALE)
    assert isinstance(cached, cache.CachedRun)
    live_table = ObservationTable.from_database(
        live.to_database(), split_subclasses=True
    )
    cached_table = ObservationTable.from_database(
        cached.to_database(), split_subclasses=True
    )
    keys = list(live_table.keys())
    assert keys == list(cached_table.keys())
    for key in keys:
        assert live_table.sequences(*key) == cached_table.sequences(*key)


def test_disabled_cache_never_touches_disk(cache_dir):
    cache.set_enabled(False)
    result = cache.cached_run("mix", seed=0, scale=SCALE)
    assert not isinstance(result, cache.CachedRun)
    assert not cache_dir.exists() or not any(cache_dir.iterdir())


def test_fuzz_workloads_are_not_cached(cache_dir, tmp_path):
    # fuzz:<path> content lives outside the key; it must bypass the cache.
    assert "fuzz:whatever" not in cache._CACHEABLE
    cache.cached_run("mix", seed=0, scale=SCALE)
    before = sorted(p.name for p in cache_dir.iterdir())
    # A second mix run must not add files; only the one key exists.
    cache.cached_run("mix", seed=0, scale=SCALE)
    assert sorted(p.name for p in cache_dir.iterdir()) == before


def test_clear_cache_leaves_disk_tier_and_hits_stay_identical(cache_dir):
    """``experiments.common.clear_cache()`` drops only the in-process
    memo; a pipeline rebuilt afterwards is served from disk and its
    trace is byte-identical to the original run's."""
    p1 = common.get_pipeline(seed=0, scale=SCALE)
    fresh = _dump(p1.mix.tracer)
    files_before = sorted(p.name for p in cache_dir.iterdir())

    common.clear_cache()
    assert sorted(p.name for p in cache_dir.iterdir()) == files_before

    p2 = common.get_pipeline(seed=0, scale=SCALE)
    assert p2 is not p1
    assert isinstance(p2.mix, cache.CachedRun)
    assert _dump(p2.mix.tracer) == fresh


def test_artifact_tier_roundtrip(cache_dir):
    p1 = common.get_pipeline(seed=0, scale=SCALE)
    d1 = p1.derive(0.9)
    table_keys = list(p1.table.keys())

    common.clear_cache()
    p2 = common.get_pipeline(seed=0, scale=SCALE)
    d2 = p2.derive(0.9)
    assert list(p2.table.keys()) == table_keys
    assert [
        (d.type_key, d.member, d.access_type, d.rule.format())
        for d in d1.all()
    ] == [
        (d.type_key, d.member, d.access_type, d.rule.format())
        for d in d2.all()
    ]


def test_cached_run_falls_back_to_live_for_world(cache_dir):
    cache.cached_run("mix", seed=0, scale=SCALE)
    cached = cache.cached_run("mix", seed=0, scale=SCALE)
    assert isinstance(cached, cache.CachedRun)
    # tab3-style consumers need the simulated world; the cached result
    # re-runs the workload lazily rather than failing.
    assert cached.world is not None


def test_corrupt_cache_entry_degrades_to_recompute(cache_dir):
    live = registry.run("mix", seed=0, scale=SCALE)
    cache.cached_run("mix", seed=0, scale=SCALE)
    path = cache.trace_path("mix", 0, SCALE)
    path.write_bytes(b"LDOC1\n garbage")
    cached = cache.cached_run("mix", seed=0, scale=SCALE)
    # The hit is served lazily; materializing the tracer detects the
    # torn entry, quarantines it, and degrades to a live re-run — same
    # answer, never a traceback.
    assert _dump(cached.tracer) == _dump(live.tracer)
    assert not path.exists()
    assert path.with_name(
        path.name + cache.QUARANTINE_SUFFIX
    ).exists()
    # Artifact loads on a corrupt pickle return None (recompute).
    art = cache._artifact_path("mix", 0, SCALE, "db")
    art.parent.mkdir(parents=True, exist_ok=True)
    art.write_bytes(b"not a pickle")
    assert cache.load_artifact("mix", 0, SCALE, "db") is None


def test_entries_and_clear(cache_dir):
    cache.cached_run("mix", seed=0, scale=SCALE)
    listed = cache.entries()
    assert len(listed) == 1
    assert listed[0]["workload"] == "mix"
    assert listed[0]["events"] > 0
    removed = cache.clear()
    assert removed >= 2  # trace + sidecar at minimum
    assert cache.entries() == []


def test_streaming_import_equals_materialized(cache_dir):
    result = registry.run("mix", seed=0, scale=SCALE)
    payload = _dump(result.tracer)
    structs, filters = registry.database_inputs("vfs")

    events, stacks = load_binary(io.BytesIO(payload))
    db_mat = Importer(structs, filters).run(events, stacks)

    stream = open_binary_stream(io.BytesIO(payload))
    db_stream = Importer(structs, filters).run(stream.events, stream.stacks)

    for split in (True, False):
        t_mat = ObservationTable.from_database(db_mat, split_subclasses=split)
        t_stream = ObservationTable.from_database(
            db_stream, split_subclasses=split
        )
        keys = list(t_mat.keys())
        assert keys == list(t_stream.keys())
        for key in keys:
            assert t_mat.sequences(*key) == t_stream.sequences(*key)
            assert t_mat.observation_count(*key) == t_stream.observation_count(
                *key
            )


class TestConcurrentChurn:
    """`cache ls`/`cache clear` racing a concurrent writer or sweeper.

    The daemon's recovery sweep quarantines/renames entries while CLI
    management commands iterate the same directory — any file may
    vanish between glob and stat/read.  Vanishing must be tolerated,
    never raised.
    """

    def test_entries_tolerates_meta_vanishing_mid_iteration(
        self, cache_dir, monkeypatch
    ):
        cache.cached_run("mix", seed=0, scale=SCALE)
        cache.cached_run("mix", seed=1, scale=SCALE)
        from pathlib import Path

        real_read_text = Path.read_text
        victims = {"n": 0}

        def racing_read_text(self, *args, **kwargs):
            # Simulate a sweeper deleting the file between glob and read.
            if self.name.endswith(".meta.json") and victims["n"] == 0:
                victims["n"] += 1
                self.unlink()
            return real_read_text(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_text", racing_read_text)
        listed = cache.entries()
        assert victims["n"] == 1
        assert len(listed) == 1  # the survivor; no exception

    def test_entries_tolerates_artifact_vanishing_before_stat(
        self, cache_dir, monkeypatch
    ):
        cache.cached_run("mix", seed=0, scale=SCALE)
        cache.store_artifact("mix", 0, SCALE, "db", {"x": 1})
        from pathlib import Path

        real_stat = Path.stat

        def racing_stat(self, *args, **kwargs):
            if self.name.endswith(".pkl"):
                raise FileNotFoundError(2, "swept away", str(self))
            return real_stat(self, *args, **kwargs)

        monkeypatch.setattr(Path, "stat", racing_stat)
        listed = cache.entries()
        assert len(listed) == 1
        assert listed[0]["artifacts"] == 0
        assert listed[0]["artifact_bytes"] == 0

    def test_clear_tolerates_unlink_race(self, cache_dir, monkeypatch):
        cache.cached_run("mix", seed=0, scale=SCALE)
        from pathlib import Path

        real_unlink = Path.unlink
        stolen = {"n": 0}

        def racing_unlink(self, *args, **kwargs):
            if self.name.endswith(".trace.bin") and stolen["n"] == 0:
                stolen["n"] += 1
                real_unlink(self)  # another process got there first
                raise FileNotFoundError(2, "already gone", str(self))
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        removed = cache.clear()
        assert stolen["n"] == 1
        assert removed >= 1  # the files clear() itself removed
        assert cache.entries() == []

    def test_clear_removes_quarantined_and_tmp_orphans(self, cache_dir):
        cache.cached_run("mix", seed=0, scale=SCALE)
        quarantined = cache_dir / ("dead.trace.bin" + cache.QUARANTINE_SUFFIX)
        quarantined.write_bytes(b"torn")
        orphan = cache_dir / "spool.12345.tmp"
        orphan.write_bytes(b"half")
        cache.clear()
        assert not quarantined.exists()
        assert not orphan.exists()
        assert list(cache_dir.iterdir()) == []
