"""Long-running CLI subcommands die cleanly on SIGINT/SIGTERM.

The robustness envelope extends to the terminal: an interrupted fuzz
campaign (or experiment, or static check) must exit with the
conventional code (128+signum), print a one-line notice to stderr, and
never dump a traceback.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _spawn_fuzz(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src")
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "fuzz", "run",
         "--generations", "50", "--population", "4",
         "--out", str(tmp_path / "corpus.json")],
        env=env, cwd=_REPO,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    # Wait until the campaign is demonstrably inside its long-running
    # loop (first progress line) before signalling it.
    line = process.stdout.readline()
    if not line:
        process.kill()
        pytest.fail(
            "fuzz run produced no progress output: "
            + process.stderr.read().decode(errors="replace")
        )
    return process


def _finish(process, signum):
    time.sleep(0.2)
    process.send_signal(signum)
    try:
        process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
    stderr = process.stderr.read().decode(errors="replace")
    process.stdout.close()
    process.stderr.close()
    return process.returncode, stderr


def test_sigint_exits_130_without_traceback(tmp_path):
    process = _spawn_fuzz(tmp_path)
    code, stderr = _finish(process, signal.SIGINT)
    assert code == 130, stderr
    assert "interrupted (SIGINT)" in stderr
    assert "Traceback" not in stderr


def test_sigterm_exits_143_without_traceback(tmp_path):
    process = _spawn_fuzz(tmp_path)
    code, stderr = _finish(process, signal.SIGTERM)
    assert code == 143, stderr
    assert "terminated (SIGTERM)" in stderr
    assert "Traceback" not in stderr
