"""Contract tests for the experiment modules: `data` and `render()`
agree, render output is non-empty and well-formed, and paper-reference
constants stay self-consistent."""

import pytest

from repro.experiments import (
    fig1,
    fig7,
    fig8,
    stats,
    tab1,
    tab2,
    tab3,
    tab4,
    tab5,
    tab6,
    tab7,
    tab8,
)
from tests.conftest import TEST_SCALE

PIPELINE_MODULES = [tab3, tab4, tab5, tab6, tab7, tab8, fig8, stats]


@pytest.fixture(scope="module")
def results(pipeline):
    out = {}
    for module in PIPELINE_MODULES:
        out[module.__name__.rsplit(".", 1)[-1]] = module.run(
            seed=0, scale=TEST_SCALE
        )
    out["fig7"] = fig7.run(seed=0, scale=TEST_SCALE)
    out["fig1"] = fig1.run(stride=8)
    out["tab1"] = tab1.run(200)
    out["tab2"] = tab2.run(200)
    return out


@pytest.mark.parametrize(
    "name",
    ["fig1", "tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "fig7",
     "tab7", "tab8", "fig8", "stats"],
)
def test_render_nonempty(results, name):
    rendered = results[name].render()
    assert isinstance(rendered, str) and rendered.strip()


@pytest.mark.parametrize(
    "name",
    ["fig1", "tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "fig7",
     "tab7", "tab8", "fig8", "stats"],
)
def test_data_accessible(results, name):
    assert results[name].data is not None


def test_tab3_data_matches_rows(results):
    result = results["tab3"]
    assert [d["directory"] for d in result.data] == [r.directory for r in result.rows]


def test_tab4_data_row_per_struct(results):
    assert {d["type"] for d in results["tab4"].data} == set(tab4.PAPER_TAB4)


def test_tab5_paper_reference_is_consistent():
    # every PAPER_TAB5 key appears exactly once among observed corpus rules
    from repro.doc.corpus import inode_rules

    keys = {(r.member, a) for r in inode_rules() for a, _ in r.expand()}
    for key in tab5.PAPER_TAB5:
        assert key in keys


def test_tab6_paper_reference_covers_all_types(results):
    assert {row.type_key for row in results["tab6"].rows} == set(tab6.PAPER_TAB6)


def test_tab7_zero_types_constant():
    assert "cdev" in tab7.PAPER_ZERO_TYPES
    assert "buffer_head" not in tab7.PAPER_ZERO_TYPES
    total = sum(tab7.PAPER_TAB7.values())
    assert total == 52452  # the paper's stated total


def test_tab8_data_aligned_with_examples(results):
    result = results["tab8"]
    assert len(result.data) == len(tab8.PAPER_EXAMPLES) == len(result.examples)


def test_fig7_series_cover_all_types(results):
    keys = {tk for tk, _ in results["fig7"].series}
    assert keys == set(fig7.FIG7_TYPES)


def test_fig1_series_sorted_by_release(results):
    versions = [row["version"] for row in results["fig1"].series]
    assert versions[0] == "v3.0" and versions[-1] == "v4.18"


def test_stats_data_sections(results):
    data = results["stats"].data
    assert set(data) == {"trace", "db", "filtered"}


def test_tab2_data_shape(results):
    data = results["tab2"].data
    assert all({"rule", "s_a", "s_r"} <= set(entry) for entry in data)


def test_corpus_counts_in_tab4_reference():
    from repro.doc.corpus import corpus_counts

    for data_type, (rules, *_rest) in tab4.PAPER_TAB4.items():
        assert corpus_counts()[data_type] == rules
