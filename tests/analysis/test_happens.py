"""Unit tests for the happens-before index.

Events are built by hand so every edge in the expected order relation
is explicit: program order plus release→acquire edges per lock
instance, closed under transitivity — and nothing else.
"""

from repro.analysis.happens import HappensBeforeIndex, happens_before, unordered
from repro.analysis.vectorclock import VectorClock
from repro.tracing.events import AccessEvent, LockEvent


def access(ts, ctx):
    return AccessEvent(
        ts=ts, ctx_id=ctx, address=0x1000 + ts, size=8, is_write=True,
        stack_id=0, file="hb.c", line=ts,
    )


def lock_op(ts, ctx, lock_id, acquire):
    return LockEvent(
        ts=ts, ctx_id=ctx, lock_id=lock_id, lock_class="spinlock_t",
        lock_name=f"l{lock_id}", address=None, is_acquire=acquire,
        mode="w", stack_id=0, file="hb.c", line=ts,
    )


def test_program_order_within_one_context():
    hb = HappensBeforeIndex.build([access(1, 1), access(2, 1)])
    assert happens_before(hb.stamp(1), hb.stamp(2))


def test_release_acquire_edge_orders_across_contexts():
    events = [
        access(1, 1),
        lock_op(2, 1, lock_id=7, acquire=True),
        lock_op(3, 1, lock_id=7, acquire=False),
        lock_op(4, 2, lock_id=7, acquire=True),
        access(5, 2),
        lock_op(6, 2, lock_id=7, acquire=False),
    ]
    hb = HappensBeforeIndex.build(events)
    assert happens_before(hb.stamp(1), hb.stamp(5))


def test_no_common_lock_means_unordered():
    events = [
        access(1, 1),
        lock_op(2, 1, lock_id=7, acquire=True),
        lock_op(3, 1, lock_id=7, acquire=False),
        lock_op(4, 2, lock_id=8, acquire=True),  # different instance
        access(5, 2),
    ]
    hb = HappensBeforeIndex.build(events)
    assert unordered(hb.stamp(1), hb.stamp(5))


def test_acquire_before_release_creates_no_edge():
    events = [
        lock_op(1, 2, lock_id=7, acquire=True),
        access(2, 2),
        lock_op(3, 2, lock_id=7, acquire=False),
        access(4, 1),
        lock_op(5, 1, lock_id=7, acquire=True),
        access(6, 1),
    ]
    hb = HappensBeforeIndex.build(events)
    # ctx 2's release (ts 3) flows into ctx 1's acquire (ts 5): the
    # *earlier* ctx-2 access is ordered before the later ctx-1 access...
    assert happens_before(hb.stamp(2), hb.stamp(6))
    # ...but ctx 1's access before its acquire got no edge from anyone.
    assert unordered(hb.stamp(2), hb.stamp(4))


def test_transitivity_through_two_locks():
    events = [
        access(1, 1),
        lock_op(2, 1, lock_id=7, acquire=False),   # ctx1 releases L7
        lock_op(3, 2, lock_id=7, acquire=True),    # ctx2 learns ctx1
        lock_op(4, 2, lock_id=8, acquire=False),   # ctx2 releases L8
        lock_op(5, 3, lock_id=8, acquire=True),    # ctx3 learns ctx2 (+ctx1)
        access(6, 3),
    ]
    hb = HappensBeforeIndex.build(events)
    assert happens_before(hb.stamp(1), hb.stamp(6))


def test_needed_ts_restricts_the_index():
    events = [access(1, 1), access(2, 1), access(3, 2)]
    hb = HappensBeforeIndex.build(events, needed_ts={1, 3})
    assert len(hb) == 2
    assert hb.get(2) is None
    assert hb.get(1) is not None


def test_stamp_clock_matches_knowledge():
    events = [
        access(1, 1),
        lock_op(2, 1, lock_id=7, acquire=False),
        lock_op(3, 2, lock_id=7, acquire=True),
        access(4, 2),
    ]
    hb = HappensBeforeIndex.build(events)
    stamp = hb.stamp(4)
    # ctx 2 knows ctx 1 up to its release (event index 2) and itself up
    # to its own second event.
    assert stamp.knows_of(1) == 2
    assert stamp.knows_of(2) == stamp.index == 2
    assert stamp.clock == VectorClock.of(c1=2, c2=2)
