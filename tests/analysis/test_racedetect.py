"""Unit and small-trace tests for the race-detection driver."""

import pytest

from repro.analysis.happens import AccessStamp, HappensBeforeIndex
from repro.analysis.lockset import MemberTrack
from repro.analysis.racedetect import (
    RaceClass,
    _first_unordered_pair,
    detect_races,
)
from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.db.importer import import_tracer
from repro.db.schema import AccessRow
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct


def row(ts, ctx, access_type="w"):
    return AccessRow(
        access_id=ts, ts=ts, ctx_id=ctx, txn_id=None, alloc_id=1,
        data_type="pair", subclass=None, member="a", access_type=access_type,
        address=0, size=8, stack_id=0, file="rd.c", line=ts,
    )


def make_track(rows):
    track = MemberTrack(alloc_id=1, member="a", type_key="pair")
    track.accesses.extend(rows)
    return track


def make_hb(stamps):
    """Index from {ts: (ctx, index, knows)} literals."""
    return HappensBeforeIndex(
        {
            ts: AccessStamp(ts=ts, ctx_id=ctx, index=index, knows=knows)
            for ts, (ctx, index, knows) in stamps.items()
        }
    )


def test_unordered_pair_found():
    rows = [row(1, ctx=1), row(2, ctx=2)]
    hb = make_hb({1: (1, 1, {}), 2: (2, 1, {})})
    pair, count = _first_unordered_pair(make_track(rows), hb)
    assert pair == (rows[0], rows[1])
    assert count == 1


def test_ordered_pair_not_reported():
    rows = [row(1, ctx=1), row(2, ctx=2)]
    hb = make_hb({1: (1, 1, {}), 2: (2, 1, {1: 1})})  # ctx2 knows ctx1@1
    pair, count = _first_unordered_pair(make_track(rows), hb)
    assert pair is None
    assert count == 0


def test_two_reads_do_not_conflict():
    rows = [row(1, ctx=1, access_type="r"), row(2, ctx=2, access_type="r")]
    hb = make_hb({1: (1, 1, {}), 2: (2, 1, {})})
    pair, count = _first_unordered_pair(make_track(rows), hb)
    assert pair is None


def test_read_conflicts_with_earlier_write():
    rows = [row(1, ctx=1, access_type="w"), row(2, ctx=2, access_type="r")]
    hb = make_hb({1: (1, 1, {}), 2: (2, 1, {})})
    pair, _ = _first_unordered_pair(make_track(rows), hb)
    assert pair == (rows[0], rows[1])


def test_same_context_never_conflicts():
    rows = [row(1, ctx=1), row(2, ctx=1)]
    hb = make_hb({1: (1, 1, {}), 2: (1, 2, {})})
    pair, _ = _first_unordered_pair(make_track(rows), hb)
    assert pair is None


@pytest.fixture
def rt():
    return KernelRuntime(StructRegistry([make_pair_struct()]))


def run_detector(rt):
    db = import_tracer(rt.tracer, rt.structs)
    derivation = Derivator(0.9).derive(ObservationTable.from_database(db))
    return detect_races(rt.tracer.events, db, derivation)


def test_unsynchronized_writers_are_a_lockset_race(rt):
    ctx1, ctx2 = rt.new_task("t1"), rt.new_task("t2")
    obj = rt.new_object(ctx1, "pair")
    rt.write(ctx1, obj, "a")
    rt.write(ctx2, obj, "a")
    report = run_detector(rt)
    finding = report.get("pair", "a")
    # No lock anywhere, so the mined rule is "no lock needed" — the
    # lockset and ordering layers still catch the unordered pair.
    assert finding is not None
    assert finding.race_class == RaceClass.LOCKSET_RACE
    assert report.races() == [finding]
    assert report.class_counts()[RaceClass.LOCKSET_RACE] == 1


def test_release_acquire_chain_makes_it_benign(rt):
    ctx1, ctx2 = rt.new_task("t1"), rt.new_task("t2")
    obj = rt.new_object(ctx1, "pair")
    glock = rt.static_lock("sync", "spinlock_t")
    rt.write(ctx1, obj, "a")
    rt.run(rt.spin_lock(ctx1, glock))
    rt.spin_unlock(ctx1, glock)
    rt.run(rt.spin_lock(ctx2, glock))
    rt.spin_unlock(ctx2, glock)
    rt.write(ctx2, obj, "a")
    report = run_detector(rt)
    finding = report.get("pair", "a")
    assert finding is not None
    assert finding.race_class == RaceClass.BENIGN
    assert report.races() == []


def test_render_lists_candidates(rt):
    ctx1, ctx2 = rt.new_task("t1"), rt.new_task("t2")
    obj = rt.new_object(ctx1, "pair")
    rt.write(ctx1, obj, "a")
    rt.write(ctx2, obj, "a")
    text = run_detector(rt).render()
    assert "race detection:" in text
    assert "lockset race" in text
    assert "pair.a" in text
