"""Unit tests for the Eraser-style lockset state machine."""

import pytest

from repro.analysis.lockset import MemberState, MemberTrack, run_lockset
from repro.db.importer import import_tracer
from repro.db.schema import AccessRow
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct

_EMPTY = frozenset()


def row(ts, ctx, access_type="w"):
    return AccessRow(
        access_id=ts, ts=ts, ctx_id=ctx, txn_id=None, alloc_id=1,
        data_type="pair", subclass=None, member="a", access_type=access_type,
        address=0, size=8, stack_id=0, file="ls.c", line=ts,
    )


def track():
    return MemberTrack(alloc_id=1, member="a", type_key="pair")


def test_first_access_moves_virgin_to_exclusive():
    t = track()
    t.apply(row(1, ctx=1), (frozenset({9}), frozenset({9})))
    assert t.state == MemberState.EXCLUSIVE
    assert t.lockset == {9}
    assert not t.is_candidate


def test_single_context_stays_exclusive():
    t = track()
    for ts in range(1, 4):
        t.apply(row(ts, ctx=1), (_EMPTY, _EMPTY))
    assert t.state == MemberState.EXCLUSIVE
    assert not t.is_candidate  # one thread cannot race with itself


def test_second_context_read_moves_to_shared():
    t = track()
    t.apply(row(1, ctx=1), (_EMPTY, _EMPTY))
    t.apply(row(2, ctx=2, access_type="r"), (_EMPTY, _EMPTY))
    assert t.state == MemberState.SHARED
    assert not t.is_candidate


def test_second_context_write_without_lock_is_candidate():
    t = track()
    t.apply(row(1, ctx=1), (_EMPTY, _EMPTY))
    t.apply(row(2, ctx=2), (_EMPTY, _EMPTY))
    assert t.state == MemberState.SHARED_MODIFIED
    assert t.is_candidate


def test_consistent_lock_prevents_candidacy():
    t = track()
    t.apply(row(1, ctx=1), (frozenset({9}), frozenset({9})))
    t.apply(row(2, ctx=2), (frozenset({9, 5}), frozenset({9})))
    assert t.state == MemberState.SHARED_MODIFIED
    assert t.lockset == {9}
    assert not t.is_candidate


def test_lockset_refinement_to_empty():
    t = track()
    t.apply(row(1, ctx=1), (frozenset({9}), frozenset({9})))
    t.apply(row(2, ctx=2), (frozenset({5}), frozenset({5})))
    assert t.lockset == _EMPTY
    assert t.is_candidate


def test_reader_held_lock_does_not_protect_writes():
    t = track()
    # Both writers hold lock 9 in read mode only: it cannot order them.
    t.apply(row(1, ctx=1), (frozenset({9}), _EMPTY))
    t.apply(row(2, ctx=2), (frozenset({9}), _EMPTY))
    assert t.lockset == _EMPTY
    assert t.is_candidate


def test_reads_intersect_all_held_locks():
    t = track()
    t.apply(row(1, ctx=1, access_type="r"), (frozenset({9}), _EMPTY))
    t.apply(row(2, ctx=2, access_type="r"), (frozenset({9}), _EMPTY))
    assert t.lockset == {9}


@pytest.fixture
def rt():
    return KernelRuntime(StructRegistry([make_pair_struct()]))


def test_run_lockset_over_a_real_trace(rt):
    ctx1, ctx2 = rt.new_task("t1"), rt.new_task("t2")
    obj = rt.new_object(ctx1, "pair")
    lock = obj.lock("lock_a")
    # member a: both contexts locked -> protected, no candidate.
    for ctx in (ctx1, ctx2):
        rt.run(rt.spin_lock(ctx, lock))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, lock)
    # member b: both contexts lock-free -> candidate.
    rt.write(ctx1, obj, "b")
    rt.write(ctx2, obj, "b")
    result = run_lockset(import_tracer(rt.tracer, rt.structs))
    members = {t.member: t for t in result.candidates}
    assert set(members) == {"b"}
    assert members["b"].state == MemberState.SHARED_MODIFIED
    tracked_a = result.tracks[(obj.allocation.alloc_id, "a")]
    assert tracked_a.state == MemberState.SHARED_MODIFIED
    assert tracked_a.lockset  # the shared spinlock instance survived
    counts = result.state_counts()
    assert counts[MemberState.SHARED_MODIFIED] == 2
