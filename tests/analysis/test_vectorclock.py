"""Unit tests for the sparse vector clock."""

from repro.analysis.vectorclock import EMPTY_CLOCK, VectorClock


def test_empty_clock_is_falsy_and_bottom():
    assert not EMPTY_CLOCK
    assert len(EMPTY_CLOCK) == 0
    assert EMPTY_CLOCK.leq(VectorClock.of(c1=3))
    assert EMPTY_CLOCK.get(7) == 0


def test_zero_entries_are_dropped():
    clock = VectorClock({1: 0, 2: 5})
    assert len(clock) == 1
    assert clock == VectorClock.of(c2=5)


def test_leq_is_pointwise():
    small = VectorClock.of(c1=1, c2=2)
    big = VectorClock.of(c1=1, c2=3, c3=1)
    assert small.leq(big)
    assert not big.leq(small)
    assert small.leq(small)


def test_concurrent_clocks():
    a = VectorClock.of(c1=2)
    b = VectorClock.of(c2=2)
    assert a.concurrent(b)
    assert b.concurrent(a)
    assert not a.concurrent(a)


def test_join_takes_pointwise_max():
    a = VectorClock.of(c1=3, c2=1)
    b = VectorClock.of(c2=4, c3=2)
    joined = a.join(b)
    assert joined == VectorClock.of(c1=3, c2=4, c3=2)
    assert a.leq(joined) and b.leq(joined)


def test_join_returns_dominating_operand():
    small = VectorClock.of(c1=1)
    big = VectorClock.of(c1=2, c2=1)
    assert small.join(big) is big
    assert big.join(small) is big


def test_advanced_increments_one_component():
    clock = VectorClock.of(c1=1)
    assert clock.advanced(1) == VectorClock.of(c1=2)
    assert clock.advanced(2) == VectorClock.of(c1=1, c2=1)
    assert clock.advanced(1, count=9) == VectorClock.of(c1=9)


def test_hash_and_eq_follow_entries():
    assert hash(VectorClock.of(c1=1)) == hash(VectorClock({1: 1, 2: 0}))
    assert VectorClock.of() == EMPTY_CLOCK
