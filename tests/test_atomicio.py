"""Atomic-write contract: publish whole files or nothing, never torn."""

import json
import os

import pytest

from repro.atomicio import atomic_write_bytes, atomic_write_json, atomic_write_text


class TestAtomicWriteBytes:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"one")
        atomic_write_bytes(path, b"two")
        assert path.read_bytes() == b"two"

    def test_no_tmp_left_on_success(self, tmp_path):
        atomic_write_bytes(tmp_path / "out.bin", b"payload")
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]

    def test_failure_leaves_no_tmp_and_old_content(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"original")
        # os.replace to a directory path fails after the tmp file was
        # written: the destination must keep its old content and the
        # spool file must be cleaned up.
        blocked = tmp_path / "blocked"
        blocked.mkdir()
        (blocked / "x").write_text("keep")  # non-empty: replace fails
        with pytest.raises(OSError):
            atomic_write_bytes(blocked, b"new")
        assert path.read_bytes() == b"original"
        assert not list(tmp_path.glob("*.tmp"))

    def test_creates_parent_directory(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "out.bin"
        atomic_write_bytes(path, b"x")
        assert path.read_bytes() == b"x"


class TestAtomicWriteTextAndJson:
    def test_text_roundtrip(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "héllo\n")
        assert path.read_text() == "héllo\n"

    def test_json_is_sorted_with_trailing_newline(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"b": 2, "a": 1})
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 1, "b": 2}


class TestConsumers:
    def test_fuzz_corpus_save_is_atomic(self, tmp_path):
        """Corpus.save must leave no spool file behind (satellite:
        crash-safe persistence)."""
        from repro.fuzz.corpus import Corpus
        from repro.fuzz.feedback import CoverageMap

        corpus = Corpus(CoverageMap(), seed=3)
        out = tmp_path / "corpus.json"
        corpus.save(str(out))
        reloaded = Corpus.load(str(out))
        assert reloaded.seed == 3
        assert [p.name for p in tmp_path.iterdir()] == ["corpus.json"]

    def test_bench_reports_use_atomic_json(self):
        """Every benchmark's report emission goes through atomicio."""
        import pathlib

        bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks" / "perf"
        for script in sorted(bench_dir.glob("bench_*.py")):
            source = script.read_text()
            if "--out" not in source:
                # Read-only tools (the bench_report aggregator) emit
                # nothing, so there is nothing to write atomically.
                continue
            assert "atomic_write_json" in source, script.name
            # The raw torn-write idiom must be gone from report emission.
            assert 'open(args.out, "w")' not in source, script.name


def test_cache_atomic_write_delegates():
    """The cache's atomic writes share the one audited implementation."""
    import inspect

    from repro import cache

    assert "atomic_write_bytes" in inspect.getsource(cache._atomic_write)


def test_fsync_failure_is_not_fatal(tmp_path, monkeypatch):
    calls = {"n": 0}
    real_fsync = os.fsync

    def flaky_fsync(fd):
        calls["n"] += 1
        raise OSError("fsync unsupported")

    monkeypatch.setattr(os, "fsync", flaky_fsync)
    try:
        atomic_write_bytes(tmp_path / "out.bin", b"data")
    finally:
        monkeypatch.setattr(os, "fsync", real_fsync)
    assert (tmp_path / "out.bin").read_bytes() == b"data"
    assert calls["n"] >= 1
