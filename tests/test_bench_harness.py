"""Smoke tests for the perf-benchmark harness (benchmarks/perf)."""

import json

from benchmarks.perf.baseline import derive_serial_baseline
from benchmarks.perf.bench_derive import bench_workload, main
from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.workloads.racer import run_racer


def test_baseline_equals_new_engine():
    table = ObservationTable.from_database(run_racer(seed=0).to_database())
    derivator = Derivator(0.9)
    assert derive_serial_baseline(derivator, table) == derivator.derive(table)


def test_bench_workload_record_shape():
    record, matches = bench_workload(
        "fsstress", seed=0, scale=0.5, jobs=2, threshold=0.9, repeat=1
    )
    assert matches
    assert record["parallel_matches_serial"]
    assert record["serial_matches_baseline"]
    assert record["targets"] > 0
    assert 0.0 <= record["memo_hit_rate"] <= 1.0
    assert record["speedup_vs_serial"] > 0
    for field in ("trace_s", "import_s", "derive_baseline_s",
                  "derive_serial_s", "derive_parallel_s", "targets_per_s"):
        assert record[field] is not None


def test_main_writes_json(tmp_path):
    out = tmp_path / "BENCH_derive.json"
    code = main([
        "--scale", "0.5", "--jobs", "2", "--repeat", "1",
        "--workloads", "fsstress", "--out", str(out),
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == "lockdoc-bench-derive/1"
    assert "fsstress" in report["workloads"]


def test_main_rejects_unknown_workload(tmp_path):
    assert main(["--workloads", "nope", "--out", str(tmp_path / "x.json")]) == 2


def test_bench_fuzz_writes_json_and_passes_floor(tmp_path):
    from benchmarks.perf.bench_fuzz import main as fuzz_main

    out = tmp_path / "BENCH_fuzz.json"
    corpus = tmp_path / "corpus.json"
    code = fuzz_main([
        "--generations", "2", "--population", "4", "--min-growth", "0.0",
        "--out", str(out), "--corpus-out", str(corpus),
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == "lockdoc-bench-fuzz/1"
    assert report["corpus_entries"] >= 1
    assert report["replay_identical"]
    assert report["pair_curve"] == sorted(report["pair_curve"])
    assert corpus.exists()


def test_bench_fuzz_fails_on_unreachable_growth_floor(tmp_path):
    from benchmarks.perf.bench_fuzz import main as fuzz_main

    out = tmp_path / "BENCH_fuzz.json"
    code = fuzz_main([
        "--generations", "1", "--population", "2", "--min-growth", "9.9",
        "--out", str(out),
    ])
    assert code == 1
