"""Unit and property tests for hypothesis enumeration and scoring."""

from itertools import combinations, permutations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypotheses import enumerate_and_score, enumerate_rules, score
from repro.core.lockrefs import LockRef
from repro.core.rules import LockingRule, complies

A = LockRef.global_("a")
B = LockRef.global_("b")
C = LockRef.global_("c")


class TestEnumeration:
    def test_includes_no_lock(self):
        rules = enumerate_rules([()])
        assert LockingRule.no_lock() in rules

    def test_all_ordered_subsets(self):
        rules = set(enumerate_rules([(A, B)]))
        expected = {
            LockingRule.no_lock(),
            LockingRule.of(A),
            LockingRule.of(B),
            LockingRule.of(A, B),
            LockingRule.of(B, A),
        }
        assert rules == expected

    def test_combines_multiple_observations(self):
        rules = set(enumerate_rules([(A,), (B,)]))
        assert LockingRule.of(A) in rules and LockingRule.of(B) in rules
        # but no cross-product of locks never seen together:
        assert LockingRule.of(A, B) not in rules

    def test_max_locks_truncation(self):
        seq = tuple(LockRef.global_(n) for n in "abcdef")
        rules = enumerate_rules([seq], max_locks=2)
        assert max(len(r) for r in rules) == 2

    def test_every_enumerated_rule_has_support(self):
        """The enumeration invariant: every rule has s_a >= 1 (it came
        from an observed combination) except possibly permuted orders."""
        observations = [((A, B), 5), ((C,), 2)]
        rules = enumerate_rules([seq for seq, _ in observations])
        scored = score(rules, observations)
        # subset rules in *observed order* must have support:
        for hypothesis in scored:
            locks = hypothesis.rule.locks
            if not locks:
                continue
            in_observed_order = any(
                all(l in seq for l in locks)
                and list(locks) == [l for l in seq if l in locks]
                for seq, _ in observations
            )
            if in_observed_order:
                assert hypothesis.s_a >= 1


class TestScoring:
    def test_paper_tab2_values(self):
        sec = LockRef.es("sec_lock", "clock")
        minute = LockRef.es("min_lock", "clock")
        observations = [((sec, minute), 16), ((sec,), 1)]
        scored = {h.rule.format(): h for h in enumerate_and_score(observations)}
        assert scored["no lock needed"].s_a == 17
        assert scored["ES(sec_lock in clock)"].s_a == 17
        assert scored["ES(sec_lock in clock) -> ES(min_lock in clock)"].s_a == 16
        assert scored["ES(min_lock in clock)"].s_a == 16
        assert scored[
            "ES(min_lock in clock) -> ES(sec_lock in clock)"
        ].s_a == 0

    def test_relative_support(self):
        observations = [((A,), 3), (((B,)), 1)]
        scored = {h.rule: h for h in score(enumerate_rules([(A,), (B,)]), observations)}
        assert abs(scored[LockingRule.of(A)].s_r - 0.75) < 1e-9

    def test_sorted_output(self):
        observations = [((A, B), 10), ((A,), 5)]
        ranked = enumerate_and_score(observations)
        supports = [h.s_a for h in ranked]
        assert supports == sorted(supports, reverse=True)


_pool = [LockRef.global_(n) for n in "abcd"]
_obs = st.lists(
    st.tuples(
        st.lists(st.sampled_from(_pool), max_size=3, unique=True).map(tuple),
        st.integers(min_value=1, max_value=20),
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=100, deadline=None)
@given(_obs)
def test_property_no_lock_has_full_support(observations):
    scored = enumerate_and_score(observations)
    no_lock = [h for h in scored if h.rule.is_no_lock][0]
    assert no_lock.s_r == 1.0


@settings(max_examples=100, deadline=None)
@given(_obs)
def test_property_support_matches_brute_force(observations):
    """Scored support equals a brute-force compliance count."""
    for hypothesis in enumerate_and_score(observations):
        brute = sum(
            count for seq, count in observations if complies(seq, hypothesis.rule)
        )
        assert hypothesis.s_a == brute


@settings(max_examples=100, deadline=None)
@given(_obs)
def test_property_prefix_rules_dominate(observations):
    """Dropping the tail of a rule can only increase support."""
    for hypothesis in enumerate_and_score(observations):
        locks = hypothesis.rule.locks
        if len(locks) < 2:
            continue
        shorter = LockingRule(locks[:-1])
        shorter_support = sum(
            count for seq, count in observations if complies(seq, shorter)
        )
        assert shorter_support >= hypothesis.s_a
