"""Unit tests for the Documentation Generator."""

import pytest

from repro.core.derivator import Derivator
from repro.core.docgen import DocOptions, generate_all_docs, generate_doc
from repro.core.observations import ObservationTable
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct


@pytest.fixture
def derivation():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    for _ in range(5):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
        with rt.function(ctx, "reader", "f.c", 1):
            rt.read(ctx, obj, "b")
    db = import_tracer(rt.tracer, rt.structs)
    return Derivator().derive(ObservationTable.from_database(db))


def test_comment_style_block(derivation):
    doc = generate_doc(derivation, "pair")
    assert doc.startswith("/*")
    assert doc.endswith("*/")
    assert "pair locking rules:" in doc


def test_rules_grouped(derivation):
    doc = generate_doc(derivation, "pair")
    assert "ES(lock_a in pair) protects (write):" in doc
    assert "No locks needed for:" in doc
    assert "read: b" in doc


def test_plain_style(derivation):
    doc = generate_doc(derivation, "pair", DocOptions(comment_style=False))
    assert "/*" not in doc


def test_show_support(derivation):
    doc = generate_doc(derivation, "pair", DocOptions(show_support=True))
    assert "s_r=100%" in doc


def test_min_support_filters(derivation):
    doc = generate_doc(derivation, "pair", DocOptions(min_support=1.01))
    assert "protects" not in doc


def test_generate_all(derivation):
    docs = generate_all_docs(derivation)
    assert set(docs) == {"pair"}
