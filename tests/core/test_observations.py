"""Unit tests for observation folding and write-over-read."""

import pytest

from repro.core.observations import ObservationTable
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct


@pytest.fixture
def rt():
    return KernelRuntime(StructRegistry([make_pair_struct()]))


def table_for(rt, **kwargs):
    db = import_tracer(rt.tracer, rt.structs)
    return ObservationTable.from_database(db, **kwargs)


def test_folding_counts_once_per_txn(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    for _ in range(5):
        rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    table = table_for(rt)
    assert table.observation_count("pair", "a", "w") == 1
    obs = table.get("pair", "a", "w")[0]
    assert len(obs.accesses) == 5  # raw accesses preserved for reporting


def test_write_over_read(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.read(ctx, obj, "a")
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    table = table_for(rt)
    assert table.observation_count("pair", "a", "w") == 1
    assert table.observation_count("pair", "a", "r") == 0  # folded into the write
    assert table.get("pair", "a", "w")[0].mixed


def test_write_over_read_disabled(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.read(ctx, obj, "a")
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    table = table_for(rt, write_over_read=False)
    assert table.observation_count("pair", "a", "w") == 1
    assert table.observation_count("pair", "a", "r") == 1


def test_per_object_grouping(rt):
    """Two objects in one txn produce separate observations with
    separate lock abstractions (ES vs EO)."""
    ctx = rt.new_task("t")
    obj1 = rt.new_object(ctx, "pair")
    obj2 = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj1.lock("lock_a")))
    rt.write(ctx, obj1, "a")
    rt.write(ctx, obj2, "a")
    rt.spin_unlock(ctx, obj1.lock("lock_a"))
    table = table_for(rt)
    sequences = dict(table.sequences("pair", "a", "w"))
    formatted = {tuple(r.format() for r in seq) for seq in sequences}
    assert ("ES(lock_a in pair)",) in formatted
    assert ("EO(lock_a in pair)",) in formatted


def test_subclass_split_and_merge(rt):
    ctx = rt.new_task("t")
    ext4 = rt.new_object(ctx, "pair", subclass="ext4")
    proc = rt.new_object(ctx, "pair", subclass="proc")
    rt.write(ctx, ext4, "a")
    rt.write(ctx, proc, "a")
    split = table_for(rt, split_subclasses=True)
    assert split.observation_count("pair:ext4", "a", "w") == 1
    assert split.observation_count("pair:proc", "a", "w") == 1
    merged = table_for(rt, split_subclasses=False)
    assert merged.observation_count("pair", "a", "w") == 2


def test_merged_queries_cover_subclasses(rt):
    ctx = rt.new_task("t")
    ext4 = rt.new_object(ctx, "pair", subclass="ext4")
    rt.write(ctx, ext4, "a")
    split = table_for(rt, split_subclasses=True)
    assert split.base_keys("pair") == ["pair:ext4"]
    assert len(split.merged_get("pair", "a", "w")) == 1
    assert split.merged_members_of("pair") == ["a"]


def test_sequences_aggregation(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    for _ in range(3):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    with rt.function(ctx, "lockless", "f.c", 1):
        rt.write(ctx, obj, "a")
    table = table_for(rt)
    sequences = table.sequences("pair", "a", "w")
    assert sequences[0][1] == 3  # most frequent first
    assert sequences[1][0] == ()


def test_keys_and_members(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.write(ctx, obj, "a")
    rt.read(ctx, obj, "b")
    table = table_for(rt)
    assert ("pair", "a", "w") in table.keys()
    assert table.members_of("pair") == ["a", "b"]
    assert table.type_keys() == ["pair"]
