"""Unit tests for end-to-end rule derivation."""

import pytest

from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct


@pytest.fixture
def rt():
    return KernelRuntime(StructRegistry([make_pair_struct()]))


def derive(rt, **kwargs):
    db = import_tracer(rt.tracer, rt.structs)
    table = ObservationTable.from_database(db)
    return Derivator(**kwargs).derive(table), table


def test_winner_for_consistent_lock(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    for _ in range(20):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    result, _ = derive(rt)
    derivation = result.get("pair", "a", "w")
    assert derivation.rule.format() == "ES(lock_a in pair)"
    assert derivation.winner.s_r == 1.0


def test_rare_deviation_does_not_flip_winner(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    for _ in range(30):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    with rt.function(ctx, "buggy", "f.c", 9):
        rt.write(ctx, obj, "a")  # one lockless write
    result, _ = derive(rt)
    derivation = result.get("pair", "a", "w")
    assert derivation.rule.format() == "ES(lock_a in pair)"
    assert derivation.winner.s_r < 1.0


def test_frequent_deviation_flips_to_no_lock(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    for index in range(10):
        if index % 2 == 0:
            rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
            rt.write(ctx, obj, "a")
            rt.spin_unlock(ctx, obj.lock("lock_a"))
        else:
            with rt.function(ctx, f"path{index}", "f.c", index):
                rt.write(ctx, obj, "a")
    result, _ = derive(rt)
    assert result.get("pair", "a", "w").is_no_lock


def test_unobserved_member_has_no_derivation(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.write(ctx, obj, "a")
    result, _ = derive(rt)
    assert result.get("pair", "b", "w") is None
    assert result.get("pair", "b", "r") is None


def test_cutoff_threshold_limits_report(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    for _ in range(10):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    with rt.function(ctx, "p", "f.c", 1):
        rt.write(ctx, obj, "a")
    result, _ = derive(rt, cutoff_threshold=0.5)
    derivation = result.get("pair", "a", "w")
    assert all(h.s_r >= 0.5 for h in derivation.hypotheses)


def test_cutoff_above_accept_keeps_winner_in_report(rt):
    """Regression: with cutoff_threshold > accept_threshold the winner
    used to be filtered out of ``Derivation.hypotheses`` because the
    cutoff was applied after selection without merging the candidates
    back in."""
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    for _ in range(10):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    with rt.function(ctx, "buggy", "f.c", 9):
        rt.write(ctx, obj, "a")  # one lockless write: winner s_r = 10/11
    result, _ = derive(rt, cutoff_threshold=0.95, accept_threshold=0.9)
    derivation = result.get("pair", "a", "w")
    # The winner sits between the accept and cutoff thresholds ...
    assert 0.9 <= derivation.winner.s_r < 0.95
    assert derivation.rule.format() == "ES(lock_a in pair)"
    # ... and must still be reported, along with every candidate.
    assert derivation.winner in derivation.hypotheses
    for candidate in derivation.selection.candidates:
        assert candidate in derivation.hypotheses
    # Everything else in the report honours the cutoff.
    candidates = set(derivation.selection.candidates)
    assert all(
        h.s_r >= 0.95 for h in derivation.hypotheses if h not in candidates
    )


def test_report_order_is_preserved_after_candidate_merge(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    for _ in range(10):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    with rt.function(ctx, "buggy", "f.c", 9):
        rt.write(ctx, obj, "a")
    result, _ = derive(rt, cutoff_threshold=0.95, accept_threshold=0.9)
    reported = result.get("pair", "a", "w").hypotheses
    # Report keeps the enumerate_and_score order: s_a desc, fewer locks,
    # then textual.
    keys = [(-h.s_a, len(h.rule), h.rule.format()) for h in reported]
    assert keys == sorted(keys)


def test_max_locks_validation(rt):
    with pytest.raises(ValueError):
        Derivator(max_locks=0)
    with pytest.raises(ValueError):
        Derivator(max_locks=-3)
    Derivator(max_locks=1)  # shortest sensible rule length is fine


def test_threshold_validation():
    with pytest.raises(ValueError):
        Derivator(accept_threshold=0.0)
    with pytest.raises(ValueError):
        Derivator(accept_threshold=1.5)
    with pytest.raises(ValueError):
        Derivator(cutoff_threshold=-0.1)
    # accept >= cutoff is deliberately NOT required (the cutoff only
    # trims the report; candidates are merged back in).
    Derivator(accept_threshold=0.9, cutoff_threshold=0.95)


def test_aggregate_counters(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    with rt.function(ctx, "reader", "f.c", 1):
        rt.read(ctx, obj, "b")
    result, _ = derive(rt)
    assert result.rule_count("pair", "w") == 1
    assert result.rule_count("pair", "r") == 1
    assert result.no_lock_count("pair", "r") == 1
    assert result.no_lock_fraction("pair", "r") == 1.0
    assert result.no_lock_fraction("pair", "w") == 0.0
    assert result.no_lock_fraction("missing", "r") is None


def test_for_type_and_keys(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.write(ctx, obj, "a")
    result, _ = derive(rt)
    assert [d.member for d in result.for_type("pair")] == ["a"]
    assert result.type_keys() == ["pair"]
