"""Tests for the object-interrelation prototype (Sec. 8 future work)."""

import pytest

from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.core.relations import RelationKind, analyze_relations
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct


def build_world():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    return rt, ctx


def analyze(rt):
    db = import_tracer(rt.tracer, rt.structs)
    table = ObservationTable.from_database(db)
    derivation = Derivator().derive(table)
    return analyze_relations(derivation, table, db), derivation


def test_container_relation():
    """One 'list head' object's lock protects many element objects —
    the paper's motivating example for the extended rule model."""
    rt, ctx = build_world()
    head = rt.new_object(ctx, "pair")
    elements = [rt.new_object(ctx, "pair") for _ in range(6)]
    for element in elements:
        for _ in range(3):
            rt.run(rt.spin_lock(ctx, head.lock("lock_a")))
            rt.write(ctx, element, "a")
            rt.spin_unlock(ctx, head.lock("lock_a"))
    report, derivation = analyze(rt)
    relation = report.get("pair", "a", "w")
    assert relation is not None
    assert relation.kind == RelationKind.CONTAINER
    assert relation.owners == 1
    assert relation.accessed == 6
    assert "[container]" in relation.refined()


def test_owner_relation():
    """Each accessed object has its own fixed protecting object."""
    rt, ctx = build_world()
    pairs = []
    for _ in range(5):
        owner = rt.new_object(ctx, "pair")
        element = rt.new_object(ctx, "pair")
        pairs.append((owner, element))
    for owner, element in pairs:
        for _ in range(3):
            rt.run(rt.spin_lock(ctx, owner.lock("lock_a")))
            rt.write(ctx, element, "a")
            rt.spin_unlock(ctx, owner.lock("lock_a"))
    report, _ = analyze(rt)
    relation = report.get("pair", "a", "w")
    assert relation is not None
    assert relation.kind == RelationKind.OWNER
    assert relation.owners == 5 and relation.accessed == 5


def test_varying_relation():
    """The protecting object changes per access — no stable relation."""
    rt, ctx = build_world()
    owners = [rt.new_object(ctx, "pair") for _ in range(4)]
    elements = [rt.new_object(ctx, "pair") for _ in range(4)]
    for round_index in range(4):
        for index, element in enumerate(elements):
            owner = owners[(index + round_index) % len(owners)]
            rt.run(rt.spin_lock(ctx, owner.lock("lock_a")))
            rt.write(ctx, element, "a")
            rt.spin_unlock(ctx, owner.lock("lock_a"))
    report, _ = analyze(rt)
    relation = report.get("pair", "a", "w")
    assert relation is not None
    assert relation.kind == RelationKind.VARYING


def test_unknown_with_too_few_objects():
    rt, ctx = build_world()
    head = rt.new_object(ctx, "pair")
    element = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, head.lock("lock_a")))
    rt.write(ctx, element, "a")
    rt.spin_unlock(ctx, head.lock("lock_a"))
    report, _ = analyze(rt)
    relation = report.get("pair", "a", "w")
    assert relation is not None
    assert relation.kind == RelationKind.UNKNOWN


def test_es_rules_have_no_relation_entries():
    rt, ctx = build_world()
    obj = rt.new_object(ctx, "pair")
    for _ in range(4):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    report, _ = analyze(rt)
    assert report.relations == []


def test_render():
    rt, ctx = build_world()
    head = rt.new_object(ctx, "pair")
    for element in [rt.new_object(ctx, "pair") for _ in range(4)]:
        rt.run(rt.spin_lock(ctx, head.lock("lock_a")))
        rt.write(ctx, element, "a")
        rt.spin_unlock(ctx, head.lock("lock_a"))
    report, _ = analyze(rt)
    text = report.render()
    assert "EO-rule object relations" in text


def test_vfs_relations(pipeline):
    """On the full trace: the journal's j_list_lock is a CONTAINER for
    journal_head lists (one journal, many journal heads); dentry
    d_child under the parent's d_lock is an OWNER/CONTAINER relation —
    and stable relations dominate overall."""
    report = analyze_relations(
        pipeline.derive(), pipeline.table, pipeline.db
    )
    jh = report.get("journal_head", "b_transaction", "w")
    assert jh is not None
    assert jh.kind == RelationKind.CONTAINER  # exactly one journal
    stable = len(report.by_kind(RelationKind.OWNER)) + len(
        report.by_kind(RelationKind.CONTAINER)
    )
    varying = len(report.by_kind(RelationKind.VARYING))
    assert stable > varying
