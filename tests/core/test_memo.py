"""Unit tests for the canonical-profile hypothesis memo."""

from repro.core.hypotheses import enumerate_and_score
from repro.core.lockrefs import LockRef
from repro.core.memo import HypothesisMemo, MemoStats, canonical_profile

A = LockRef.es("lock_a", "pair")
B = LockRef.es("lock_b", "pair")
G = LockRef.global_("g_lock")


def profile():
    return [((A, B), 12), ((A,), 3), ((), 1)]


def test_memoized_result_equals_direct():
    memo = HypothesisMemo()
    assert memo.enumerate_and_score(profile()) == enumerate_and_score(profile())


def test_shared_profile_targets_share_hypotheses():
    """Two targets with equal (lockseq, count) multisets must get the
    *same* hypothesis list — one computation, one hit."""
    memo = HypothesisMemo()
    first = memo.enumerate_and_score(profile())
    second = memo.enumerate_and_score(profile())
    assert first is second  # shared, not merely equal
    assert memo.stats.hits == 1
    assert memo.stats.misses == 1
    assert memo.stats.hit_rate == 0.5


def test_canonical_profile_is_order_insensitive():
    shuffled = [((), 1), ((A, B), 12), ((A,), 3)]
    assert canonical_profile(shuffled) == canonical_profile(profile())
    memo = HypothesisMemo()
    assert memo.enumerate_and_score(profile()) is memo.enumerate_and_score(
        shuffled
    )


def test_distinct_profiles_do_not_collide():
    memo = HypothesisMemo()
    one = memo.enumerate_and_score([((A,), 5)])
    other = memo.enumerate_and_score([((B,), 5)])
    assert one is not other
    assert memo.stats.misses == 2
    # Different max_locks is a different key too.
    memo.enumerate_and_score([((A, B), 5)], max_locks=1)
    memo.enumerate_and_score([((A, B), 5)], max_locks=2)
    assert memo.stats.misses == 4


def test_seeded_entries_count_as_miss_once():
    """Parallel prescoring seeds the cache; the first consuming lookup
    must count as a miss (matching what a serial run would record) and
    later lookups as hits."""
    memo = HypothesisMemo()
    prof = canonical_profile(profile())
    memo.seed(prof, 4, enumerate_and_score(list(prof)))
    memo.enumerate_and_score(profile())
    assert (memo.stats.hits, memo.stats.misses) == (0, 1)
    memo.enumerate_and_score(profile())
    assert (memo.stats.hits, memo.stats.misses) == (1, 1)


def test_stats_merge():
    stats = MemoStats(hits=3, misses=1)
    stats.merge(MemoStats(hits=1, misses=3))
    assert stats.lookups == 8
    assert stats.hit_rate == 0.5


def test_empty_stats_hit_rate():
    assert MemoStats().hit_rate == 0.0
