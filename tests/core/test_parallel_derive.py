"""Parallel-derivation parity: ``derive(jobs=N)`` must equal serial.

The acceptance property of the parallel engine — same winners, same
``s_a``/``s_r``, same hypothesis report order, same memo statistics —
checked exactly over the benchmark mix, the planted-race workload, a
fault-corrupted trace, and hypothesis-generated random tables.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.derivator import Derivator
from repro.core.memo import HypothesisMemo
from repro.core.observations import Observation, ObservationTable
from repro.faults import COMPOSED_SPEC, FaultPlan
from repro.core.lockrefs import LockRef
from repro.db.health import ingest_events
from repro.db.importer import ImportPolicy
from repro.tracing import serialize
from repro.workloads.racer import build_racer_registry, run_racer


def assert_exact_parity(table, jobs=2, threshold=0.9):
    serial = Derivator(threshold).derive(table)
    parallel = Derivator(threshold).derive(table, jobs=jobs)
    assert parallel == serial
    # Belt and braces: make the compared dimensions explicit.
    assert parallel.keys() == serial.keys()
    for key in serial.keys():
        s, p = serial.get(*key), parallel.get(*key)
        assert p.winner == s.winner
        assert p.rule.format() == s.rule.format()
        assert [(h.rule, h.s_a, h.s_r) for h in p.hypotheses] == [
            (h.rule, h.s_a, h.s_r) for h in s.hypotheses
        ]
        assert p.selection.candidates == s.selection.candidates
    # The memo dedup partitions the parallel work, so even the hit/miss
    # statistics match a serial run.
    assert parallel.memo_stats == serial.memo_stats
    return serial


def test_mix_parallel_equals_serial(pipeline):
    result = assert_exact_parity(pipeline.table, jobs=2)
    assert result.memo_stats.hits > 0  # sharing actually happened


def test_mix_four_jobs_equals_serial(pipeline):
    assert_exact_parity(pipeline.table, jobs=4)


def test_racer_parallel_equals_serial():
    racer = run_racer(seed=0, scale=1.0)
    table = ObservationTable.from_database(racer.to_database())
    assert_exact_parity(table, jobs=2)
    # The public API route too.
    assert racer.derive(0.9, jobs=2) == racer.derive(0.9)


def test_small_workload_falls_back_to_serial(monkeypatch):
    """Regression: below ``_PARALLEL_MIN_PROFILES`` distinct uncached
    profiles, ``jobs > 1`` must not fork a pool — startup plus chunk
    pickling dominated the actual scoring there (fsstress under
    ``--jobs 4`` ran ~5.6x slower than serial before the fallback)."""
    import concurrent.futures

    from repro.core.derivator import _PARALLEL_MIN_PROFILES
    from repro.core.memo import canonical_profile

    racer = run_racer(seed=0, scale=1.0)
    table = ObservationTable.from_database(racer.to_database())
    distinct = {
        canonical_profile(sequences)
        for key in table.keys()
        if (sequences := table.sequences(*key))
    }
    assert 0 < len(distinct) < _PARALLEL_MIN_PROFILES  # genuinely small

    def _no_forking(*args, **kwargs):
        raise AssertionError("small workload must not spawn a process pool")

    monkeypatch.setattr(
        concurrent.futures, "ProcessPoolExecutor", _no_forking
    )
    serial = Derivator(0.9).derive(table)
    parallel = Derivator(0.9).derive(table, jobs=4)  # must not touch the pool
    assert parallel == serial


def test_fault_corrupted_trace_parallel_equals_serial():
    """Parity must survive quarantined/healed observations, not just
    clean traces."""
    tracer = run_racer(seed=0, scale=1.0).tracer
    text = serialize.dumps_events_text(
        list(tracer.events), serialize.stacks_of(tracer)
    )
    mutated = FaultPlan.from_spec(COMPOSED_SPEC, seed=1).corrupt_text(text)
    report = serialize.loads_text_lenient(mutated)
    db, _health = ingest_events(
        report.events,
        report.stacks,
        build_racer_registry(),
        None,
        ImportPolicy(lenient=True, max_malformed_fraction=1.0),
        parse_report=report,
    )
    table = ObservationTable.from_database(db)
    assert table.total > 0
    assert_exact_parity(table, jobs=2)


def test_shared_memo_across_thresholds(pipeline):
    """A caller-supplied memo is reused across derive() calls."""
    memo = HypothesisMemo()
    first = Derivator(0.9).derive(pipeline.table, memo=memo)
    lookups = memo.stats.lookups
    misses_after_first = memo.stats.misses
    second = Derivator(0.5).derive(pipeline.table, memo=memo)
    # Second pass recomputed nothing: every lookup hit the shared cache.
    assert memo.stats.lookups == 2 * lookups
    assert memo.stats.misses == misses_after_first
    # Thresholds differ, so selections may differ — but every target
    # scored the same hypotheses.
    for key in first.keys():
        assert [h for h in second.get(*key).hypotheses] == [
            h for h in first.get(*key).hypotheses
        ]


# ----------------------------------------------------------------------
# Property test: random tables
# ----------------------------------------------------------------------

_LOCKS = (
    LockRef.es("lock_a", "pair"),
    LockRef.es("lock_b", "pair"),
    LockRef.global_("g_lock"),
    LockRef.global_("rcu", mode="r"),
)

_lockseq = st.lists(
    st.sampled_from(_LOCKS), max_size=3, unique=True
).map(tuple)


@st.composite
def _tables(draw):
    table = ObservationTable()
    n_members = draw(st.integers(min_value=1, max_value=4))
    for m in range(n_members):
        member = f"m{m}"
        seqs = draw(st.lists(_lockseq, min_size=1, max_size=5))
        for i, seq in enumerate(seqs):
            table._append(
                Observation(
                    txn_id=i,
                    alloc_id=1,
                    type_key="pair",
                    member=member,
                    access_type=draw(st.sampled_from(["r", "w"])),
                    lockseq=seq,
                    accesses=(),
                )
            )
    return table


@settings(max_examples=8, deadline=None)
@given(table=_tables(), jobs=st.sampled_from([2, 3]))
def test_random_tables_parallel_equals_serial(table, jobs):
    assert_exact_parity(table, jobs=jobs)


@settings(max_examples=20, deadline=None)
@given(table=_tables())
def test_random_tables_memo_equals_unmemoized(table):
    """Memoized serial derivation equals per-target unmemoized
    derivation (derive_one without a memo)."""
    derivator = Derivator(0.9)
    memoized = derivator.derive(table)
    for key in memoized.keys():
        assert memoized.get(*key) == derivator.derive_one(table, *key)
