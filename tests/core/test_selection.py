"""Unit tests for the winning-hypothesis selection strategy."""

import pytest

from repro.core.hypotheses import Hypothesis, enumerate_and_score
from repro.core.lockrefs import LockRef
from repro.core.rules import LockingRule
from repro.core.selection import select_naive, select_winner

SEC = LockRef.es("sec_lock", "clock")
MIN = LockRef.es("min_lock", "clock")


def clock_hypotheses():
    """The Tab. 2 scenario."""
    return enumerate_and_score([((SEC, MIN), 16), ((SEC,), 1)])


def test_lockdoc_selection_picks_true_rule():
    selection = select_winner(clock_hypotheses(), accept_threshold=0.9)
    assert selection.winner.rule == LockingRule.of(SEC, MIN)


def test_naive_selection_picks_wrong_rule():
    naive = select_naive(clock_hypotheses())
    assert naive.rule != LockingRule.of(SEC, MIN)
    assert naive.s_r == 1.0


def test_candidates_are_above_threshold():
    selection = select_winner(clock_hypotheses(), accept_threshold=0.9)
    assert all(h.s_r >= 0.9 for h in selection.candidates)
    # #4 (min -> sec, 0 support) is not a candidate
    assert all(
        h.rule != LockingRule.of(MIN, SEC) for h in selection.candidates
    )


def test_tie_breaks_towards_more_locks():
    # #2 (sec->min) and #3 (min) tie at 94.12%; the longer rule wins.
    selection = select_winner(clock_hypotheses(), accept_threshold=0.9)
    assert len(selection.winner.rule) == 2


def test_no_lock_always_available():
    hypotheses = [Hypothesis(rule=LockingRule.no_lock(), s_a=5, total=5)]
    selection = select_winner(hypotheses)
    assert selection.winner.rule.is_no_lock


def test_higher_threshold_can_flip_winner():
    # At t_ac=0.95 the true rule (94.12%) is rejected; a looser rule wins.
    low = select_winner(clock_hypotheses(), accept_threshold=0.9)
    high = select_winner(clock_hypotheses(), accept_threshold=0.95)
    assert len(high.winner.rule) < len(low.winner.rule)


def test_threshold_one_keeps_fully_supported_rules():
    selection = select_winner(clock_hypotheses(), accept_threshold=1.0)
    assert selection.winner.rule == LockingRule.of(SEC)  # 100%, 1 lock > 0


def test_empty_hypotheses_rejected():
    with pytest.raises(ValueError):
        select_winner([])


def test_invalid_thresholds_rejected():
    from repro.core.derivator import Derivator

    with pytest.raises(ValueError):
        Derivator(accept_threshold=0.0)
    with pytest.raises(ValueError):
        Derivator(accept_threshold=1.5)
    with pytest.raises(ValueError):
        Derivator(cutoff_threshold=-0.1)


def test_naive_tie_breaks_towards_fewer_locks():
    """Regression: select_naive used ``max`` over ascending keys, so
    ties silently favoured *more* locks and the lexicographically-last
    format — contradicting the strawman description."""
    no_lock = Hypothesis(rule=LockingRule.no_lock(), s_a=10, total=10)
    one = Hypothesis(rule=LockingRule.of(SEC), s_a=10, total=10)
    two = Hypothesis(rule=LockingRule.of(SEC, MIN), s_a=10, total=10)
    assert select_naive([two, one, no_lock]).rule.is_no_lock
    # Without the no-lock rule, the shortest remaining rule wins.
    assert select_naive([two, one]).rule == LockingRule.of(SEC)


def test_naive_tie_breaks_lexicographically_first():
    a = Hypothesis(rule=LockingRule.of(LockRef.global_("aaa")), s_a=5, total=5)
    b = Hypothesis(rule=LockingRule.of(LockRef.global_("bbb")), s_a=5, total=5)
    assert select_naive([b, a]).rule == a.rule
    assert select_naive([a, b]).rule == a.rule


def test_naive_is_order_insensitive():
    hypotheses = clock_hypotheses()
    expected = select_naive(hypotheses)
    assert select_naive(list(reversed(hypotheses))) == expected
    assert select_naive(sorted(hypotheses, key=lambda h: h.rule.format())) == expected


def test_naive_empty_returns_none():
    assert select_naive([]) is None


def test_deterministic_on_full_tie():
    a = Hypothesis(rule=LockingRule.of(LockRef.global_("a")), s_a=10, total=10)
    b = Hypothesis(rule=LockingRule.of(LockRef.global_("b")), s_a=10, total=10)
    assert select_winner([a, b]).winner is select_winner([b, a]).winner or (
        select_winner([a, b]).winner.rule == select_winner([b, a]).winner.rule
    )
