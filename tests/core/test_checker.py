"""Unit tests for the Locking-Rule Checker."""

import pytest

from repro.core.checker import RuleStatus, check_rule, check_rules, summarize
from repro.core.lockrefs import LockRef
from repro.core.observations import ObservationTable
from repro.core.rules import LockingRule
from repro.db.importer import import_tracer
from repro.doc.model import DocumentedRule
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct

ES_A = LockRef.es("lock_a", "pair")


@pytest.fixture
def table():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair", subclass="x")
    # 3 locked writes + 1 lockless write to member a; b untouched.
    for _ in range(3):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    with rt.function(ctx, "p", "f.c", 1):
        rt.write(ctx, obj, "a")
    db = import_tracer(rt.tracer, rt.structs)
    return ObservationTable.from_database(db)


def doc(member, access, rule):
    return DocumentedRule("pair", member, access, rule, source="hdr:1")


def test_ambivalent(table):
    result = check_rule(table, doc("a", "w", LockingRule.of(ES_A)), "w", LockingRule.of(ES_A))
    assert result.status == RuleStatus.AMBIVALENT
    assert result.s_a == 3 and result.total == 4


def test_correct(table):
    rule = LockingRule.no_lock()
    result = check_rule(table, doc("a", "w", rule), "w", rule)
    assert result.status == RuleStatus.CORRECT


def test_incorrect(table):
    rule = LockingRule.of(LockRef.es("lock_b", "pair"))
    result = check_rule(table, doc("a", "w", rule), "w", rule)
    assert result.status == RuleStatus.INCORRECT


def test_unobserved(table):
    rule = LockingRule.of(ES_A)
    result = check_rule(table, doc("b", "w", rule), "w", rule)
    assert result.status == RuleStatus.UNOBSERVED


def test_checker_merges_subclasses(table):
    # the fixture's object carries subclass "x"; the documented rule
    # speaks about the base type and still finds the observations.
    result = check_rule(table, doc("a", "w", LockingRule.of(ES_A)), "w", LockingRule.of(ES_A))
    assert result.total == 4


def test_rw_rules_expand():
    rules = [doc("a", "rw", LockingRule.of(ES_A))]
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.read(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    db = import_tracer(rt.tracer, rt.structs)
    table = ObservationTable.from_database(db)
    results = check_rules(table, rules)
    assert len(results) == 2
    statuses = {r.access_type: r.status for r in results}
    assert statuses["r"] == RuleStatus.CORRECT
    assert statuses["w"] == RuleStatus.UNOBSERVED


def test_summarize_counts(table):
    rules = [
        doc("a", "w", LockingRule.of(ES_A)),      # ambivalent
        doc("a", "r", LockingRule.of(ES_A)),      # unobserved (no reads)
        doc("b", "w", LockingRule.no_lock()),     # unobserved
    ]
    summaries = summarize(check_rules(table, rules))
    assert len(summaries) == 1
    s = summaries[0]
    assert s.rules == 3 and s.unobserved == 2 and s.observed == 1
    assert s.ambivalent == 1
    assert s.fraction(RuleStatus.AMBIVALENT) == 1.0


def test_status_symbols():
    assert RuleStatus.CORRECT.symbol == "+"
    assert RuleStatus.AMBIVALENT.symbol == "~"
    assert RuleStatus.INCORRECT.symbol == "-"
    assert RuleStatus.UNOBSERVED.symbol == "?"
