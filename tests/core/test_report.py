"""Unit tests for report rendering helpers."""

from repro.core.report import percentage, render_table, rows_to_dicts


def test_render_table_alignment():
    out = render_table(["name", "n"], [["a", 1], ["long-name", 22]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "long-name" in lines[3]
    # header separator present
    assert set(lines[1]) <= {"-", " "}


def test_render_table_title():
    out = render_table(["x"], [[1]], title="T")
    assert out.splitlines()[0] == "T"


def test_percentage():
    assert percentage(0.9412) == "94.12%"
    assert percentage(1.0, digits=0) == "100%"


def test_rows_to_dicts():
    assert rows_to_dicts(["a", "b"], [[1, 2]]) == [{"a": 1, "b": 2}]
