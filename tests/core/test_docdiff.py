"""Tests for the documentation patch generator."""

import pytest

from repro.core.derivator import Derivator
from repro.core.docdiff import DocAction, build_doc_patch
from repro.core.lockrefs import LockRef
from repro.core.observations import ObservationTable
from repro.core.rules import LockingRule
from repro.db.importer import import_tracer
from repro.doc.model import DocumentedRule
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct

ES_A = LockRef.es("lock_a", "pair")
ES_B = LockRef.es("lock_b", "pair")


@pytest.fixture
def derivation():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair", subclass="x")
    for _ in range(10):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
        rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
        rt.write(ctx, obj, "b")
        rt.spin_unlock(ctx, obj.lock("lock_b"))
    db = import_tracer(rt.tracer, rt.structs)
    return Derivator().derive(ObservationTable.from_database(db))


def docs(*rules):
    return list(rules)


def test_keep_when_docs_match(derivation):
    patch = build_doc_patch(
        derivation,
        docs(DocumentedRule("pair", "a", "w", LockingRule.of(ES_A), "hdr:1")),
        "pair",
    )
    entry = [e for e in patch.entries if e.member == "a"][0]
    assert entry.action == DocAction.KEEP


def test_update_when_docs_stale(derivation):
    patch = build_doc_patch(
        derivation,
        docs(DocumentedRule("pair", "a", "w", LockingRule.of(ES_B), "hdr:1")),
        "pair",
    )
    entry = [e for e in patch.entries if e.member == "a"][0]
    assert entry.action == DocAction.UPDATE
    assert entry.mined == LockingRule.of(ES_A)
    assert "hdr:1" in entry.format()


def test_add_for_undocumented_locked_member(derivation):
    patch = build_doc_patch(derivation, [], "pair")
    added = {e.member for e in patch.by_action(DocAction.ADD)}
    assert added == {"a", "b"}


def test_no_add_for_no_lock_winners():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    with rt.function(ctx, "f", "f.c", 1):
        rt.write(ctx, obj, "a")
    db = import_tracer(rt.tracer, rt.structs)
    derivation = Derivator().derive(ObservationTable.from_database(db))
    patch = build_doc_patch(derivation, [], "pair")
    assert patch.by_action(DocAction.ADD) == []


def test_review_for_unobserved_documented_member(derivation):
    patch = build_doc_patch(
        derivation,
        docs(DocumentedRule("pair", "a", "r", LockingRule.of(ES_A), "hdr:2")),
        "pair",
    )
    # 'a' is never read in the fixture trace
    entry = [
        e for e in patch.entries if e.member == "a" and e.access_type == "r"
    ][0]
    assert entry.action == DocAction.REVIEW


def test_summary_and_render(derivation):
    patch = build_doc_patch(
        derivation,
        docs(
            DocumentedRule("pair", "a", "w", LockingRule.of(ES_A), "hdr:1"),
            DocumentedRule("pair", "b", "w", LockingRule.of(ES_A), "hdr:3"),
        ),
        "pair",
    )
    counts = patch.summary()
    assert counts["keep"] == 1 and counts["update"] == 1
    text = patch.render()
    assert "totals:" in text and "update (1)" in text


def test_full_corpus_patch_on_pipeline(pipeline):
    from repro.doc.corpus import documented_rules

    patch = build_doc_patch(pipeline.derive(), documented_rules(), "inode")
    counts = patch.summary()
    # the corpus deliberately contains stale rules -> updates exist;
    # most members are undocumented -> adds exist; i_acl etc. -> review.
    assert counts["update"] >= 3
    assert counts["add"] >= 5
    assert counts["review"] >= 1
    assert counts["keep"] >= 2
