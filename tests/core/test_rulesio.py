"""Tests for rule export/import and rule-set diffing."""

import json

import pytest

from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.core.rulesio import (
    ExportedRule,
    diff_rule_sets,
    rules_from_json,
    rules_to_json,
)
from repro.core.rules import LockingRule
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct


@pytest.fixture
def result():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    for _ in range(5):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
        with rt.function(ctx, "r", "f.c", 1):
            rt.read(ctx, obj, "b")
    db = import_tracer(rt.tracer, rt.structs)
    return Derivator().derive(ObservationTable.from_database(db))


def test_round_trip(result):
    text = rules_to_json(result)
    rules = rules_from_json(text)
    by_key = {r.key: r for r in rules}
    a_rule = by_key[("pair", "a", "w")]
    assert a_rule.rule.format() == "ES(lock_a in pair)"
    assert a_rule.s_r == 1.0
    assert a_rule.observations == 5


def test_hypotheses_included_on_request(result):
    document = json.loads(rules_to_json(result, include_hypotheses=True))
    target = [t for t in document["targets"] if t["member"] == "a"][0]
    assert len(target["hypotheses"]) >= 2


def test_version_check(result):
    document = json.loads(rules_to_json(result))
    document["format"] = 99
    with pytest.raises(ValueError, match="unsupported"):
        rules_from_json(json.dumps(document))


def test_diff_rule_sets():
    def exported(member, rule_text):
        return ExportedRule("t", member, "w", LockingRule.parse(rule_text),
                            10, 1.0, 10)

    old = [exported("a", "g1"), exported("b", "g1")]
    new = [exported("b", "g2"), exported("c", "g1")]
    diff = diff_rule_sets(old, new)
    assert [r.member for r in diff["added"]] == ["c"]
    assert [r.member for r in diff["removed"]] == ["a"]
    assert [(o.member, n.rule.format()) for o, n in diff["changed"]] == [("b", "g2")]


def test_diff_is_empty_for_identical_sets(result):
    rules = rules_from_json(rules_to_json(result))
    diff = diff_rule_sets(rules, rules)
    assert diff == {"added": [], "removed": [], "changed": []}
