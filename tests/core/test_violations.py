"""Unit tests for the Rule-Violation Finder."""

import pytest

from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.core.violations import ViolationFinder, summarize
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct


def build_trace(locked_writes=20, buggy_writes=1, buggy_paths=1):
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    for _ in range(locked_writes):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    for path in range(buggy_paths):
        for _ in range(buggy_writes):
            with rt.function(ctx, f"buggy_{path}", "buggy.c", 10 + path):
                rt.write(ctx, obj, "a", line=11 + path)
    db = import_tracer(rt.tracer, rt.structs)
    table = ObservationTable.from_database(db)
    result = Derivator().derive(table)
    return result, table


def test_violations_found():
    result, table = build_trace()
    violations = ViolationFinder(result, table).find()
    assert len(violations) == 1
    v = violations[0]
    assert v.member == "a" and v.access_type == "w"
    assert v.held == ()
    assert v.events == 1
    assert v.sample.file == "buggy.c"


def test_fully_supported_rules_have_no_violations():
    result, table = build_trace(buggy_writes=0, buggy_paths=0)
    assert ViolationFinder(result, table).find() == []


def test_contexts_counted_per_stack():
    result, table = build_trace(locked_writes=60, buggy_writes=1, buggy_paths=3)
    violations = ViolationFinder(result, table).find()
    assert len(violations) == 1  # same held-seq, grouped
    assert len(violations[0].contexts) == 3
    assert len(violations[0].locations) == 3


def test_summarize_includes_zero_types():
    result, table = build_trace()
    violations = ViolationFinder(result, table).find()
    rows = summarize(violations, ["pair", "ghost_type"])
    by_type = {r.type_key: r for r in rows}
    assert by_type["pair"].events == 1
    assert by_type["ghost_type"].events == 0
    assert by_type["ghost_type"].members == 0


def test_no_lock_winner_produces_no_violations():
    # 50/50 locked/lockless -> no-lock wins -> nothing to violate.
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    for index in range(10):
        if index % 2:
            rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
            rt.write(ctx, obj, "a")
            rt.spin_unlock(ctx, obj.lock("lock_a"))
        else:
            with rt.function(ctx, f"p{index}", "f.c", index):
                rt.write(ctx, obj, "a")
    db = import_tracer(rt.tracer, rt.structs)
    table = ObservationTable.from_database(db)
    result = Derivator().derive(table)
    assert ViolationFinder(result, table).find() == []


def test_violation_format_mentions_rule_and_location():
    result, table = build_trace()
    text = ViolationFinder(result, table).find()[0].format()
    assert "expected" in text and "buggy.c" in text
