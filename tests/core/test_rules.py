"""Unit and property tests for locking rules and compliance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lockrefs import LockRef
from repro.core.rules import LockingRule, complies, support

A = LockRef.global_("a")
B = LockRef.global_("b")
C = LockRef.global_("c")


class TestLockingRule:
    def test_no_lock(self):
        rule = LockingRule.no_lock()
        assert rule.is_no_lock and len(rule) == 0
        assert rule.format() == "no lock needed"

    def test_of(self):
        rule = LockingRule.of(A, B)
        assert len(rule) == 2

    def test_repeated_lock_rejected(self):
        with pytest.raises(ValueError):
            LockingRule.of(A, A)

    def test_format_parse_round_trip(self):
        rule = LockingRule.of(A, LockRef.es("i_lock", "inode"))
        assert LockingRule.parse(rule.format()) == rule
        assert LockingRule.parse("no lock needed").is_no_lock
        assert LockingRule.parse("").is_no_lock


class TestComplies:
    def test_empty_rule_always_complies(self):
        assert complies((), LockingRule.no_lock())
        assert complies((A, B), LockingRule.no_lock())

    def test_exact_match(self):
        assert complies((A, B), LockingRule.of(A, B))

    def test_paper_interleaved_example(self):
        # rule a -> b vs held a -> c -> b: complies (Sec. 5.4)
        assert complies((A, C, B), LockingRule.of(A, B))

    def test_wrong_order_violates(self):
        assert not complies((B, A), LockingRule.of(A, B))

    def test_missing_lock_violates(self):
        assert not complies((A,), LockingRule.of(A, B))
        assert not complies((), LockingRule.of(A))

    def test_prefix_and_suffix_extras_ok(self):
        assert complies((C, A, B, C.__class__.global_("d")), LockingRule.of(A, B))

    def test_write_mode_satisfies_read_rule(self):
        held = (LockRef.es("l", "t", "w"),)
        rule = LockingRule.of(LockRef.es("l", "t", "r"))
        assert complies(held, rule)

    def test_read_mode_violates_write_rule(self):
        held = (LockRef.es("l", "t", "r"),)
        rule = LockingRule.of(LockRef.es("l", "t", "w"))
        assert not complies(held, rule)


class TestSupport:
    def test_counts(self):
        observations = [((A, B), 16), ((A,), 1)]
        s_a, total = support(observations, LockingRule.of(A, B))
        assert (s_a, total) == (16, 17)
        s_a, total = support(observations, LockingRule.of(A))
        assert (s_a, total) == (17, 17)
        s_a, total = support(observations, LockingRule.no_lock())
        assert (s_a, total) == (17, 17)


_ref_pool = [LockRef.global_(n) for n in "abcdef"]
_seqs = st.lists(st.sampled_from(_ref_pool), max_size=6, unique=True).map(tuple)


@settings(max_examples=200, deadline=None)
@given(_seqs, _seqs)
def test_property_subsequence_semantics(observation, rule_locks):
    """complies() is exactly the subsequence relation on deduped refs."""
    rule = LockingRule(rule_locks)

    def is_subsequence(needle, haystack):
        it = iter(haystack)
        return all(any(h == n for h in it) for n in needle)

    assert complies(observation, rule) == is_subsequence(rule_locks, observation)


@settings(max_examples=200, deadline=None)
@given(_seqs, st.sampled_from(_ref_pool))
def test_property_extra_locks_never_break_compliance(observation, extra):
    """Inserting an extra held lock anywhere preserves compliance."""
    rule_locks = observation[: max(0, len(observation) - 1)]
    rule = LockingRule(rule_locks)
    assert complies(observation, rule)
    for position in range(len(observation) + 1):
        augmented = observation[:position] + (extra,) + observation[position:]
        assert complies(augmented, rule)


@settings(max_examples=200, deadline=None)
@given(_seqs)
def test_property_full_rule_complies_with_itself(seq):
    assert complies(seq, LockingRule(seq))
