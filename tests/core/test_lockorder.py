"""Tests for the lock-order analysis (lockdep-style companion)."""

import pytest

from repro.core.lockorder import build_lock_order, format_class
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct


@pytest.fixture
def rt():
    return KernelRuntime(StructRegistry([make_pair_struct()]))


def analyze(rt):
    return build_lock_order(import_tracer(rt.tracer, rt.structs))


def test_nested_acquisition_creates_edge(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_b"))
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    report = analyze(rt)
    edge_names = {
        (format_class(b), format_class(a)) for (b, a) in report.edges
    }
    assert ("pair.lock_a", "pair.lock_b") in edge_names
    assert not report.inversions


def test_abba_inversion_detected(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    glock = rt.static_lock("g", "spinlock_t")
    # order 1: lock_a -> g
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.run(rt.spin_lock(ctx, glock))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, glock)
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    # order 2: g -> lock_a  (the inversion)
    rt.run(rt.spin_lock(ctx, glock))
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    rt.spin_unlock(ctx, glock)
    report = analyze(rt)
    assert len(report.inversions) == 1
    text = report.inversions[0].format()
    assert "ABBA" in text and "g" in text


def test_same_class_nesting_reported(rt):
    ctx = rt.new_task("t")
    obj1 = rt.new_object(ctx, "pair")
    obj2 = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj1.lock("lock_a")))
    rt.run(rt.spin_lock(ctx, obj2.lock("lock_a")))  # same class, 2 instances
    rt.write(ctx, obj1, "a")
    rt.spin_unlock(ctx, obj2.lock("lock_a"))
    rt.spin_unlock(ctx, obj1.lock("lock_a"))
    report = analyze(rt)
    nesting = {format_class(k): v for k, v in report.self_nesting.items()}
    assert nesting.get("pair.lock_a") == 1
    assert not report.inversions  # same-class is not an ABBA edge


def test_witness_counting(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    for _ in range(4):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_b"))
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    report = analyze(rt)
    edge = next(iter(report.edges.values()))
    assert edge.witnesses == 4
    assert edge.example_txn is not None


def test_dominant_order(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    glock = rt.static_lock("g", "spinlock_t")
    for _ in range(3):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.run(rt.spin_lock(ctx, glock))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, glock)
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    rt.run(rt.spin_lock(ctx, glock))
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    rt.spin_unlock(ctx, glock)
    report = analyze(rt)
    a = ("embedded", "pair", "lock_a")
    g = ("global", "g", None)
    assert report.dominant_order(a, g) == (a, g)  # 3 vs 1 witnesses
    assert report.dominant_order(a, ("global", "never", None)) is None


def test_render(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_b"))
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    text = analyze(rt).render()
    assert "lock-order graph" in text
    assert "no order inversions observed" in text


def test_vfs_trace_has_consistent_order(pipeline):
    """The simulated kernel's ground truth is deadlock-free by
    construction: the benchmark trace must contain no ABBA inversions."""
    report = build_lock_order(pipeline.db)
    assert report.edge_count > 10
    assert report.inversions == []
