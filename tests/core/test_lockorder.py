"""Tests for the lock-order analysis (lockdep-style companion)."""

import pytest

from repro.core.lockorder import build_lock_order, format_class
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct


@pytest.fixture
def rt():
    return KernelRuntime(StructRegistry([make_pair_struct()]))


def analyze(rt):
    return build_lock_order(import_tracer(rt.tracer, rt.structs))


def test_nested_acquisition_creates_edge(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_b"))
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    report = analyze(rt)
    edge_names = {
        (format_class(b), format_class(a)) for (b, a) in report.edges
    }
    assert ("pair.lock_a", "pair.lock_b") in edge_names
    assert not report.inversions


def test_abba_inversion_detected(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    glock = rt.static_lock("g", "spinlock_t")
    # order 1: lock_a -> g
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.run(rt.spin_lock(ctx, glock))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, glock)
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    # order 2: g -> lock_a  (the inversion)
    rt.run(rt.spin_lock(ctx, glock))
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    rt.spin_unlock(ctx, glock)
    report = analyze(rt)
    assert len(report.inversions) == 1
    text = report.inversions[0].format()
    assert "ABBA" in text and "g" in text


def test_same_class_nesting_reported(rt):
    ctx = rt.new_task("t")
    obj1 = rt.new_object(ctx, "pair")
    obj2 = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj1.lock("lock_a")))
    rt.run(rt.spin_lock(ctx, obj2.lock("lock_a")))  # same class, 2 instances
    rt.write(ctx, obj1, "a")
    rt.spin_unlock(ctx, obj2.lock("lock_a"))
    rt.spin_unlock(ctx, obj1.lock("lock_a"))
    report = analyze(rt)
    nesting = {format_class(k): v for k, v in report.self_nesting.items()}
    finding = nesting.get("pair.lock_a")
    assert finding is not None and finding.witnesses == 1
    assert finding.example_txn is not None
    assert finding.example_ctx == ctx.ctx_id
    assert "pair.lock_a" in finding.format()
    assert not report.inversions  # same-class is not an ABBA edge


def test_witness_counting(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    for _ in range(4):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_b"))
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    report = analyze(rt)
    edge = next(iter(report.edges.values()))
    assert edge.witnesses == 4
    assert edge.example_txn is not None


def test_dominant_order(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    glock = rt.static_lock("g", "spinlock_t")
    for _ in range(3):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.run(rt.spin_lock(ctx, glock))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, glock)
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    rt.run(rt.spin_lock(ctx, glock))
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    rt.spin_unlock(ctx, glock)
    report = analyze(rt)
    a = ("embedded", "pair", "lock_a")
    g = ("global", "g", None)
    assert report.dominant_order(a, g) == (a, g)  # 3 vs 1 witnesses
    assert report.dominant_order(a, ("global", "never", None)) is None


def test_render(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_b"))
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    text = analyze(rt).render()
    assert "lock-order graph" in text
    assert "no order inversions observed" in text


def test_three_lock_cycle_detected_without_any_inversion(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    locks = [rt.static_lock(name, "spinlock_t") for name in ("x", "y", "z")]
    # x->y, y->z, z->x: every pair has one consistent order, yet the
    # three orders compose into a cycle.
    for first, second in zip(locks, locks[1:] + locks[:1]):
        rt.run(rt.spin_lock(ctx, first))
        rt.run(rt.spin_lock(ctx, second))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, second)
        rt.spin_unlock(ctx, first)
    report = analyze(rt)
    assert report.inversions == []
    cycles = report.multi_lock_cycles()
    assert len(cycles) == 1
    assert {format_class(k) for k in cycles[0].classes} == {"x", "y", "z"}
    assert cycles[0].min_witnesses == 1
    assert "cycle[3]" in report.render()


def test_abba_is_also_a_two_cycle(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    glock = rt.static_lock("g", "spinlock_t")
    for first, second in ((obj.lock("lock_a"), glock), (glock, obj.lock("lock_a"))):
        rt.run(rt.spin_lock(ctx, first))
        rt.run(rt.spin_lock(ctx, second))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, second)
        rt.spin_unlock(ctx, first)
    report = analyze(rt)
    assert len(report.inversions) == 1
    assert len(report.cycles) == 1 and len(report.cycles[0]) == 2
    assert report.multi_lock_cycles() == []  # length-2 is ABBA's job


def test_acyclic_graph_has_no_cycles(rt):
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_b"))
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    assert analyze(rt).cycles == []


def test_vfs_trace_has_consistent_order(pipeline):
    """The simulated kernel's ground truth is deadlock-free by
    construction: the benchmark trace must contain no ABBA inversions
    and no lock-order cycles of any length."""
    report = build_lock_order(pipeline.db)
    assert report.edge_count > 10
    assert report.inversions == []
    assert report.cycles == []
