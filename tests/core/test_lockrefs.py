"""Unit and property tests for lock references."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lockrefs import LockRef, Scope, dedup_refs, satisfies


class TestConstruction:
    def test_global_rejects_owner(self):
        with pytest.raises(ValueError):
            LockRef(Scope.GLOBAL, "l", "inode")

    def test_embedded_requires_owner(self):
        with pytest.raises(ValueError):
            LockRef(Scope.ES, "l", None)

    def test_factories(self):
        assert LockRef.global_("g").scope == Scope.GLOBAL
        assert LockRef.es("l", "inode").scope == Scope.ES
        assert LockRef.eo("l", "inode").scope == Scope.EO


class TestFormat:
    def test_global(self):
        assert LockRef.global_("inode_hash_lock").format() == "inode_hash_lock"

    def test_es(self):
        assert LockRef.es("i_lock", "inode").format() == "ES(i_lock in inode)"

    def test_eo_read_mode(self):
        ref = LockRef.eo("wb.list_lock", "backing_dev_info", "r")
        assert ref.format() == "EO(wb.list_lock in backing_dev_info):r"

    def test_parse_examples(self):
        for text in (
            "inode_hash_lock",
            "rcu:r",
            "ES(i_lock in inode)",
            "EO(j_state_lock in journal_t):r",
        ):
            assert LockRef.parse(text).format() == text

    def test_parse_malformed(self):
        with pytest.raises(ValueError):
            LockRef.parse("ES(broken")
        with pytest.raises(ValueError):
            LockRef.parse("ES(name_without_owner)")


_refs = st.builds(
    lambda scope, name, owner, mode: (
        LockRef.global_(name, mode)
        if scope == Scope.GLOBAL
        else LockRef(scope, name, owner, mode)
    ),
    st.sampled_from(list(Scope)),
    st.from_regex(r"[a-z][a-z0-9_.]{0,15}", fullmatch=True),
    st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True),
    st.sampled_from(["r", "w"]),
)


@settings(max_examples=200, deadline=None)
@given(_refs)
def test_property_format_parse_round_trip(ref):
    assert LockRef.parse(ref.format()) == ref


class TestSatisfies:
    def test_identity(self):
        ref = LockRef.es("i_lock", "inode")
        assert satisfies(ref, ref)

    def test_write_satisfies_read(self):
        held = LockRef.es("j_state_lock", "journal_t", "w")
        needed = LockRef.es("j_state_lock", "journal_t", "r")
        assert satisfies(held, needed)

    def test_read_does_not_satisfy_write(self):
        held = LockRef.es("j_state_lock", "journal_t", "r")
        needed = LockRef.es("j_state_lock", "journal_t", "w")
        assert not satisfies(held, needed)

    def test_scope_mismatch(self):
        assert not satisfies(LockRef.es("l", "t"), LockRef.eo("l", "t"))

    def test_owner_mismatch(self):
        assert not satisfies(LockRef.es("l", "a"), LockRef.es("l", "b"))


class TestDedup:
    def test_keeps_first_position(self):
        a = LockRef.global_("a")
        b = LockRef.global_("b")
        assert dedup_refs([a, b, a]) == (a, b)

    def test_distinct_modes_not_merged(self):
        r = LockRef.global_("l", "r")
        w = LockRef.global_("l", "w")
        assert dedup_refs([r, w]) == (r, w)

    def test_empty(self):
        assert dedup_refs([]) == ()
