"""Tests for the Lockmeter-style lock-usage statistics."""

import pytest

from repro.core.contention import build_contention
from repro.core.lockorder import format_class
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import StructRegistry
from tests.conftest import make_pair_struct


@pytest.fixture
def traced():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    # lock_a: 3 short holds; lock_b: 1 long hold.
    for _ in range(3):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
    for _ in range(10):
        rt.write(ctx, obj, "b")
    rt.spin_unlock(ctx, obj.lock("lock_b"))
    return rt


def report_of(rt):
    db = import_tracer(rt.tracer, rt.structs)
    return build_contention(rt.tracer.events, db)


def test_acquisition_counts(traced):
    report = report_of(traced)
    by_name = {format_class(s.key): s for s in report.stats.values()}
    assert by_name["pair.lock_a"].acquisitions == 3
    assert by_name["pair.lock_b"].acquisitions == 1


def test_hold_spans(traced):
    report = report_of(traced)
    by_name = {format_class(s.key): s for s in report.stats.values()}
    # lock_b wraps 10 accesses -> much longer hold span than lock_a's 1.
    assert by_name["pair.lock_b"].max_hold_span > by_name["pair.lock_a"].max_hold_span
    assert by_name["pair.lock_b"].total_hold_span > by_name["pair.lock_a"].total_hold_span


def test_rankings(traced):
    report = report_of(traced)
    assert format_class(report.hottest_by_acquisitions(1)[0].key) == "pair.lock_a"
    assert format_class(report.hottest_by_hold_span(1)[0].key) == "pair.lock_b"


def test_read_mode_counted():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    rt.rcu_read_lock(ctx)
    rt.rcu_read_unlock(ctx)
    report = report_of(rt)
    rcu = [s for s in report.stats.values() if s.key[1] == "rcu"][0]
    assert rcu.read_acquisitions == 1


def test_unmatched_release_counted():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    events = [e for e in rt.tracer.events
              if not (hasattr(e, "is_acquire") and e.is_acquire)]
    db = import_tracer(rt.tracer, rt.structs)
    report = build_contention(events, db)
    assert report.unmatched_releases == 1


def test_render(traced):
    text = report_of(traced).render()
    assert "lock-usage statistics" in text
    assert "pair.lock_a" in text


def test_vfs_hotlocks(pipeline):
    """On the full trace the hot locks are the ones the ground truth
    exercises most: i_lock / the uptodate lock / i_rwsem rank high."""
    report = build_contention(pipeline.mix.tracer.events, pipeline.db)
    top = {format_class(s.key) for s in report.hottest_by_acquisitions(8)}
    assert "inode.i_lock" in top
    assert "buffer_head.b_uptodate_lock" in top or "inode.i_rwsem" in top
