"""Tests for the Lockmeter-style lock-usage statistics."""

import pytest

from repro.core.contention import build_contention
from repro.core.lockorder import format_class
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.structs import Member, StructDef, StructRegistry
from repro.tracing.events import LockEvent
from tests.conftest import make_pair_struct


@pytest.fixture
def traced():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    # lock_a: 3 short holds; lock_b: 1 long hold.
    for _ in range(3):
        rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
        rt.write(ctx, obj, "a")
        rt.spin_unlock(ctx, obj.lock("lock_a"))
    rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
    for _ in range(10):
        rt.write(ctx, obj, "b")
    rt.spin_unlock(ctx, obj.lock("lock_b"))
    return rt


def report_of(rt):
    db = import_tracer(rt.tracer, rt.structs)
    return build_contention(rt.tracer.events, db)


def test_acquisition_counts(traced):
    report = report_of(traced)
    by_name = {format_class(s.key): s for s in report.stats.values()}
    assert by_name["pair.lock_a"].acquisitions == 3
    assert by_name["pair.lock_b"].acquisitions == 1


def test_hold_spans(traced):
    report = report_of(traced)
    by_name = {format_class(s.key): s for s in report.stats.values()}
    # lock_b wraps 10 accesses -> much longer hold span than lock_a's 1.
    assert by_name["pair.lock_b"].max_hold_span > by_name["pair.lock_a"].max_hold_span
    assert by_name["pair.lock_b"].total_hold_span > by_name["pair.lock_a"].total_hold_span


def test_rankings(traced):
    report = report_of(traced)
    assert format_class(report.hottest_by_acquisitions(1)[0].key) == "pair.lock_a"
    assert format_class(report.hottest_by_hold_span(1)[0].key) == "pair.lock_b"


def test_read_mode_counted():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    rt.rcu_read_lock(ctx)
    rt.rcu_read_unlock(ctx)
    report = report_of(rt)
    rcu = [s for s in report.stats.values() if s.key[1] == "rcu"][0]
    assert rcu.read_acquisitions == 1


def test_unmatched_release_counted():
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    events = [e for e in rt.tracer.events
              if not (hasattr(e, "is_acquire") and e.is_acquire)]
    db = import_tracer(rt.tracer, rt.structs)
    report = build_contention(events, db)
    assert report.unmatched_releases == 1


def test_render(traced):
    text = report_of(traced).render()
    assert "lock-usage statistics" in text
    assert "pair.lock_a" in text


def test_read_write_acquisitions_counted_separately():
    """rw-semaphore spans: shared and exclusive acquisitions both count
    toward ``acquisitions``; only shared ones toward ``read_acquisitions``."""
    rwpair = StructDef(
        "rwpair",
        [Member.scalar("a", 8), Member.lock("sem", "rw_semaphore")],
    )
    rt = KernelRuntime(StructRegistry([rwpair]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "rwpair")
    for _ in range(2):
        rt.run(rt.down_read(ctx, obj.lock("sem")))
        rt.read(ctx, obj, "a")
        rt.up_read(ctx, obj.lock("sem"))
    rt.run(rt.down_write(ctx, obj.lock("sem")))
    rt.write(ctx, obj, "a")
    rt.up_write(ctx, obj.lock("sem"))
    report = report_of(rt)
    sem = {format_class(s.key): s for s in report.stats.values()}["rwpair.sem"]
    assert sem.acquisitions == 3
    assert sem.read_acquisitions == 2
    assert report.synthetic_closes == 0


def test_nested_reacquisition_of_same_class():
    """Two instances of one lock class held in a nested (LIFO) pattern:
    both spans are attributed to the shared class entry, the inner span
    never swallowing the outer one."""
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    outer = rt.new_object(ctx, "pair")
    inner = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, outer.lock("lock_a")))
    rt.write(ctx, outer, "a")
    rt.run(rt.spin_lock(ctx, inner.lock("lock_a")))
    rt.write(ctx, inner, "a")
    rt.spin_unlock(ctx, inner.lock("lock_a"))
    rt.write(ctx, outer, "a")
    rt.spin_unlock(ctx, outer.lock("lock_a"))
    report = report_of(rt)
    lock_a = {format_class(s.key): s for s in report.stats.values()}["pair.lock_a"]
    assert lock_a.acquisitions == 2
    # The outer hold brackets the inner one entirely, so max == outer
    # and total == outer + inner > max.
    assert lock_a.total_hold_span > lock_a.max_hold_span > 0
    events = [e for e in rt.tracer.events if isinstance(e, LockEvent)]
    spans = {}
    open_ts = {}
    for e in events:
        if e.is_acquire:
            open_ts[e.lock_id] = e.ts
        else:
            spans[e.lock_id] = e.ts - open_ts.pop(e.lock_id)
    assert lock_a.total_hold_span == sum(spans.values())
    assert lock_a.max_hold_span == max(spans.values())


def test_span_math_against_hand_written_events():
    """Hand-written acquire/release pairs with known spans: total, mean
    and max must come out exactly (5, 10, 45 -> 60 / 20.0 / 45)."""
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    db = import_tracer(rt.tracer, rt.structs)
    template = next(
        e for e in rt.tracer.events
        if isinstance(e, LockEvent) and e.is_acquire
    )

    def lock_event(ts, is_acquire):
        return template._replace(ts=ts, is_acquire=is_acquire)

    events = [
        lock_event(0, True), lock_event(5, False),
        lock_event(10, True), lock_event(20, False),
        lock_event(100, True), lock_event(145, False),
    ]
    report = build_contention(events, db)
    stats = {format_class(s.key): s for s in report.stats.values()}["pair.lock_a"]
    assert stats.acquisitions == 3
    assert stats.total_hold_span == 60
    assert stats.mean_hold_span == 20.0
    assert stats.max_hold_span == 45


def test_dangling_hold_excluded_from_spans():
    """Satellite regression: an acquire whose release never arrives is
    the importer's *synthesized close* — it must not count as a real
    acquisition (span unknown) and must be surfaced separately."""
    rt = KernelRuntime(StructRegistry([make_pair_struct()]))
    ctx = rt.new_task("t")
    obj = rt.new_object(ctx, "pair")
    rt.run(rt.spin_lock(ctx, obj.lock("lock_a")))
    rt.write(ctx, obj, "a")
    rt.spin_unlock(ctx, obj.lock("lock_a"))
    rt.run(rt.spin_lock(ctx, obj.lock("lock_b")))
    rt.write(ctx, obj, "b")
    # lock_b is never released: the trace is truncated mid-hold.
    report = report_of(rt)
    by_name = {format_class(s.key): s for s in report.stats.values()}
    assert report.synthetic_closes == 1
    assert by_name["pair.lock_b"].acquisitions == 0
    assert by_name["pair.lock_b"].total_hold_span == 0
    assert by_name["pair.lock_a"].acquisitions == 1
    assert "1 unreleased hold(s) excluded" in report.render()


def test_vfs_hotlocks(pipeline):
    """On the full trace the hot locks are the ones the ground truth
    exercises most: i_lock / the uptodate lock / i_rwsem rank high."""
    report = build_contention(pipeline.mix.tracer.events, pipeline.db)
    top = {format_class(s.key) for s in report.hottest_by_acquisitions(8)}
    assert "inode.i_lock" in top
    assert "buffer_head.b_uptodate_lock" in top or "inode.i_rwsem" in top
