"""Cross-subsystem trace tests: netmix parity, gauntlet, lock order.

The netmix workload interleaves VFS and net threads over one runtime,
so its trace is the acid test for every subsystem-agnostic layer: the
importer must keep both slices' accesses, the sqlite backend must mine
byte-identically to the in-memory one, the corruption gauntlet must
degrade gracefully, and the lock-order analysis must catch the planted
fs<->net ABBA inversion with witnesses on both edges.
"""

import pytest

from repro.core.derivator import Derivator
from repro.core.lockorder import build_lock_order, format_class
from repro.core.observations import ObservationTable
from repro.core.rulesio import rules_to_json
from repro.db.health import ingest_events
from repro.db.importer import ImportPolicy
from repro.faults import FaultPlan
from repro.tracing import serialize
from repro.workloads.net import NetMix, SockStress, build_net_filters, build_net_registry

LENIENT = ImportPolicy(lenient=True, max_malformed_fraction=1.0)


@pytest.fixture(scope="module")
def netmix():
    run = NetMix(seed=0, scale=1.0).run()
    db = run.to_database()
    derivation = Derivator(0.9).derive(ObservationTable.from_database(db))
    return {"run": run, "db": db, "derivation": derivation}


# ----------------------------------------------------------------------
# One trace, both subsystems
# ----------------------------------------------------------------------

def test_netmix_observes_both_slices(netmix):
    types = {row.type_key for row in netmix["db"].kept_accesses()}
    assert "sock" in types
    assert any(t.startswith("inode") for t in types)


def test_netmix_derives_rules_for_both_slices(netmix):
    keys = {d.type_key for d in netmix["derivation"].all()}
    assert "sock" in keys
    assert any(key.startswith("inode") for key in keys)


def test_vfs_rules_survive_the_interleaving(netmix):
    """Sharing the scheduler with socket threads must not change what
    the vfs slice documents."""
    d = netmix["derivation"].get("dentry", "d_flags", "w")
    assert d is not None
    assert d.rule.format() == "ES(d_lock in dentry)"


# ----------------------------------------------------------------------
# Backend parity (memory vs sqlite, byte-identical)
# ----------------------------------------------------------------------

def test_sqlite_backend_parity_on_netmix(netmix, tmp_path):
    from repro.db import sqlstore

    tracer = netmix["run"].tracer
    stacks = [tracer.stack(i) for i in range(tracer.stack_count)]
    path = str(tmp_path / "netmix.sqlite")
    sqlstore.build_store(
        path, tracer.events, stacks, build_net_registry(), build_net_filters()
    )
    store = sqlstore.SqliteTraceStore(path)
    sqlite_rules = rules_to_json(Derivator(0.9).derive(store.fold(True)))
    memory_rules = rules_to_json(
        Derivator(0.9).derive(
            ObservationTable.from_database(netmix["db"], split_subclasses=True)
        )
    )
    assert sqlite_rules == memory_rules


def test_serialize_round_trip_reimports_identically(netmix):
    tracer = netmix["run"].tracer
    text = serialize.dumps_events_text(
        list(tracer.events), serialize.stacks_of(tracer)
    )
    report = serialize.loads_text_lenient(text)
    db, health = ingest_events(
        report.events, report.stacks, build_net_registry(),
        build_net_filters(), LENIENT, parse_report=report,
    )
    assert health.accounts_for_all_events(), health.to_dict()
    derivation = Derivator(0.9).derive(ObservationTable.from_database(db))
    assert rules_to_json(derivation) == rules_to_json(netmix["derivation"])


# ----------------------------------------------------------------------
# Corruption gauntlet
# ----------------------------------------------------------------------

def test_netmix_survives_two_percent_drops(netmix):
    """<= 2% event drops still reproduce >= 90% of the winning rules."""
    baseline = {
        (d.type_key, d.member, d.access_type): d.rule.format()
        for d in netmix["derivation"].all()
    }
    assert baseline

    tracer = netmix["run"].tracer
    plan = FaultPlan.from_spec("drop:0.02", seed=0)
    events = plan.apply_events(tracer.events)
    stacks = serialize.stacks_of(tracer)
    db, health = ingest_events(
        events, stacks, build_net_registry(), build_net_filters(), LENIENT
    )
    assert health.accounts_for_all_events()
    derivation = Derivator(0.9).derive(ObservationTable.from_database(db))
    degraded = {
        (d.type_key, d.member, d.access_type): d.rule.format()
        for d in derivation.all()
    }
    matching = sum(
        1 for key, rule in baseline.items() if degraded.get(key) == rule
    )
    assert matching / len(baseline) >= 0.9, (
        f"only {matching}/{len(baseline)} winning rules survived 2% drops"
    )


# ----------------------------------------------------------------------
# Cross-subsystem lock order
# ----------------------------------------------------------------------

def _names(classes):
    return {format_class(key) for key in classes}


def test_netmix_catches_the_planted_fs_net_inversion(netmix):
    report = build_lock_order(netmix["db"])
    inverted = [
        inversion for inversion in report.inversions
        if _names(inversion.classes) == {"sb_lock", "net_family_lock"}
    ]
    assert inverted, [i.format() for i in report.inversions]
    inversion = inverted[0]
    # witnesses on both directions: a genuine ABBA, not a one-off
    assert inversion.forward.witnesses > 0
    assert inversion.backward.witnesses > 0


def test_sockstress_reports_the_cycle_with_a_witness_path():
    run = SockStress(seed=0, scale=1.0).run()
    report = build_lock_order(run.to_database())
    cycles = [
        cycle for cycle in report.cycles
        if _names(cycle.classes) == {"sb_lock", "net_family_lock"}
    ]
    assert cycles, [c.format() for c in report.cycles]
    cycle = cycles[0]
    assert len(cycle) == 2
    assert cycle.min_witnesses >= 1
    rendered = report.render()
    assert "sb_lock" in rendered and "net_family_lock" in rendered


def test_planted_witnesses_never_pollute_rule_mining(netmix):
    """The inverted sections only touch the blacklisted sk_backlog."""
    assert netmix["derivation"].get("sock", "sk_backlog", "w") is None
