"""Registry integration of the net workloads (netbench/sockstress/netmix)."""

import re

import pytest

from repro import cli
from repro.workloads import registry


# ----------------------------------------------------------------------
# Resolution and tagging
# ----------------------------------------------------------------------

def test_net_workloads_are_registered():
    names = registry.available()
    assert {"netbench", "sockstress", "netmix"} <= set(names)


def test_net_workloads_use_the_net_recipe():
    for name in ("netbench", "sockstress", "netmix"):
        assert registry.db_recipe(name) == "net"


def test_subsystem_tags():
    assert registry.subsystem_of("netbench") == "net"
    assert registry.subsystem_of("sockstress") == "net"
    assert registry.subsystem_of("netmix") == "mixed"
    assert registry.subsystem_of("mix") == "vfs"


def test_net_recipe_inputs_cover_both_slices():
    structs, filters = registry.database_inputs("net")
    names = {struct.name for struct in structs.all()}
    assert "inode" in names and "sock" in names
    assert filters is not None
    # the union filter blacklists both subsystems' excluded members
    assert ("sock", "sk_backlog") in filters.member_blacklist
    assert any(t == "inode" for t, _ in filters.member_blacklist)


def test_run_netbench_through_the_registry():
    result = registry.run("netbench", seed=0, scale=1.0)
    assert result.tracer.events
    db = result.to_database()
    assert any(
        row.type_key == "sock" for row in db.kept_accesses()
    )


# ----------------------------------------------------------------------
# Error contract
# ----------------------------------------------------------------------

def test_unknown_workload_error_groups_names_by_subsystem():
    with pytest.raises(ValueError) as excinfo:
        registry.resolve("nope")
    message = str(excinfo.value)
    assert "unknown workload 'nope'" in message
    # grouped listing: every subsystem tag names its workloads
    assert "net: netbench, sockstress" in message
    assert "mixed: netmix" in message
    # other tests may register fuzz corpora into the vfs group, so
    # only pin that "mix" is listed under the vfs tag
    match = re.search(r"vfs: ([^;)]*)", message)
    assert match is not None
    assert "mix" in [name.strip() for name in match.group(1).split(",")]


def test_experiment_rejects_net_only_workloads(capsys):
    exit_code = cli.main(
        ["experiment", "tab3", "--workload", "netbench"]
    )
    assert exit_code == 2
    err = capsys.readouterr().err
    assert "tab3net/tab6net" in err


# ----------------------------------------------------------------------
# Second-column experiments
# ----------------------------------------------------------------------

def test_tab3net_reports_partial_net_coverage():
    from repro.experiments.tab3net import run

    result = run(seed=0, scale=2.0)
    directories = [row.directory for row in result.rows]
    assert directories == ["net", "net/core", "net/ipv4"]
    for row in result.rows:
        assert 0.0 < row.line_coverage < 1.0, row.format()
    best = max(result.rows, key=lambda row: row.line_coverage)
    assert best.directory == "net/core"


def test_tab6net_mines_rules_for_every_net_type():
    from repro.experiments.tab6net import run

    result = run(seed=0, scale=2.0)
    assert [row.type_key for row in result.rows] == [
        "net_device", "sk_buff", "sock", "socket_wq",
    ]
    for row in result.rows:
        assert row.rules_r + row.rules_w > 0, row.type_key
        assert row.members > row.rules_w
        assert 0.9 < row.mean_s_r <= 1.0
    sock = result.row("sock")
    assert sock.members == 30 and sock.blacklisted == 5
    # stats/scratch members surface as genuine no-lock rules
    assert result.row("net_device").no_lock_r > 0
