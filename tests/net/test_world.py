"""Tests for the simulated networking slice (repro.kernel.net)."""

import pytest

from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.core.violations import ViolationFinder
from repro.kernel.net.groundtruth import (
    NET_MEMBER_BLACKLIST,
    NET_PLANTED_DEVIATIONS,
    build_net_specs,
)
from repro.kernel.net.layouts import build_net_struct_registry
from repro.workloads.net import NetBench

SPECS = build_net_specs()


@pytest.fixture(scope="module")
def netbench():
    run = NetBench(seed=0, scale=4.0).run()
    db = run.to_database()
    table = ObservationTable.from_database(db)
    derivation = Derivator(0.9).derive(table)
    return {"run": run, "db": db, "table": table, "derivation": derivation}


# ----------------------------------------------------------------------
# Layouts and specs
# ----------------------------------------------------------------------

def test_layouts_cover_the_four_observed_types():
    registry = build_net_struct_registry()
    names = {struct.name for struct in registry.all()}
    assert {"sock", "sk_buff", "socket_wq", "net_device"} <= names


def test_layout_member_counts():
    registry = build_net_struct_registry()
    counts = {
        struct.name: len(struct.data_members()) for struct in registry.all()
    }
    assert counts["sock"] == 30
    assert counts["sk_buff"] == 16
    assert counts["socket_wq"] == 4
    assert counts["net_device"] == 20


def test_every_spec_member_exists_in_the_layout():
    registry = build_net_struct_registry()
    for name, spec in SPECS.items():
        layout = registry.get(name)
        members = {m.name for m in layout.members}
        for member_spec in spec.members:
            base = member_spec.member.split(".", 1)[0]
            assert base in members, (name, member_spec.member)


def test_net_idioms_differ_from_vfs():
    """The slice exists to exercise idioms the VFS model lacks."""
    sock = SPECS["sock"]
    # sk_lock: a plain sleeping semaphore (lock_sock).
    assert sock.expected_rule("sk_state", "w").format() == (
        "ES(sk_lock in sock)"
    )
    # bh-flavored queue spinlock: softirq pseudo-lock in the rule.
    assert "softirq" in sock.expected_rule(
        "sk_receive_queue.next", "r"
    ).format()
    # two-token send-path rule on the write queue.
    assert sock.expected_rule("sk_write_queue.next", "w").format() == (
        "ES(sk_lock in sock) -> softirq -> "
        "ES(sk_write_queue.lock in sock)"
    )
    # global mutex-class rtnl serializes net_device configuration.
    assert SPECS["net_device"].expected_rule("mtu", "w").format() == (
        "rtnl_mutex"
    )
    # RCU read side on device configuration.
    assert SPECS["net_device"].expected_rule("mtu", "r").format() == "rcu:r"
    # EO rule through the sk back-reference (net analogue of Fig. 8).
    assert SPECS["sk_buff"].expected_rule("next", "w").format() == (
        "softirq -> EO(sk_receive_queue.lock in sock)"
    )


# ----------------------------------------------------------------------
# Mining fidelity
# ----------------------------------------------------------------------

def _fidelity(derivation):
    matched, total, misses = 0, 0, []
    for name in sorted(SPECS):
        spec = SPECS[name]
        for member in spec.members:
            if member.member in spec.blacklist:
                continue
            if (name, member.member) in NET_MEMBER_BLACKLIST:
                continue
            for access in ("r", "w"):
                if member.weight_for(access) == 0:
                    continue
                d = derivation.get(name, member.member, access)
                if d is None:
                    continue
                total += 1
                if d.rule == spec.expected_rule(member.member, access):
                    matched += 1
                else:
                    misses.append((name, member.member, access))
    return matched, total, misses


def test_netbench_mines_the_ground_truth(netbench):
    matched, total, misses = _fidelity(netbench["derivation"])
    assert total >= 80  # the slice is a substantial target set
    assert matched / total >= 0.9, misses


def test_the_only_expected_miss_is_the_ambivalent_peek(netbench):
    _, _, misses = _fidelity(netbench["derivation"])
    assert misses == [("sock", "sk_state", "r")]


def test_blacklisted_members_never_derive(netbench):
    derivation = netbench["derivation"]
    for access in ("r", "w"):
        assert derivation.get("sock", "sk_backlog", access) is None
        assert derivation.get("socket_wq", "wait", access) is None


# ----------------------------------------------------------------------
# Planted deviations
# ----------------------------------------------------------------------

def test_planted_deviations_surface_as_violations(netbench):
    violations = ViolationFinder(
        netbench["derivation"], netbench["table"]
    ).find()
    violated = {(v.type_key, v.member, v.access_type) for v in violations}
    for planted in NET_PLANTED_DEVIATIONS:
        assert planted in violated, planted


def test_planted_skips_stay_below_the_accept_complement():
    """Every plant keeps the true rule winning (skip < 10%)."""
    for type_name, member, access in NET_PLANTED_DEVIATIONS:
        spec = SPECS[type_name].member(member)
        skip = spec.write_skip if access == "w" else spec.read_skip
        assert 0.0 < skip < 0.1, (type_name, member, access)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------

def test_netbench_is_deterministic(netbench):
    again = NetBench(seed=0, scale=4.0).run()
    first = netbench["run"].tracer
    assert len(again.tracer.events) == len(first.events)
    assert again.tracer.events == first.events


def test_seed_changes_the_trace():
    small = NetBench(seed=0, scale=1.0).run()
    other = NetBench(seed=1, scale=1.0).run()
    assert small.tracer.events != other.tracer.events
