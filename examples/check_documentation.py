#!/usr/bin/env python3
"""Check documented locking rules against reality (Sec. 7.3).

Two parts:

1. Parse a kernel-style informal comment block (like the one at the top
   of ``fs/inode.c``, Fig. 2) into formal rules with the comment
   parser, and check them against a trace.
2. Check the full curated corpus (142 rules over five structs) and
   print the Tab. 4 summary — reproducing the paper's finding that only
   about half of the documented rules are consistently followed.

Run:  python examples/check_documentation.py [scale]
"""

import sys

from repro.core.checker import check_rules, summarize
from repro.core.observations import ObservationTable
from repro.core.report import percentage, render_table
from repro.doc.corpus import documented_rules
from repro.doc.parser import parse_comment_block
from repro.workloads.mix import run_benchmark_mix

FS_INODE_C_HEADER = """
/*
 * Inode locking rules:
 *
 * inode->i_lock protects:
 *   inode->i_state, inode->i_hash
 * inode_hash_lock protects:
 *   inode->i_hash
 * inode->i_lock protects:
 *   inode->i_size, inode->i_blocks
 */
"""


def main(scale: float = 8.0) -> None:
    print(f"running the benchmark mix (scale {scale}) ...")
    mix = run_benchmark_mix(seed=0, scale=scale)
    table = ObservationTable.from_database(mix.to_database())

    # -- part 1: the informal comment, parsed and put to trial
    parsed = parse_comment_block(FS_INODE_C_HEADER, "inode", "fs/inode.c:10")
    print(f"\nparsed {len(parsed)} rules from the fs/inode.c comment block:")
    for result in check_rules(table, parsed):
        print(f"  [{result.status.symbol}] {result.documented.member:10s} "
              f"{result.access_type}  '{result.rule.format()}'  "
              f"s_r={result.s_r:.1%}")

    # -- part 2: the full corpus (Tab. 4)
    results = check_rules(table, documented_rules())
    rows = []
    for s in summarize(results):
        rows.append([
            s.data_type, s.rules, s.unobserved, s.observed,
            percentage(s.correct / s.observed if s.observed else 0),
            percentage(s.ambivalent / s.observed if s.observed else 0),
            percentage(s.incorrect / s.observed if s.observed else 0),
        ])
    print()
    print(render_table(
        ["data type", "#R", "#No", "#Ob", "correct", "ambivalent", "incorrect"],
        rows, title="documented-rule validation (cf. Tab. 4)",
    ))
    observed = sum(s.observed for s in summarize(results))
    correct = sum(s.correct for s in summarize(results))
    print(f"\nconsistently followed: {correct}/{observed} "
          f"({percentage(correct / observed)}) — the paper found ~53%")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 8.0)
