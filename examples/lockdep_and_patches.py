#!/usr/bin/env python3
"""Beyond rule mining: lock ordering, documentation patches, SQL.

Three companion analyses built on the same trace:

1. **Lock-order graph** (lockdep's model, ex-post): which lock classes
   nest inside which, with ABBA-inversion detection (Sec. 2.3 / 3.2).
2. **Documentation patch**: diff the mined rules against the documented
   corpus and propose keep/update/add/review actions (Sec. 5.5).
3. **SQL backend**: export the Fig. 6 schema to SQLite and run the
   paper's parametrizable violation query directly in SQL (Sec. 6).

Run:  python examples/lockdep_and_patches.py [scale]
"""

import sys

from repro.core.derivator import Derivator
from repro.core.docdiff import build_doc_patch
from repro.core.lockorder import build_lock_order
from repro.core.observations import ObservationTable
from repro.db.sqlbackend import export_sqlite, find_violations_sql, table_counts
from repro.doc.corpus import documented_rules
from repro.workloads.mix import run_benchmark_mix


def main(scale: float = 8.0) -> None:
    print(f"running the benchmark mix (scale {scale}) ...")
    mix = run_benchmark_mix(seed=0, scale=scale)
    db = mix.to_database()
    table = ObservationTable.from_database(db)
    derivation = Derivator().derive(table)

    # -- 1. lock ordering ------------------------------------------------
    print("\n--- lock-order analysis ---")
    report = build_lock_order(db)
    print(report.render(limit=12))

    # -- 2. documentation patch ------------------------------------------
    print("\n--- documentation patch for struct inode ---")
    patch = build_doc_patch(derivation, documented_rules(), "inode")
    print(patch.render())

    # -- 3. SQL backend ---------------------------------------------------
    print("\n--- SQLite export + SQL violation query ---")
    connection = export_sqlite(db)
    for tab, count in sorted(table_counts(connection).items()):
        print(f"  {tab:14s} {count}")
    target = derivation.get("buffer_head", "b_state", "w")
    if target is not None and not target.is_no_lock:
        hits = find_violations_sql(
            connection, "buffer_head", "b_state", "w", target.rule.locks
        )
        print(f"\nSQL violation query for buffer_head.b_state [w] "
              f"(rule: {target.rule.format()}): {len(hits)} rows")
        for _, subclass, file, line, _ in hits[:5]:
            print(f"  violating write at {file}:{line}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 8.0)
