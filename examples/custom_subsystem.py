#!/usr/bin/env python3
"""Apply LockDoc to your own concurrent subsystem.

The paper closes by noting the approach "is by no means specific to the
Linux kernel" (Sec. 8).  This example builds a small message-queue
subsystem from scratch on the public API — struct layout, locks,
kernel-style functions, a multi-threaded workload under the
deterministic scheduler — then derives its locking rules and finds the
one path that breaks them.

Run:  python examples/custom_subsystem.py
"""

import random

from repro.core.derivator import Derivator
from repro.core.docgen import DocOptions, generate_doc
from repro.core.observations import ObservationTable
from repro.core.violations import ViolationFinder
from repro.db.importer import import_tracer
from repro.kernel.runtime import KernelRuntime
from repro.kernel.sched import Scheduler
from repro.kernel.structs import Member, StructDef, StructRegistry

# ----------------------------------------------------------------------
# 1. The subsystem: a message queue with a head lock and a stats seqlock.
# ----------------------------------------------------------------------

MSG_QUEUE = StructDef(
    "msg_queue",
    [
        Member.scalar("head", 8),
        Member.scalar("tail", 8),
        Member.scalar("length", 8),
        Member.lock("q_lock", "spinlock_t"),
        Member.scalar("total_enqueued", 8),
        Member.scalar("peak_length", 8),
        Member.lock("stats_seq", "seqlock_t"),
        Member.scalar("owner_pid", 8),
    ],
)


def mq_enqueue(rt, ctx, queue):
    """Correct producer: ring under q_lock, stats under the seqlock."""
    with rt.function(ctx, "mq_enqueue", "ipc/msgqueue.c", 40):
        yield from rt.spin_lock(ctx, queue.lock("q_lock"))
        rt.read(ctx, queue, "tail", line=43)
        rt.write(ctx, queue, "tail", line=44)
        rt.read(ctx, queue, "length", line=45)
        rt.write(ctx, queue, "length", line=46)
        rt.spin_unlock(ctx, queue.lock("q_lock"))
        yield from rt.write_seqlock(ctx, queue.lock("stats_seq"))
        rt.write(ctx, queue, "total_enqueued", line=50)
        rt.write(ctx, queue, "peak_length", line=51)
        rt.write_sequnlock(ctx, queue.lock("stats_seq"))


def mq_dequeue(rt, ctx, queue):
    """Correct consumer."""
    with rt.function(ctx, "mq_dequeue", "ipc/msgqueue.c", 70):
        yield from rt.spin_lock(ctx, queue.lock("q_lock"))
        rt.read(ctx, queue, "head", line=73)
        rt.write(ctx, queue, "head", line=74)
        rt.read(ctx, queue, "length", line=75)
        rt.write(ctx, queue, "length", line=76)
        rt.spin_unlock(ctx, queue.lock("q_lock"))


def mq_stats_read(rt, ctx, queue):
    """Correct stats reader: seqlock read section."""
    with rt.function(ctx, "mq_stats_read", "ipc/msgqueue.c", 90):
        yield from rt.read_seqbegin(ctx, queue.lock("stats_seq"))
        rt.read(ctx, queue, "total_enqueued", line=93)
        rt.read(ctx, queue, "peak_length", line=94)
        rt.read_seqend(ctx, queue.lock("stats_seq"))


def mq_debug_dump(rt, ctx, queue):
    """The BUG: a debugging helper that reads the ring without q_lock."""
    with rt.function(ctx, "mq_debug_dump", "ipc/msgqueue.c", 110):
        rt.read(ctx, queue, "head", line=112)
        rt.read(ctx, queue, "tail", line=113)
        rt.read(ctx, queue, "length", line=114)
        yield


# ----------------------------------------------------------------------
# 2. The workload: producers, consumers, a stats poller, one debug call.
# ----------------------------------------------------------------------


def main() -> None:
    rt = KernelRuntime(StructRegistry([MSG_QUEUE]))
    boot = rt.new_task("boot")
    queue = rt.new_object(boot, "msg_queue")
    rng = random.Random(0)

    def producer(ctx):
        for _ in range(120):
            yield from mq_enqueue(rt, ctx, queue)
            yield

    def consumer(ctx):
        for _ in range(120):
            yield from mq_dequeue(rt, ctx, queue)
            if rng.random() < 0.3:
                yield from mq_stats_read(rt, ctx, queue)
            yield

    def debugger(ctx):
        for index in range(40):
            yield from mq_stats_read(rt, ctx, queue)
            if index == 17:  # someone left a debug call in production...
                yield from mq_debug_dump(rt, ctx, queue)
            yield

    scheduler = Scheduler(rt, seed=1)
    scheduler.spawn("producer/0", producer)
    scheduler.spawn("producer/1", producer)
    scheduler.spawn("consumer/0", consumer)
    scheduler.spawn("kworker/dbg", debugger)
    scheduler.run()
    print(f"workload done: {rt.tracer.stats.total_events} events")

    # ------------------------------------------------------------------
    # 3. Analysis: import, derive, document, find the bug.
    # ------------------------------------------------------------------
    db = import_tracer(rt.tracer, rt.structs)
    table = ObservationTable.from_database(db)
    derivation = Derivator().derive(table)

    print("\ngenerated documentation:\n")
    print(generate_doc(derivation, "msg_queue", DocOptions(show_support=True)))

    violations = ViolationFinder(derivation, table).find()
    print(f"\n{sum(v.events for v in violations)} violating access(es):")
    for violation in violations:
        print(f"  {violation.format()}")


if __name__ == "__main__":
    main()
