#!/usr/bin/env python3
"""Mine locking rules for the simulated VFS and generate documentation.

Runs the full benchmark mix (the paper's fs-bench/fsstress/fs_inod/
pipes/symlinks/perms workloads), derives locking rules for every member
of every observed data structure, validates a few of them against the
known ground truth, and prints Fig. 8-style generated documentation for
``struct inode`` (ext4).

Run:  python examples/mine_vfs_rules.py [scale]
"""

import sys

from repro.core.docgen import DocOptions, generate_doc
from repro.core.observations import ObservationTable
from repro.core.derivator import Derivator
from repro.kernel.vfs.groundtruth import build_all_specs
from repro.workloads.mix import run_benchmark_mix


def main(scale: float = 8.0) -> None:
    print(f"running the benchmark mix (scale {scale}) ...")
    mix = run_benchmark_mix(seed=0, scale=scale)
    print(f"  {mix.tracer.stats.total_events} events recorded")

    db = mix.to_database()
    table = ObservationTable.from_database(db)
    derivation = Derivator().derive(table)
    print(f"  rules derived for {len(derivation.keys())} member/access targets\n")

    # Spot-check mined rules against the simulator's ground truth.
    spec = build_all_specs()["inode"]
    print("mined vs. ground truth (inode:ext4):")
    for member, access in (("i_state", "w"), ("i_size", "w"), ("i_hash", "w"),
                           ("i_op", "w"), ("i_size", "r")):
        mined = derivation.get("inode:ext4", member, access)
        truth = spec.expected_rule(member, access)
        mark = "ok" if mined and mined.rule == truth else "??"
        print(f"  [{mark}] {member:8s} {access}: mined '{mined.rule.format()}'"
              f"  truth '{truth.format()}'")

    # Generate Fig. 8-style documentation.
    print("\ngenerated documentation for fs/inode.c (ext4 inodes):\n")
    print(generate_doc(derivation, "inode:ext4", DocOptions(show_support=True)))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 8.0)
