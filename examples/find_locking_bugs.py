#!/usr/bin/env python3
"""Hunt locking-rule violations — potential kernel bugs (Sec. 7.5).

Runs the benchmark mix, derives rules, and then assumes the derived
rules are correct: every access that does not comply is a potential
bug.  Prints the Tab. 7 summary and, for the biggest offenders, the
Tab. 8-style detail (expected locks, held locks, source location,
stack trace) a developer would start debugging from.

Run:  python examples/find_locking_bugs.py [scale]
"""

import sys

from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.core.report import render_table
from repro.core.violations import ViolationFinder, summarize
from repro.workloads.mix import run_benchmark_mix


def main(scale: float = 8.0) -> None:
    print(f"running the benchmark mix (scale {scale}) ...")
    mix = run_benchmark_mix(seed=0, scale=scale)
    db = mix.to_database()
    table = ObservationTable.from_database(db)
    derivation = Derivator().derive(table)

    finder = ViolationFinder(derivation, table)
    violations = finder.find()

    rows = [
        [s.type_key, s.events, s.members, s.contexts]
        for s in summarize(violations)
    ]
    print(render_table(["data type", "events", "members", "contexts"], rows,
                       title="\nrule violations per data type (cf. Tab. 7)"))

    print("\ntop violations (cf. Tab. 8):")
    for violation in violations[:6]:
        held = " -> ".join(r.format() for r in violation.held) or "(none)"
        print(f"\n  {violation.type_key}.{violation.member} "
              f"[{violation.access_type}]  ({violation.events} events)")
        print(f"    expected: {violation.rule.format()}")
        print(f"    held:     {held}")
        if violation.sample is not None:
            print(f"    location: {violation.sample.file}:{violation.sample.line}")
            for function, file, line in db.stack(violation.sample.stack_id):
                print(f"      from {function} ({file}:{line})")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 8.0)
