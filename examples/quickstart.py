#!/usr/bin/env python3
"""Quickstart: derive a locking rule from a traced execution.

Rebuilds the paper's running example (Sec. 4): a shared time structure
whose ``seconds`` member is protected by ``sec_lock`` and whose
``minutes`` member needs ``sec_lock -> min_lock`` — plus one buggy
execution that forgets ``min_lock``.  LockDoc derives the correct rule
anyway, and flags the buggy access.

Run:  python examples/quickstart.py
"""

from repro.core.derivator import Derivator
from repro.core.hypotheses import enumerate_and_score
from repro.core.selection import select_naive, select_winner
from repro.core.violations import ViolationFinder
from repro.experiments.tab1 import record_clock_trace


def main() -> None:
    # 1. Record a trace: 1000 correct executions + 1 forgetting min_lock.
    trace = record_clock_trace(iterations=1000, faulty=1)
    print(f"trace: {len(trace.runtime.tracer.events)} events, "
          f"{trace.db.stats()['txns']} transactions\n")

    # 2. Enumerate hypotheses for writing `minutes` (Tab. 2).
    sequences = trace.table.sequences("clock", "minutes", "w")
    hypotheses = enumerate_and_score(sequences)
    print("hypotheses for writing `minutes`:")
    for hypothesis in hypotheses:
        print(f"  {hypothesis.format()}")

    # 3. Winner selection: LockDoc vs the naive strategy (Sec. 4.3).
    winner = select_winner(hypotheses).winner
    naive = select_naive(hypotheses)
    print(f"\nLockDoc winner: {winner.rule.format()}   <- the true rule")
    print(f"naive winner:   {naive.rule.format()}   <- misses min_lock\n")

    # 4. Full derivation for every member, then hunt the injected bug.
    derivation = Derivator().derive(trace.table)
    for target in derivation.all():
        print(f"derived: {target.format()}")

    violations = ViolationFinder(derivation, trace.table).find()
    print(f"\n{len(violations)} rule violation(s) found:")
    for violation in violations:
        print(f"  {violation.format()}")
        stack = trace.db.stack(violation.sample.stack_id)
        for function, file, line in stack:
            print(f"      at {function} ({file}:{line})")


if __name__ == "__main__":
    main()
